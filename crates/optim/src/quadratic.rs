//! Closed-form minimisation of quadratic objectives — Algorithm 1, line 8.
//!
//! For `f(ω) = ωᵀMω + αᵀω + β` with symmetric `M`, the stationarity
//! condition is `2Mω + α = 0`. When `M` is positive definite the solution
//! is the unique global minimiser; when it has a non-positive eigenvalue
//! the objective is unbounded below and [`OptimError::UnboundedObjective`]
//! is returned — that error is the trigger for the paper's Section-6
//! post-processing (regularization / spectral trimming) or the Lemma-5
//! resample loop.

use fm_linalg::{vecops, Cholesky, LinalgError, Matrix};

use crate::{OptimError, Result};

/// Minimises `ωᵀMω + αᵀω` for symmetric `M`, returning the unique global
/// minimiser.
///
/// Positive definiteness is certified by Cholesky (which is also the solve),
/// so unbounded objectives are detected rather than silently returning a
/// saddle point.
///
/// # Errors
/// * [`OptimError::UnboundedObjective`] when `M` is not positive definite.
/// * [`OptimError::DimensionMismatch`] when `α` and `M` disagree.
/// * [`OptimError::Linalg`] for shape errors in `M` itself.
pub fn minimize_quadratic(m: &Matrix, alpha: &[f64]) -> Result<Vec<f64>> {
    if m.rows() != alpha.len() {
        return Err(OptimError::DimensionMismatch {
            expected: m.rows(),
            got: alpha.len(),
        });
    }
    let chol = match Cholesky::new(m) {
        Ok(c) => c,
        Err(LinalgError::NotPositiveDefinite { .. }) => return Err(OptimError::UnboundedObjective),
        Err(e) => return Err(OptimError::Linalg(e)),
    };
    // 2Mω = −α.
    let rhs = vecops::scaled(-0.5, alpha);
    Ok(chol.solve(&rhs)?)
}

/// `true` iff the quadratic `ωᵀMω + αᵀω + β` has a finite minimum, i.e.
/// `M` (symmetrised) is positive definite.
#[must_use]
pub fn is_bounded_below(m: &Matrix) -> bool {
    let mut s = m.clone();
    if s.symmetrize().is_err() {
        return false;
    }
    Cholesky::new(&s).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimises_simple_quadratic() {
        // f(ω) = 2ω² − 2.34ω + 1.25 (paper §4.2 with M = 2.06): minimiser
        // ω* = 2.34 / (2·2.06) = 117/206.
        let m = Matrix::from_diagonal(&[2.06]);
        let omega = minimize_quadratic(&m, &[-2.34]).unwrap();
        assert!((omega[0] - 117.0 / 206.0).abs() < 1e-12);
    }

    #[test]
    fn minimises_multivariate() {
        // f = ω1² + 2ω2² − 2ω1 − 8ω2: minimiser (1, 2).
        let m = Matrix::from_diagonal(&[1.0, 2.0]);
        let omega = minimize_quadratic(&m, &[-2.0, -8.0]).unwrap();
        assert!(vecops::approx_eq(&omega, &[1.0, 2.0], 1e-12));
    }

    #[test]
    fn minimiser_zeroes_the_gradient() {
        let m = Matrix::from_rows(&[&[3.0, 0.5], &[0.5, 2.0]]).unwrap();
        let alpha = [1.0, -4.0];
        let omega = minimize_quadratic(&m, &alpha).unwrap();
        // ∇ = 2Mω + α must vanish.
        let mut grad = m.matvec(&omega).unwrap();
        vecops::scale(2.0, &mut grad);
        vecops::axpy(1.0, &alpha, &mut grad);
        assert!(vecops::norm_inf(&grad) < 1e-10);
    }

    #[test]
    fn unbounded_detected_for_indefinite() {
        // Eigenvalues 3, −1.
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            minimize_quadratic(&m, &[0.0, 0.0]),
            Err(OptimError::UnboundedObjective)
        ));
        assert!(!is_bounded_below(&m));
    }

    #[test]
    fn unbounded_detected_for_negative_definite() {
        let m = Matrix::from_diagonal(&[-1.0, -1.0]);
        assert!(matches!(
            minimize_quadratic(&m, &[1.0, 1.0]),
            Err(OptimError::UnboundedObjective)
        ));
    }

    #[test]
    fn boundedness_probe_symmetrizes_first() {
        // Asymmetric but with SPD symmetric part.
        let m = Matrix::from_rows(&[&[2.0, 1.0], &[-1.0, 2.0]]).unwrap();
        assert!(is_bounded_below(&m));
        // Rectangular input is simply "not bounded" rather than a panic.
        assert!(!is_bounded_below(&Matrix::zeros(2, 3)));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let m = Matrix::identity(2);
        assert!(matches!(
            minimize_quadratic(&m, &[1.0]),
            Err(OptimError::DimensionMismatch {
                expected: 2,
                got: 1
            })
        ));
    }
}
