//! Optimizers for the `functional-mechanism` workspace.
//!
//! Two very different optimisation problems appear in the paper:
//!
//! 1. **Noisy quadratics** (Algorithm 1, line 8): after perturbation the
//!    objective is `ωᵀMω + αᵀω + β`, whose minimiser solves the linear
//!    system `2Mω = −α`. [`quadratic::minimize_quadratic`] does this in
//!    closed form — the source of FM's order-of-magnitude running-time
//!    advantage in Figures 7–9.
//! 2. **The original regression objectives**, needed by the NoPrivacy and
//!    Truncated baselines: linear regression reduces to least squares, but
//!    exact logistic regression requires an iterative solver.
//!    [`gd::GradientDescent`] (backtracking Armijo line search) and
//!    [`newton::Newton`] (damped Newton with Cholesky solves) handle any
//!    objective implementing the [`Objective`] /
//!    [`TwiceDifferentiable`] traits.
//!
//! All solvers are deterministic, allocation-conscious, and return an
//! [`OptimResult`] carrying convergence diagnostics rather than panicking
//! on hard problems.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod gd;
pub mod newton;
pub mod quadratic;

mod error;
mod objective;

pub use error::OptimError;
pub use objective::{numerical_gradient, Objective, TwiceDifferentiable};

/// Result alias for fallible optimisation operations.
pub type Result<T> = std::result::Result<T, OptimError>;

/// The outcome of an iterative minimisation.
#[derive(Debug, Clone)]
pub struct OptimResult {
    /// The final iterate.
    pub omega: Vec<f64>,
    /// Objective value at the final iterate.
    pub value: f64,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the gradient-norm tolerance was met.
    pub converged: bool,
}
