//! Damped Newton's method for twice-differentiable objectives.
//!
//! The exact logistic-regression objective is smooth and convex with an
//! easily assembled Hessian `Σ σ(x_iᵀω)(1−σ(x_iᵀω))·x_i x_iᵀ`, so Newton
//! converges in a handful of iterations where gradient descent needs
//! thousands. This is what makes the NoPrivacy/Truncated baselines usable
//! inside the paper's 5-fold × 50-repeat evaluation loops — and it is still
//! an order of magnitude slower than FM's closed-form quadratic solve,
//! which is precisely the running-time gap Figures 7–9 report.

use fm_linalg::{vecops, Cholesky, LinalgError};

use crate::{OptimError, OptimResult, Result, TwiceDifferentiable};

/// Armijo sufficient-decrease constant for the damping line search.
const ARMIJO_C: f64 = 1e-4;
/// Step shrink factor.
const BACKTRACK_RHO: f64 = 0.5;
/// Maximum damping rounds per iteration.
const MAX_BACKTRACKS: usize = 60;
/// Levenberg-style diagonal boost applied when the Hessian is not PD, and
/// its growth factor per failed attempt.
const RIDGE_INIT: f64 = 1e-8;
const RIDGE_GROWTH: f64 = 100.0;

/// Damped Newton solver with Cholesky solves and automatic Levenberg
/// regularization for non-PD Hessians.
#[derive(Debug, Clone)]
pub struct Newton {
    /// Iteration cap.
    pub max_iters: usize,
    /// Convergence threshold on `‖∇f‖∞`.
    pub grad_tol: f64,
}

impl Default for Newton {
    fn default() -> Self {
        Newton {
            max_iters: 100,
            grad_tol: 1e-10,
        }
    }
}

impl Newton {
    /// Creates a solver.
    ///
    /// # Errors
    /// [`OptimError::InvalidParameter`] for a zero cap or non-positive
    /// tolerance.
    pub fn new(max_iters: usize, grad_tol: f64) -> Result<Self> {
        if max_iters == 0 {
            return Err(OptimError::InvalidParameter {
                name: "max_iters",
                reason: "must be at least 1".to_string(),
            });
        }
        // `!(x > 0)` deliberately also rejects NaN tolerances.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(grad_tol > 0.0) {
            return Err(OptimError::InvalidParameter {
                name: "grad_tol",
                reason: format!("{grad_tol} must be > 0"),
            });
        }
        Ok(Newton {
            max_iters,
            grad_tol,
        })
    }

    /// Minimises `f` from `omega0`.
    ///
    /// # Errors
    /// * [`OptimError::DimensionMismatch`] on arity mismatch.
    /// * [`OptimError::NonFiniteObjective`] on NaN/∞ values.
    /// * [`OptimError::Linalg`] if the (regularized) Hessian cannot be
    ///   factored at all.
    pub fn minimize(&self, f: &dyn TwiceDifferentiable, omega0: &[f64]) -> Result<OptimResult> {
        if omega0.len() != f.dim() {
            return Err(OptimError::DimensionMismatch {
                expected: f.dim(),
                got: omega0.len(),
            });
        }
        let mut omega = omega0.to_vec();
        let mut value = f.value(&omega);
        if !value.is_finite() {
            return Err(OptimError::NonFiniteObjective);
        }

        for iter in 0..self.max_iters {
            let grad = f.gradient(&omega);
            if grad.iter().any(|g| !g.is_finite()) {
                return Err(OptimError::NonFiniteObjective);
            }
            if vecops::norm_inf(&grad) <= self.grad_tol {
                return Ok(OptimResult {
                    omega,
                    value,
                    iterations: iter,
                    converged: true,
                });
            }

            // Newton direction: H·p = −∇f, with Levenberg ridge escalation
            // if H is not positive definite.
            let hessian = f.hessian(&omega);
            let neg_grad = vecops::scaled(-1.0, &grad);
            let mut ridge = 0.0;
            let direction = loop {
                let mut h = hessian.clone();
                if ridge > 0.0 {
                    h.add_diagonal(ridge);
                }
                match Cholesky::new(&h) {
                    Ok(chol) => break chol.solve(&neg_grad)?,
                    Err(LinalgError::NotPositiveDefinite { .. } | LinalgError::NotSymmetric) => {
                        ridge = if ridge == 0.0 {
                            RIDGE_INIT
                        } else {
                            ridge * RIDGE_GROWTH
                        };
                        if ridge > 1e12 {
                            return Err(OptimError::Linalg(LinalgError::NotPositiveDefinite {
                                pivot: 0,
                            }));
                        }
                    }
                    Err(e) => return Err(OptimError::Linalg(e)),
                }
            };

            // Damping: backtrack until Armijo decrease along the Newton
            // direction holds.
            let slope = vecops::dot(&grad, &direction); // negative for a descent direction
            let mut t = 1.0;
            let mut accepted = false;
            for _ in 0..MAX_BACKTRACKS {
                let mut trial = omega.clone();
                vecops::axpy(t, &direction, &mut trial);
                let trial_value = f.value(&trial);
                if trial_value.is_finite() && trial_value <= value + ARMIJO_C * t * slope {
                    omega = trial;
                    value = trial_value;
                    accepted = true;
                    break;
                }
                t *= BACKTRACK_RHO;
            }
            if !accepted {
                return Ok(OptimResult {
                    converged: false,
                    omega,
                    value,
                    iterations: iter,
                });
            }
        }

        let grad = f.gradient(&omega);
        Ok(OptimResult {
            converged: vecops::norm_inf(&grad) <= self.grad_tol,
            omega,
            value,
            iterations: self.max_iters,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Objective;
    use fm_linalg::Matrix;

    /// f(ω) = ωᵀAω − bᵀω with SPD A: Newton converges in one step.
    struct Quadratic {
        a: Matrix,
        b: Vec<f64>,
    }

    impl Objective for Quadratic {
        fn dim(&self) -> usize {
            self.b.len()
        }
        fn value(&self, w: &[f64]) -> f64 {
            self.a.quadratic_form(w).unwrap() - vecops::dot(&self.b, w)
        }
        fn gradient(&self, w: &[f64]) -> Vec<f64> {
            let mut g = self.a.matvec(w).unwrap();
            vecops::scale(2.0, &mut g);
            vecops::axpy(-1.0, &self.b, &mut g);
            g
        }
    }

    impl TwiceDifferentiable for Quadratic {
        fn hessian(&self, _: &[f64]) -> Matrix {
            self.a.scaled(2.0)
        }
    }

    /// Smooth convex non-quadratic: f(ω) = log(1 + e^{ω}) + ω²/2 in 1-D.
    struct LogSumSquare;

    impl Objective for LogSumSquare {
        fn dim(&self) -> usize {
            1
        }
        fn value(&self, w: &[f64]) -> f64 {
            (1.0 + w[0].exp()).ln() + 0.5 * w[0] * w[0]
        }
        fn gradient(&self, w: &[f64]) -> Vec<f64> {
            let s = 1.0 / (1.0 + (-w[0]).exp());
            vec![s + w[0]]
        }
    }

    impl TwiceDifferentiable for LogSumSquare {
        fn hessian(&self, w: &[f64]) -> Matrix {
            let s = 1.0 / (1.0 + (-w[0]).exp());
            Matrix::from_diagonal(&[s * (1.0 - s) + 1.0])
        }
    }

    #[test]
    fn one_step_on_quadratic() {
        let q = Quadratic {
            a: Matrix::from_rows(&[&[2.0, 0.5], &[0.5, 1.0]]).unwrap(),
            b: vec![1.0, -2.0],
        };
        let res = Newton::default().minimize(&q, &[10.0, -10.0]).unwrap();
        assert!(res.converged);
        assert!(res.iterations <= 2, "took {} iterations", res.iterations);
        assert!(vecops::norm_inf(&q.gradient(&res.omega)) < 1e-9);
    }

    #[test]
    fn converges_on_smooth_convex() {
        let res = Newton::default().minimize(&LogSumSquare, &[5.0]).unwrap();
        assert!(res.converged);
        // Optimum solves σ(ω) + ω = 0 → ω ≈ −0.4013.
        assert!((res.omega[0] + 0.4013).abs() < 1e-3, "ω = {}", res.omega[0]);
        // Verify stationarity directly: σ(ω) = −ω.
        let sigma = 1.0 / (1.0 + (-res.omega[0]).exp());
        assert!((sigma + res.omega[0]).abs() < 1e-8);
    }

    #[test]
    fn matches_gradient_descent_answer() {
        let q = Quadratic {
            a: Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]).unwrap(),
            b: vec![0.5, 1.5],
        };
        let newton = Newton::default().minimize(&q, &[0.0, 0.0]).unwrap();
        let gd = crate::gd::GradientDescent::default()
            .minimize(&q, &[0.0, 0.0])
            .unwrap();
        assert!(vecops::approx_eq(&newton.omega, &gd.omega, 1e-5));
    }

    /// Concave start region: Hessian not PD at the start point, forcing the
    /// Levenberg ridge path. f(ω) = ω⁴ − ω² has negative curvature at 0.2.
    struct DoubleWell;

    impl Objective for DoubleWell {
        fn dim(&self) -> usize {
            1
        }
        fn value(&self, w: &[f64]) -> f64 {
            w[0].powi(4) - w[0] * w[0]
        }
        fn gradient(&self, w: &[f64]) -> Vec<f64> {
            vec![4.0 * w[0].powi(3) - 2.0 * w[0]]
        }
    }

    impl TwiceDifferentiable for DoubleWell {
        fn hessian(&self, w: &[f64]) -> Matrix {
            Matrix::from_diagonal(&[12.0 * w[0] * w[0] - 2.0])
        }
    }

    #[test]
    fn ridge_rescues_indefinite_hessian() {
        let res = Newton::default().minimize(&DoubleWell, &[0.2]).unwrap();
        assert!(res.converged);
        // Minima at ±1/√2 with value −1/4.
        assert!((res.value + 0.25).abs() < 1e-9);
    }

    #[test]
    fn validation() {
        assert!(Newton::new(0, 1e-8).is_err());
        assert!(Newton::new(5, -1.0).is_err());
        let q = Quadratic {
            a: Matrix::identity(2),
            b: vec![0.0, 0.0],
        };
        assert!(matches!(
            Newton::default().minimize(&q, &[0.0]),
            Err(OptimError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn already_optimal() {
        let q = Quadratic {
            a: Matrix::identity(1),
            b: vec![2.0],
        };
        let res = Newton::default().minimize(&q, &[1.0]).unwrap();
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
    }
}
