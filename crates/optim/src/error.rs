use std::fmt;

/// Errors produced by the optimisers.
#[derive(Debug, Clone, PartialEq)]
pub enum OptimError {
    /// The quadratic objective is unbounded below (its Hessian has a
    /// non-positive eigenvalue) — exactly the situation Section 6 of the
    /// paper post-processes away.
    UnboundedObjective,
    /// The Hessian/system matrix could not be factored.
    Linalg(fm_linalg::LinalgError),
    /// The caller supplied an iterate of the wrong dimension.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Provided dimension.
        got: usize,
    },
    /// A parameter (step size, tolerance, iteration cap) is invalid.
    InvalidParameter {
        /// Which parameter.
        name: &'static str,
        /// Why it is invalid.
        reason: String,
    },
    /// The objective returned a non-finite value or gradient.
    NonFiniteObjective,
}

impl fmt::Display for OptimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimError::UnboundedObjective => {
                write!(
                    f,
                    "objective is unbounded below (Hessian not positive definite)"
                )
            }
            OptimError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            OptimError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            OptimError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            OptimError::NonFiniteObjective => {
                write!(f, "objective produced a non-finite value or gradient")
            }
        }
    }
}

impl std::error::Error for OptimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OptimError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fm_linalg::LinalgError> for OptimError {
    fn from(e: fm_linalg::LinalgError) -> Self {
        OptimError::Linalg(e)
    }
}
