use fm_linalg::Matrix;

/// A differentiable objective function `f : ℝᵈ → ℝ` to minimise.
///
/// Implementors must return finite values for finite inputs wherever
/// possible (e.g. use numerically-stable formulations like
/// `fm_poly::taylor::log1p_exp` for logistic loss); the solvers treat
/// non-finite outputs as a hard error.
pub trait Objective {
    /// Number of variables `d`.
    fn dim(&self) -> usize;

    /// Objective value at `omega`.
    fn value(&self, omega: &[f64]) -> f64;

    /// Gradient at `omega` (length `d`).
    fn gradient(&self, omega: &[f64]) -> Vec<f64>;
}

/// An objective that can also produce its Hessian, enabling Newton steps.
pub trait TwiceDifferentiable: Objective {
    /// Hessian at `omega` (`d × d`, symmetric).
    fn hessian(&self, omega: &[f64]) -> Matrix;
}

/// Central-difference numerical gradient — a test utility for validating
/// analytic gradients of [`Objective`] implementations.
#[must_use]
pub fn numerical_gradient(f: &dyn Objective, omega: &[f64], h: f64) -> Vec<f64> {
    let mut g = vec![0.0; omega.len()];
    let mut probe = omega.to_vec();
    for i in 0..omega.len() {
        let orig = probe[i];
        probe[i] = orig + h;
        let up = f.value(&probe);
        probe[i] = orig - h;
        let down = f.value(&probe);
        probe[i] = orig;
        g[i] = (up - down) / (2.0 * h);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    /// f(ω) = Σ (ω_i − i)².
    struct Paraboloid {
        d: usize,
    }

    impl Objective for Paraboloid {
        fn dim(&self) -> usize {
            self.d
        }
        fn value(&self, omega: &[f64]) -> f64 {
            omega
                .iter()
                .enumerate()
                .map(|(i, w)| (w - i as f64) * (w - i as f64))
                .sum()
        }
        fn gradient(&self, omega: &[f64]) -> Vec<f64> {
            omega
                .iter()
                .enumerate()
                .map(|(i, w)| 2.0 * (w - i as f64))
                .collect()
        }
    }

    #[test]
    fn numerical_gradient_matches_analytic() {
        let f = Paraboloid { d: 3 };
        let omega = [0.5, -1.0, 4.0];
        let analytic = f.gradient(&omega);
        let numeric = numerical_gradient(&f, &omega, 1e-6);
        for (a, n) in analytic.iter().zip(&numeric) {
            assert!((a - n).abs() < 1e-6, "{a} vs {n}");
        }
    }
}
