//! Gradient descent with backtracking (Armijo) line search.
//!
//! The workhorse for objectives without a cheap Hessian. In this workspace
//! it solves the *exact* logistic objective for the NoPrivacy baseline when
//! Newton is not requested, and serves as the safety net inside
//! [`crate::newton::Newton`] when a Hessian is not positive definite.

use fm_linalg::vecops;

use crate::{Objective, OptimError, OptimResult, Result};

/// Armijo sufficient-decrease constant.
const ARMIJO_C: f64 = 1e-4;
/// Step shrink factor per backtracking round.
const BACKTRACK_RHO: f64 = 0.5;
/// Maximum backtracking rounds per iteration before declaring the step
/// numerically dead.
const MAX_BACKTRACKS: usize = 60;

/// Configurable gradient-descent solver.
#[derive(Debug, Clone)]
pub struct GradientDescent {
    /// Iteration cap.
    pub max_iters: usize,
    /// Convergence threshold on `‖∇f‖∞`.
    pub grad_tol: f64,
    /// Initial trial step for the first iteration; later iterations warm-
    /// start from double the previously accepted step.
    pub initial_step: f64,
}

impl Default for GradientDescent {
    fn default() -> Self {
        GradientDescent {
            max_iters: 2_000,
            grad_tol: 1e-8,
            initial_step: 1.0,
        }
    }
}

impl GradientDescent {
    /// Creates a solver with the given iteration cap and gradient tolerance.
    ///
    /// # Errors
    /// [`OptimError::InvalidParameter`] for a zero cap or non-positive
    /// tolerance.
    pub fn new(max_iters: usize, grad_tol: f64) -> Result<Self> {
        if max_iters == 0 {
            return Err(OptimError::InvalidParameter {
                name: "max_iters",
                reason: "must be at least 1".to_string(),
            });
        }
        // `!(x > 0)` deliberately also rejects NaN tolerances.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(grad_tol > 0.0) {
            return Err(OptimError::InvalidParameter {
                name: "grad_tol",
                reason: format!("{grad_tol} must be > 0"),
            });
        }
        Ok(GradientDescent {
            max_iters,
            grad_tol,
            ..GradientDescent::default()
        })
    }

    /// Minimises `f` starting from `omega0`.
    ///
    /// Returns the best iterate found; `converged` reports whether the
    /// gradient tolerance was met within the budget.
    ///
    /// # Errors
    /// * [`OptimError::DimensionMismatch`] when `omega0` has the wrong arity.
    /// * [`OptimError::NonFiniteObjective`] if `f` produces NaN/∞ at the
    ///   start point or along accepted steps.
    pub fn minimize(&self, f: &dyn Objective, omega0: &[f64]) -> Result<OptimResult> {
        if omega0.len() != f.dim() {
            return Err(OptimError::DimensionMismatch {
                expected: f.dim(),
                got: omega0.len(),
            });
        }
        let mut omega = omega0.to_vec();
        let mut value = f.value(&omega);
        if !value.is_finite() {
            return Err(OptimError::NonFiniteObjective);
        }
        let mut step = self.initial_step;

        for iter in 0..self.max_iters {
            let grad = f.gradient(&omega);
            if grad.iter().any(|g| !g.is_finite()) {
                return Err(OptimError::NonFiniteObjective);
            }
            let gnorm = vecops::norm_inf(&grad);
            if gnorm <= self.grad_tol {
                return Ok(OptimResult {
                    omega,
                    value,
                    iterations: iter,
                    converged: true,
                });
            }

            // Backtracking line search along −∇f.
            let gg = vecops::dot(&grad, &grad);
            let mut t = step;
            let mut accepted = false;
            for _ in 0..MAX_BACKTRACKS {
                let mut trial = omega.clone();
                vecops::axpy(-t, &grad, &mut trial);
                let trial_value = f.value(&trial);
                if trial_value.is_finite() && trial_value <= value - ARMIJO_C * t * gg {
                    omega = trial;
                    value = trial_value;
                    accepted = true;
                    break;
                }
                t *= BACKTRACK_RHO;
            }
            if !accepted {
                // Step underflowed: we are as converged as float math allows.
                return Ok(OptimResult {
                    omega,
                    value,
                    iterations: iter,
                    converged: gnorm <= self.grad_tol.max(1e-6),
                });
            }
            // Warm-start the next line search near the accepted step.
            step = (t * 2.0).min(1e6);
        }

        let grad = f.gradient(&omega);
        Ok(OptimResult {
            converged: vecops::norm_inf(&grad) <= self.grad_tol,
            omega,
            value,
            iterations: self.max_iters,
        })
    }

    /// [`GradientDescent::minimize`] with **divergence detection** for
    /// objectives that may be unbounded below — the general-degree noisy
    /// polynomials of the Functional Mechanism (an odd-degree noisy
    /// release is *always* unbounded; even-degree ones can lose coercivity
    /// to noise) and non-convex robust losses.
    ///
    /// Runs the same Armijo-backtracking iteration; an iterate escaping
    /// `‖ω‖₂ > radius`, or a non-finite final iterate, is reported as
    /// [`OptimError::UnboundedObjective`] instead of being returned as a
    /// bogus minimiser. A minimiser genuinely outside the radius is
    /// indistinguishable from divergence by design — callers pick a radius
    /// comfortably above any plausible parameter norm.
    ///
    /// # Errors
    /// * [`OptimError::UnboundedObjective`] on divergence.
    /// * The failure modes of [`GradientDescent::minimize`].
    pub fn minimize_within(
        &self,
        f: &dyn Objective,
        omega0: &[f64],
        radius: f64,
    ) -> Result<OptimResult> {
        let result = self.minimize(f, omega0)?;
        if !result.omega.iter().all(|v| v.is_finite()) || vecops::norm2(&result.omega) > radius {
            return Err(OptimError::UnboundedObjective);
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// f(ω) = (ω₁ − 3)² + 10(ω₂ + 1)².
    struct Bowl;

    impl Objective for Bowl {
        fn dim(&self) -> usize {
            2
        }
        fn value(&self, w: &[f64]) -> f64 {
            (w[0] - 3.0).powi(2) + 10.0 * (w[1] + 1.0).powi(2)
        }
        fn gradient(&self, w: &[f64]) -> Vec<f64> {
            vec![2.0 * (w[0] - 3.0), 20.0 * (w[1] + 1.0)]
        }
    }

    /// Rosenbrock: the classic hard valley.
    struct Rosenbrock;

    impl Objective for Rosenbrock {
        fn dim(&self) -> usize {
            2
        }
        fn value(&self, w: &[f64]) -> f64 {
            (1.0 - w[0]).powi(2) + 100.0 * (w[1] - w[0] * w[0]).powi(2)
        }
        fn gradient(&self, w: &[f64]) -> Vec<f64> {
            vec![
                -2.0 * (1.0 - w[0]) - 400.0 * w[0] * (w[1] - w[0] * w[0]),
                200.0 * (w[1] - w[0] * w[0]),
            ]
        }
    }

    #[test]
    fn minimize_within_accepts_interior_minimiser_and_flags_divergence() {
        let gd = GradientDescent::default();
        // Bowl minimiser at (3, −1), well inside radius 10.
        let res = gd.minimize_within(&Bowl, &[0.0, 0.0], 10.0).unwrap();
        assert!((res.omega[0] - 3.0).abs() < 1e-6);
        // A minimiser outside the radius is reported as unbounded.
        assert!(matches!(
            gd.minimize_within(&Bowl, &[0.0, 0.0], 1.0),
            Err(OptimError::UnboundedObjective)
        ));

        /// f(ω) = −ω² — unbounded below, iterates diverge.
        struct Cap;
        impl Objective for Cap {
            fn dim(&self) -> usize {
                1
            }
            fn value(&self, w: &[f64]) -> f64 {
                -w[0] * w[0]
            }
            fn gradient(&self, w: &[f64]) -> Vec<f64> {
                vec![-2.0 * w[0]]
            }
        }
        let err = gd.minimize_within(&Cap, &[0.5], 1e3);
        assert!(
            matches!(
                err,
                Err(OptimError::UnboundedObjective | OptimError::NonFiniteObjective)
            ),
            "{err:?}"
        );
    }

    #[test]
    fn converges_on_quadratic_bowl() {
        let gd = GradientDescent::default();
        let res = gd.minimize(&Bowl, &[0.0, 0.0]).unwrap();
        assert!(res.converged);
        assert!((res.omega[0] - 3.0).abs() < 1e-6);
        assert!((res.omega[1] + 1.0).abs() < 1e-6);
        assert!(res.value < 1e-10);
    }

    #[test]
    fn makes_progress_on_rosenbrock() {
        let gd = GradientDescent {
            max_iters: 30_000,
            grad_tol: 1e-6,
            initial_step: 1.0,
        };
        let res = gd.minimize(&Rosenbrock, &[-1.2, 1.0]).unwrap();
        // GD is slow on Rosenbrock but must reach the vicinity of (1, 1).
        assert!(res.value < 1e-3, "value {}", res.value);
    }

    #[test]
    fn already_optimal_returns_immediately() {
        let gd = GradientDescent::default();
        let res = gd.minimize(&Bowl, &[3.0, -1.0]).unwrap();
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn respects_iteration_cap() {
        let gd = GradientDescent {
            max_iters: 2,
            grad_tol: 1e-14,
            initial_step: 1e-6,
        };
        let res = gd.minimize(&Rosenbrock, &[-1.2, 1.0]).unwrap();
        assert!(!res.converged);
        assert_eq!(res.iterations, 2);
    }

    #[test]
    fn monotone_decrease() {
        // Armijo guarantees each accepted step decreases f.
        let gd = GradientDescent {
            max_iters: 50,
            ..GradientDescent::default()
        };
        let res = gd.minimize(&Bowl, &[100.0, -50.0]).unwrap();
        assert!(res.value <= Bowl.value(&[100.0, -50.0]));
    }

    #[test]
    fn parameter_validation() {
        assert!(GradientDescent::new(0, 1e-8).is_err());
        assert!(GradientDescent::new(10, 0.0).is_err());
        assert!(GradientDescent::new(10, -1.0).is_err());
        assert!(GradientDescent::new(10, f64::NAN).is_err());
    }

    #[test]
    fn dimension_mismatch() {
        let gd = GradientDescent::default();
        assert!(matches!(
            gd.minimize(&Bowl, &[1.0]),
            Err(OptimError::DimensionMismatch { .. })
        ));
    }

    struct NanObjective;
    impl Objective for NanObjective {
        fn dim(&self) -> usize {
            1
        }
        fn value(&self, _: &[f64]) -> f64 {
            f64::NAN
        }
        fn gradient(&self, _: &[f64]) -> Vec<f64> {
            vec![f64::NAN]
        }
    }

    #[test]
    fn non_finite_objective_is_an_error() {
        let gd = GradientDescent::default();
        assert!(matches!(
            gd.minimize(&NanObjective, &[0.0]),
            Err(OptimError::NonFiniteObjective)
        ));
    }
}
