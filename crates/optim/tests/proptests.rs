//! Property-based tests for the optimizers: solver correctness laws over
//! randomly generated convex problems.

use fm_linalg::{vecops, Matrix};
use fm_optim::gd::GradientDescent;
use fm_optim::newton::Newton;
use fm_optim::quadratic::{is_bounded_below, minimize_quadratic};
use fm_optim::{numerical_gradient, Objective, TwiceDifferentiable};
use proptest::prelude::*;

/// A strictly convex quadratic `ωᵀMω + αᵀω` with `M = AᵀA + I`.
#[derive(Debug, Clone)]
struct ConvexQuadratic {
    m: Matrix,
    alpha: Vec<f64>,
}

impl ConvexQuadratic {
    fn strategy(d: usize) -> impl Strategy<Value = ConvexQuadratic> {
        (
            proptest::collection::vec(-3.0..3.0f64, d * d),
            proptest::collection::vec(-3.0..3.0f64, d),
        )
            .prop_map(move |(data, alpha)| {
                let a = Matrix::from_vec(d, d, data).expect("sized");
                let mut m = a.transpose().matmul(&a).expect("square");
                m.add_diagonal(1.0);
                m.symmetrize().expect("square");
                ConvexQuadratic { m, alpha }
            })
    }
}

impl Objective for ConvexQuadratic {
    fn dim(&self) -> usize {
        self.alpha.len()
    }
    fn value(&self, omega: &[f64]) -> f64 {
        self.m.quadratic_form(omega).expect("arity") + vecops::dot(&self.alpha, omega)
    }
    fn gradient(&self, omega: &[f64]) -> Vec<f64> {
        // ∇ = 2Mω + α.
        let mut g = self.m.matvec(omega).expect("arity");
        vecops::scale(2.0, &mut g);
        vecops::axpy(1.0, &self.alpha, &mut g);
        g
    }
}

impl TwiceDifferentiable for ConvexQuadratic {
    fn hessian(&self, _omega: &[f64]) -> Matrix {
        self.m.scaled(2.0)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn closed_form_minimum_has_zero_gradient(
        q in (1usize..6).prop_flat_map(ConvexQuadratic::strategy)
    ) {
        let omega = minimize_quadratic(&q.m, &q.alpha).expect("SPD by construction");
        let g = q.gradient(&omega);
        let scale = 1.0 + q.m.max_abs() * vecops::norm_inf(&omega) + vecops::norm_inf(&q.alpha);
        prop_assert!(vecops::norm_inf(&g) <= 1e-7 * scale, "gradient {g:?}");
    }

    #[test]
    fn closed_form_is_a_global_minimum_on_probes(
        q in (1usize..5).prop_flat_map(ConvexQuadratic::strategy),
        probe in proptest::collection::vec(-2.0..2.0f64, 5),
    ) {
        let omega = minimize_quadratic(&q.m, &q.alpha).expect("SPD");
        let d = q.dim();
        let perturbed: Vec<f64> = omega.iter().zip(probe.iter().take(d)).map(|(w, p)| w + p).collect();
        prop_assert!(q.value(&omega) <= q.value(&perturbed) + 1e-9 * (1.0 + q.value(&perturbed).abs()));
    }

    #[test]
    fn gradient_descent_reaches_closed_form(
        q in (1usize..5).prop_flat_map(ConvexQuadratic::strategy)
    ) {
        // On ill-conditioned draws GD may hit the iteration cap before the
        // gradient tolerance — the property that matters is the optimality
        // *gap*, which linear convergence makes tiny long before then.
        let exact = minimize_quadratic(&q.m, &q.alpha).expect("SPD");
        let gd = GradientDescent::new(20_000, 1e-8).expect("config");
        let result = gd.minimize(&q, &vec![0.0; q.dim()]).expect("convex problem");
        let gap = result.value - q.value(&exact);
        prop_assert!(
            gap.abs() <= 1e-5 * (1.0 + q.value(&exact).abs()),
            "gap {gap} (converged = {})",
            result.converged
        );
    }

    #[test]
    fn newton_reaches_closed_form_in_few_steps(
        q in (1usize..5).prop_flat_map(ConvexQuadratic::strategy)
    ) {
        let exact = minimize_quadratic(&q.m, &q.alpha).expect("SPD");
        let result = Newton::default().minimize(&q, &vec![0.0; q.dim()]).expect("convex");
        prop_assert!(result.converged);
        // A quadratic is solved by one full Newton step (plus line-search
        // bookkeeping); allow a handful.
        prop_assert!(result.iterations <= 5, "{} iterations", result.iterations);
        prop_assert!(vecops::dist2(&result.omega, &exact) <= 1e-6 * (1.0 + vecops::norm2(&exact)));
    }

    #[test]
    fn gd_never_increases_the_objective(
        q in (1usize..5).prop_flat_map(ConvexQuadratic::strategy),
        start in proptest::collection::vec(-2.0..2.0f64, 5),
    ) {
        let d = q.dim();
        let omega0: Vec<f64> = start.into_iter().take(d).collect();
        let omega0 = if omega0.len() < d { vec![0.5; d] } else { omega0 };
        let gd = GradientDescent::new(500, 1e-9).expect("config");
        let result = gd.minimize(&q, &omega0).expect("convex");
        // Armijo line search guarantees monotone decrease.
        prop_assert!(result.value <= q.value(&omega0) + 1e-12);
    }

    #[test]
    fn numerical_gradient_validates_analytic(
        q in (1usize..5).prop_flat_map(ConvexQuadratic::strategy),
        probe in proptest::collection::vec(-1.0..1.0f64, 5),
    ) {
        let d = q.dim();
        let omega: Vec<f64> = probe.into_iter().take(d).collect();
        let omega = if omega.len() < d { vec![0.1; d] } else { omega };
        let analytic = q.gradient(&omega);
        let numeric = numerical_gradient(&q, &omega, 1e-6);
        for i in 0..d {
            let scale = 1.0 + analytic[i].abs();
            prop_assert!((analytic[i] - numeric[i]).abs() <= 1e-4 * scale,
                "component {i}: {} vs {}", analytic[i], numeric[i]);
        }
    }

    #[test]
    fn indefinite_quadratics_are_reported_unbounded(
        d in 1usize..5,
        negative_idx in 0usize..5,
    ) {
        // M with one negative diagonal entry: unbounded below.
        let idx = negative_idx % d;
        let diag: Vec<f64> = (0..d).map(|i| if i == idx { -1.0 } else { 1.0 }).collect();
        let m = Matrix::from_diagonal(&diag);
        prop_assert!(!is_bounded_below(&m));
        prop_assert!(matches!(
            minimize_quadratic(&m, &vec![0.0; d]),
            Err(fm_optim::OptimError::UnboundedObjective)
        ));
    }
}
