//! **DPME** — Lei's differentially private M-estimators (NIPS 2011), the
//! state-of-the-art comparison method in the paper's experiments.
//!
//! Pipeline (Section 2's description, implemented faithfully):
//!
//! 1. Discretize the joint `(x, y)` domain into an equi-width histogram
//!    with `b ≈ n^{1/(d+2)}` bins per axis (Lei's bandwidth rate
//!    `h ∝ n^{−1/(d+2)}`; the bin count shrinks as dimensionality grows —
//!    "coarser granularity", as the paper puts it).
//! 2. Release every cell count through the Laplace mechanism with
//!    sensitivity 2 (replacing one tuple moves one unit of mass between two
//!    cells).
//! 3. Produce a synthetic dataset matching the (non-negative, rounded)
//!    noisy histogram — `count` copies of each cell centre.
//! 4. Run *ordinary* (non-private) regression on the synthetic data; by
//!    post-processing the result stays ε-DP. Both solvers route through
//!    the workspace's batched Gram kernels (`fm_linalg::Matrix::syrk_acc`
//!    family): the linear fit solves normal equations assembled by blocked
//!    syrk/gemv, and the logistic fit's Newton Hessians use the weighted
//!    syrk — so the synthetic-data regressions ride the same hot path as
//!    the Functional Mechanism's coefficient assembly.
//!
//! With `d = 13` and `b = 2` there are already `2^14 = 16384` cells sharing
//! `n` tuples of signal plus `16384` independent Laplace draws — the
//! high-dimensional collapse Figure 4 shows.

use std::collections::HashMap;

use rand::Rng;

use fm_core::model::{LinearModel, LogisticModel};
use fm_data::Dataset;
use fm_privacy::mechanism::LaplaceMechanism;

use crate::histogram::{JointGrid, LabelSpec};
use crate::noprivacy::{LinearRegression, LogisticRegression};
use crate::{BaselineError, Result};

/// Histogram counts change by at most 2 in L1 when one tuple is replaced.
const HISTOGRAM_SENSITIVITY: f64 = 2.0;

/// Densest grid DPME will enumerate; beyond this the bin count is reduced.
const MAX_DENSE_CELLS: usize = 6_000_000;

/// Synthetic dataset size cap, as a multiple of the input cardinality.
const SYNTHETIC_CAP_FACTOR: usize = 4;

/// Lei's DPME baseline.
#[derive(Debug, Clone)]
pub struct Dpme {
    epsilon: f64,
    /// Explicit bins-per-axis override (`None` ⇒ Lei's `n^{1/(d+2)}` rule).
    bins_override: Option<usize>,
    /// Grid the symmetric `[−1, 1]` domain instead of the footnote-1
    /// `[0, 1/√d]` domain (for centred, non-footnote-1 data).
    symmetric_domain: bool,
}

impl Dpme {
    /// Creates DPME with privacy budget `epsilon` and the recommended
    /// bandwidth rule.
    ///
    /// # Errors
    /// [`BaselineError::InvalidConfig`] for non-positive/non-finite ε.
    pub fn new(epsilon: f64) -> Result<Self> {
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(BaselineError::InvalidConfig {
                name: "epsilon",
                reason: format!("{epsilon} must be finite and > 0"),
            });
        }
        Ok(Dpme {
            epsilon,
            bins_override: None,
            symmetric_domain: false,
        })
    }

    /// Overrides the bins-per-axis choice (ablation/testing hook).
    ///
    /// # Errors
    /// [`BaselineError::InvalidConfig`] for zero bins.
    pub fn with_bins(mut self, bins: usize) -> Result<Self> {
        if bins == 0 {
            return Err(BaselineError::InvalidConfig {
                name: "bins",
                reason: "at least one bin required".to_string(),
            });
        }
        self.bins_override = Some(bins);
        Ok(self)
    }

    /// Grids the symmetric `[−1, 1]` feature domain instead of the
    /// footnote-1 `[0, 1/√d]` domain. Use for datasets whose features are
    /// centred (negative coordinates) rather than footnote-1 normalized.
    #[must_use]
    pub fn with_symmetric_domain(mut self) -> Self {
        self.symmetric_domain = true;
        self
    }

    fn grid(&self, d: usize, bins: usize, label: LabelSpec) -> Result<JointGrid> {
        if self.symmetric_domain {
            JointGrid::over_symmetric_domain(d, bins, label)
        } else {
            JointGrid::over_normalized_domain(d, bins, label)
        }
    }

    /// The privacy budget ε.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Lei's bandwidth rule: `h_n = (log n / n)^{1/(d+2)}` with cells no
    /// wider than `h_n`, i.e. `b = ⌈(n / log n)^{1/(d+2)}⌉` bins per axis
    /// (minimum 2), shrunk if the dense grid would exceed the enumeration
    /// limit.
    #[must_use]
    pub fn bins_for(&self, n: usize, d: usize) -> usize {
        let mut bins = self.bins_override.unwrap_or_else(|| {
            let n = (n.max(3)) as f64;
            ((n / n.ln()).powf(1.0 / (d as f64 + 2.0)).ceil() as usize).max(2)
        });
        // Shrink until the dense grid is enumerable.
        while bins > 2 && (bins as f64).powi(d as i32 + 1) * 2.0 > MAX_DENSE_CELLS as f64 {
            bins -= 1;
        }
        bins
    }

    /// ε-DP linear regression via the noisy-histogram pipeline.
    ///
    /// # Errors
    /// * [`BaselineError::Data`] on contract violations.
    /// * [`BaselineError::NoSyntheticData`] when the noisy histogram rounds
    ///   to all-zero.
    pub fn fit_linear(&self, data: &Dataset, rng: &mut impl Rng) -> Result<LinearModel> {
        data.check_normalized_linear()?;
        let bins = self.bins_for(data.n(), data.d());
        let grid = self.grid(
            data.d(),
            bins,
            LabelSpec::Continuous {
                bins,
                lo: -1.0,
                hi: 1.0,
            },
        )?;
        let synthetic = self.noisy_synthetic(data, &grid, rng)?;
        LinearRegression::with_normal_equations().fit(&synthetic)
    }

    /// ε-DP logistic regression via the noisy-histogram pipeline.
    ///
    /// # Errors
    /// As [`Dpme::fit_linear`].
    pub fn fit_logistic(&self, data: &Dataset, rng: &mut impl Rng) -> Result<LogisticModel> {
        data.check_normalized_logistic()?;
        let bins = self.bins_for(data.n(), data.d());
        let grid = self.grid(data.d(), bins, LabelSpec::Binary)?;
        let synthetic = self.noisy_synthetic(data, &grid, rng)?;
        if synthetic.y().iter().all(|&y| y == 0.0) || synthetic.y().iter().all(|&y| y == 1.0) {
            // Single-class synthetic data: the MLE diverges; return the
            // majority-class model (weights at zero predict p = ½; bias-free
            // models cannot express a prior, so zero is the honest output).
            return Ok(LogisticModel::new(vec![0.0; data.d()], Some(self.epsilon)));
        }
        LogisticRegression::new().fit_unchecked(&synthetic)
    }

    /// Steps 1–3: exact counts → Laplace noise on *every* cell → rounded
    /// non-negative counts → synthetic dataset.
    fn noisy_synthetic(
        &self,
        data: &Dataset,
        grid: &JointGrid,
        rng: &mut impl Rng,
    ) -> Result<Dataset> {
        let cells = grid.num_cells_dense(MAX_DENSE_CELLS)?;
        let mech = LaplaceMechanism::new(HISTOGRAM_SENSITIVITY, self.epsilon)?;
        let exact = grid.count(data);

        let mut noisy: HashMap<u64, u64> = HashMap::new();
        for cell in 0..cells as u64 {
            let clean = *exact.get(&cell).unwrap_or(&0) as f64;
            let perturbed = mech.privatize_scalar(clean, rng);
            let rounded = perturbed.round();
            if rounded >= 1.0 {
                noisy.insert(cell, rounded as u64);
            }
        }
        grid.synthesize(
            &noisy,
            data.n().saturating_mul(SYNTHETIC_CAP_FACTOR).max(16),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fm_linalg::vecops;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(909)
    }

    #[test]
    fn config_validation() {
        assert!(Dpme::new(0.0).is_err());
        assert!(Dpme::new(-1.0).is_err());
        assert!(Dpme::new(f64::NAN).is_err());
        assert!(Dpme::new(1.0).unwrap().with_bins(0).is_err());
        assert!(Dpme::new(1.0).unwrap().with_bins(4).is_ok());
    }

    #[test]
    fn bandwidth_rule_shrinks_with_dimension() {
        let dpme = Dpme::new(1.0).unwrap();
        let n = 100_000;
        let b4 = dpme.bins_for(n, 4);
        let b13 = dpme.bins_for(n, 13);
        assert!(b4 > b13, "bins d=4 ({b4}) should exceed d=13 ({b13})");
        assert!(b13 >= 2);
        // Dense-enumeration guard engages for large d.
        assert!((b13 as f64).powi(14) * 2.0 <= 2_000_000.0 * (b13 as f64)); // sanity
    }

    #[test]
    fn override_respected() {
        let dpme = Dpme::new(1.0).unwrap().with_bins(3).unwrap();
        assert_eq!(dpme.bins_for(1_000_000, 2), 3);
    }

    #[test]
    fn linear_fit_recovers_signal_in_low_dimension() {
        // Generous ε and 2-D data: DPME should find the trend.
        let mut r = rng();
        let w = vec![0.5, -0.4];
        let data = fm_data::synth::linear_dataset_with_weights(&mut r, 40_000, &w, 0.05);
        let model = Dpme::new(4.0)
            .unwrap()
            .with_symmetric_domain()
            .fit_linear(&data, &mut r)
            .unwrap();
        // Loose check: direction should correlate with the ground truth.
        let cos = vecops::dot(model.weights(), &w)
            / (vecops::norm2(model.weights()).max(1e-9) * vecops::norm2(&w));
        assert!(cos > 0.5, "cosine {cos}, weights {:?}", model.weights());
    }

    #[test]
    fn logistic_fit_runs_and_is_bounded() {
        let mut r = rng();
        let data = fm_data::synth::logistic_dataset(&mut r, 20_000, 3, 8.0);
        let model = Dpme::new(2.0)
            .unwrap()
            .with_symmetric_domain()
            .fit_logistic(&data, &mut r)
            .unwrap();
        assert_eq!(model.dim(), 3);
        let p = model.probability(data.x().row(0));
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn rejects_unnormalized_data() {
        let x = fm_linalg::Matrix::from_rows(&[&[5.0, 0.0]]).unwrap();
        let data = Dataset::new(x, vec![0.3]).unwrap();
        let mut r = rng();
        assert!(Dpme::new(1.0).unwrap().fit_linear(&data, &mut r).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let data = fm_data::synth::linear_dataset(&mut rng(), 5_000, 2, 0.1);
        let run = || {
            let mut r = rand::rngs::StdRng::seed_from_u64(77);
            Dpme::new(1.0)
                .unwrap()
                .with_symmetric_domain()
                .fit_linear(&data, &mut r)
                .unwrap()
                .weights()
                .to_vec()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn excess_error_over_ols_grows_as_epsilon_shrinks() {
        // The robust mechanistic invariant at fixed (n, d): less budget ⇒
        // noisier histogram ⇒ worse accuracy relative to the non-private
        // OLS fit on the same data. (The paper's dimensionality degradation
        // is workload-dependent and is exercised on the census data by the
        // fm-bench harness instead.)
        let mut r = rng();
        let w = vec![0.4, -0.3, 0.2];
        let data = fm_data::synth::linear_dataset_with_weights(&mut r, 20_000, &w, 0.05);
        let ols = crate::noprivacy::LinearRegression::new()
            .fit(&data)
            .unwrap();
        let ols_mse = fm_data::metrics::mse(&ols.predict_batch(data.x()), data.y());
        let reps = 6;
        let excess = |eps: f64, r: &mut rand::rngs::StdRng| -> f64 {
            let mut total = 0.0;
            for _ in 0..reps {
                let dpme = Dpme::new(eps)
                    .unwrap()
                    .with_symmetric_domain()
                    .fit_linear(&data, r)
                    .unwrap();
                total += fm_data::metrics::mse(&dpme.predict_batch(data.x()), data.y()) - ols_mse;
            }
            total / reps as f64
        };
        let generous = excess(3.2, &mut r);
        let strict = excess(0.1, &mut r);
        assert!(
            strict > generous,
            "DPME excess error should grow as ε shrinks: ε=3.2 → {generous}, ε=0.1 → {strict}"
        );
    }
}
