//! The **Truncated** baseline (Section 7): minimise the §5 degree-2 Taylor
//! objective *without* injecting any noise.
//!
//! Truncated is not a private method — it exists to decompose FM's error
//! into (a) the approximation error of the truncation and (b) the privacy
//! noise. The paper's Figures 4c–d show Truncated ≈ NoPrivacy, which
//! validates the truncation (Lemma 4's constant bound), and FM slightly
//! above Truncated, which isolates the noise cost.

use fm_core::logreg::DpLogisticRegression;
use fm_core::model::LogisticModel;
use fm_data::Dataset;

use crate::Result;

/// Logistic regression on the truncated (degree-2 Taylor) objective, no
/// noise. Linear regression has no Truncated variant: its objective is
/// already an exact polynomial (the paper omits it from Figures 4a–b for
/// the same reason).
#[derive(Debug, Clone, Copy, Default)]
pub struct TruncatedLogistic;

impl TruncatedLogistic {
    /// Creates the baseline.
    #[must_use]
    pub fn new() -> Self {
        TruncatedLogistic
    }

    /// Minimises `f̂_D(ω)` exactly (closed-form quadratic solve).
    ///
    /// # Errors
    /// [`crate::BaselineError::Fm`] for contract violations or a degenerate
    /// quadratic.
    pub fn fit(&self, data: &Dataset) -> Result<LogisticModel> {
        Ok(DpLogisticRegression::builder()
            .build()
            .fit_truncated_without_privacy(data)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noprivacy::LogisticRegression;
    use fm_linalg::vecops;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(777)
    }

    #[test]
    fn truncated_close_to_exact_mle_in_accuracy() {
        // The paper's claim: Truncated ≈ NoPrivacy in misclassification.
        let mut r = rng();
        let w = vec![0.4, -0.5, 0.2];
        let data = fm_data::synth::logistic_dataset_with_weights(&mut r, 30_000, &w, 10.0);
        let trunc = TruncatedLogistic::new().fit(&data).unwrap();
        let exact = LogisticRegression::new().fit(&data).unwrap();

        let err_t = fm_data::metrics::misclassification_rate(
            &trunc.probabilities_batch(data.x()),
            data.y(),
        );
        let err_e = fm_data::metrics::misclassification_rate(
            &exact.probabilities_batch(data.x()),
            data.y(),
        );
        assert!(
            (err_t - err_e).abs() < 0.02,
            "truncated {err_t} vs exact {err_e}"
        );
    }

    #[test]
    fn truncated_weights_differ_from_exact_but_align() {
        // There is a persistent gap in parameter space (no Theorem-2
        // analogue, §5.2) — but the direction agrees.
        let mut r = rng();
        let w = vec![0.5, 0.3];
        let data = fm_data::synth::logistic_dataset_with_weights(&mut r, 40_000, &w, 6.0);
        let trunc = TruncatedLogistic::new().fit(&data).unwrap();
        let exact = LogisticRegression::new().fit(&data).unwrap();
        let cos = vecops::dot(trunc.weights(), exact.weights())
            / (vecops::norm2(trunc.weights()) * vecops::norm2(exact.weights()));
        assert!(cos > 0.97, "cosine {cos}");
    }

    #[test]
    fn rejects_non_binary_labels() {
        let x = fm_linalg::Matrix::from_rows(&[&[0.1]]).unwrap();
        let data = Dataset::new(x, vec![0.4]).unwrap();
        assert!(TruncatedLogistic::new().fit(&data).is_err());
    }

    #[test]
    fn deterministic() {
        let mut r = rng();
        let data = fm_data::synth::logistic_dataset(&mut r, 1_000, 3, 5.0);
        let a = TruncatedLogistic::new().fit(&data).unwrap();
        let b = TruncatedLogistic::new().fit(&data).unwrap();
        assert_eq!(a.weights(), b.weights());
    }
}
