//! Joint (features × label) histograms over the normalized domain — the
//! shared substrate of the DPME and Filter-Priority baselines.
//!
//! Both baselines reduce regression to *count publication*: discretize the
//! joint domain of `(x, y)` into an equi-width grid, release noisy cell
//! counts, synthesize one tuple per unit of noisy count at each cell
//! centre, and run ordinary regression on the synthetic data. Everything
//! downstream of the noisy counts is post-processing, so the privacy
//! argument reduces to the Laplace mechanism on a histogram (L1 sensitivity
//! 2 under tuple replacement).
//!
//! The curse of dimensionality lives here: the cell count is
//! `bins^(d+1)`, so at fixed `n` the per-cell signal decays exponentially
//! in `d` — which is exactly why Figure 4 of the paper shows DPME and FP
//! degrading with dimensionality while FM does not.

use std::collections::HashMap;

use rand::Rng;

use fm_data::Dataset;
use fm_linalg::Matrix;

use crate::{BaselineError, Result};

/// How the label axis of the joint grid is discretized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LabelSpec {
    /// Continuous label in `[lo, hi]` split into `bins` equi-width cells
    /// (linear regression: `[−1, 1]`).
    Continuous {
        /// Number of label bins.
        bins: usize,
        /// Label domain lower bound.
        lo: f64,
        /// Label domain upper bound.
        hi: f64,
    },
    /// Binary label `{0, 1}` — two cells whose "centres" are the exact
    /// class values (logistic regression).
    Binary,
}

impl LabelSpec {
    fn bins(&self) -> usize {
        match *self {
            LabelSpec::Continuous { bins, .. } => bins,
            LabelSpec::Binary => 2,
        }
    }

    fn index_of(&self, y: f64) -> usize {
        match *self {
            LabelSpec::Continuous { bins, lo, hi } => bin_index(y, lo, hi, bins),
            LabelSpec::Binary => usize::from(y > 0.5),
        }
    }

    fn center_of(&self, idx: usize) -> f64 {
        match *self {
            LabelSpec::Continuous { bins, lo, hi } => bin_center(idx, lo, hi, bins),
            LabelSpec::Binary => idx as f64,
        }
    }
}

fn bin_index(v: f64, lo: f64, hi: f64, bins: usize) -> usize {
    let t = ((v - lo) / (hi - lo) * bins as f64).floor();
    (t as isize).clamp(0, bins as isize - 1) as usize
}

fn bin_center(idx: usize, lo: f64, hi: f64, bins: usize) -> f64 {
    lo + (hi - lo) * (idx as f64 + 0.5) / bins as f64
}

/// An equi-width joint grid over `d` features plus the label.
#[derive(Debug, Clone)]
pub struct JointGrid {
    /// Bins per feature axis.
    feature_bins: usize,
    /// Per-feature `(lo, hi)` bounds.
    feature_bounds: Vec<(f64, f64)>,
    label: LabelSpec,
}

impl JointGrid {
    /// Builds a grid over the paper's normalized feature domain
    /// (`x_j ∈ [0, 1/√d]` after footnote-1 normalization).
    ///
    /// # Errors
    /// [`BaselineError::InvalidConfig`] for `d == 0`, `feature_bins < 1`,
    /// or a degenerate label spec.
    pub fn over_normalized_domain(d: usize, feature_bins: usize, label: LabelSpec) -> Result<Self> {
        let hi = 1.0 / (d.max(1) as f64).sqrt();
        Self::over_domain(d, feature_bins, label, (0.0, hi))
    }

    /// Builds a grid over the symmetric domain `x_j ∈ [−1, 1]` — the widest
    /// box containing the raw `‖x‖₂ ≤ 1` contract, for datasets that are
    /// *not* footnote-1 normalized (e.g. centred covariates).
    ///
    /// # Errors
    /// As [`JointGrid::over_normalized_domain`].
    pub fn over_symmetric_domain(d: usize, feature_bins: usize, label: LabelSpec) -> Result<Self> {
        Self::over_domain(d, feature_bins, label, (-1.0, 1.0))
    }

    /// Builds a grid with explicit per-feature bounds `(lo, hi)` applied to
    /// every axis. Bounds must be data-independent (declared domain
    /// knowledge), or the privacy argument of the calling mechanism breaks.
    ///
    /// # Errors
    /// [`BaselineError::InvalidConfig`] on degenerate configuration.
    pub fn over_domain(
        d: usize,
        feature_bins: usize,
        label: LabelSpec,
        bounds: (f64, f64),
    ) -> Result<Self> {
        if d == 0 {
            return Err(BaselineError::InvalidConfig {
                name: "d",
                reason: "at least one feature required".to_string(),
            });
        }
        if feature_bins == 0 {
            return Err(BaselineError::InvalidConfig {
                name: "feature_bins",
                reason: "at least one bin required".to_string(),
            });
        }
        if bounds.1 <= bounds.0 {
            return Err(BaselineError::InvalidConfig {
                name: "bounds",
                reason: format!("degenerate range [{}, {}]", bounds.0, bounds.1),
            });
        }
        if let LabelSpec::Continuous { bins, lo, hi } = label {
            if bins == 0 || hi <= lo {
                return Err(BaselineError::InvalidConfig {
                    name: "label",
                    reason: format!("bins = {bins}, range = [{lo}, {hi}]"),
                });
            }
        }
        Ok(JointGrid {
            feature_bins,
            feature_bounds: vec![bounds; d],
            label,
        })
    }

    /// Number of features `d`.
    #[must_use]
    pub fn d(&self) -> usize {
        self.feature_bounds.len()
    }

    /// Bins per feature axis.
    #[must_use]
    pub fn feature_bins(&self) -> usize {
        self.feature_bins
    }

    /// Total number of joint cells as an `f64` (can exceed `usize` for the
    /// sparse Filter-Priority path).
    #[must_use]
    pub fn num_cells_f64(&self) -> f64 {
        (self.feature_bins as f64).powi(self.d() as i32) * self.label.bins() as f64
    }

    /// Total number of joint cells as `usize`, when small enough to
    /// enumerate densely.
    ///
    /// # Errors
    /// [`BaselineError::InvalidConfig`] when the grid exceeds `limit` cells.
    pub fn num_cells_dense(&self, limit: usize) -> Result<usize> {
        let cells = self.num_cells_f64();
        if cells > limit as f64 {
            return Err(BaselineError::InvalidConfig {
                name: "grid",
                reason: format!("{cells:.0} cells exceed the dense limit {limit}"),
            });
        }
        Ok(cells as usize)
    }

    /// Flattened cell index of a `(x, y)` tuple.
    #[must_use]
    pub fn cell_of(&self, x: &[f64], y: f64) -> u64 {
        debug_assert_eq!(x.len(), self.d(), "grid arity");
        let mut idx: u64 = self.label.index_of(y) as u64;
        for (v, &(lo, hi)) in x.iter().zip(&self.feature_bounds) {
            idx = idx * self.feature_bins as u64 + bin_index(*v, lo, hi, self.feature_bins) as u64;
        }
        idx
    }

    /// Centre `(x, y)` of a flattened cell index (inverse of [`JointGrid::cell_of`]
    /// up to discretization).
    #[must_use]
    pub fn center_of(&self, cell: u64) -> (Vec<f64>, f64) {
        let mut rem = cell;
        let d = self.d();
        let mut x = vec![0.0; d];
        for j in (0..d).rev() {
            let bin = (rem % self.feature_bins as u64) as usize;
            rem /= self.feature_bins as u64;
            let (lo, hi) = self.feature_bounds[j];
            x[j] = bin_center(bin, lo, hi, self.feature_bins);
        }
        let y = self.label.center_of(rem as usize);
        (x, y)
    }

    /// Sparse exact counts of `data` over the grid.
    #[must_use]
    pub fn count(&self, data: &Dataset) -> HashMap<u64, u64> {
        let mut counts = HashMap::new();
        for (x, y) in data.tuples() {
            *counts.entry(self.cell_of(x, y)).or_insert(0) += 1;
        }
        counts
    }

    /// Materialises a synthetic dataset from (noisy) per-cell counts:
    /// `count` tuples at each cell centre. If the total exceeds `cap`, every
    /// cell's count is scaled down proportionally (round-half-up, minimum 1
    /// for cells that started non-zero after scaling ≥ 0.5) — a fair
    /// reduction that preserves the published distribution rather than
    /// favouring low cell indices.
    ///
    /// # Errors
    /// [`BaselineError::NoSyntheticData`] when every count is zero (or all
    /// round away under scaling).
    pub fn synthesize(&self, counts: &HashMap<u64, u64>, cap: usize) -> Result<Dataset> {
        let mut cells: Vec<(u64, u64)> = counts
            .iter()
            .filter(|(_, &c)| c > 0)
            .map(|(&i, &c)| (i, c))
            .collect();
        cells.sort_unstable();
        let total: u64 = cells.iter().map(|&(_, c)| c).sum();
        if total == 0 {
            return Err(BaselineError::NoSyntheticData);
        }
        let scale = if total as usize > cap {
            cap as f64 / total as f64
        } else {
            1.0
        };
        let d = self.d();
        let mut data = Vec::new();
        let mut y = Vec::new();
        for (idx, c) in cells {
            let scaled = ((c as f64) * scale).round() as u64;
            if scaled == 0 {
                continue;
            }
            let (cx, cy) = self.center_of(idx);
            for _ in 0..scaled {
                data.extend_from_slice(&cx);
                y.push(cy);
            }
        }
        if y.is_empty() {
            return Err(BaselineError::NoSyntheticData);
        }
        let x = Matrix::from_vec(y.len(), d, data)?;
        Ok(Dataset::new(x, y)?)
    }

    /// Draws a uniformly random cell index — used by Filter-Priority to
    /// place passing zero-cells without enumerating the domain.
    pub fn random_cell(&self, rng: &mut impl Rng) -> u64 {
        let label_bin = rng.gen_range(0..self.label.bins()) as u64;
        let mut idx = label_bin;
        for _ in 0..self.d() {
            idx = idx * self.feature_bins as u64 + rng.gen_range(0..self.feature_bins) as u64;
        }
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn grid(d: usize, bins: usize) -> JointGrid {
        JointGrid::over_normalized_domain(
            d,
            bins,
            LabelSpec::Continuous {
                bins: 4,
                lo: -1.0,
                hi: 1.0,
            },
        )
        .unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(JointGrid::over_normalized_domain(0, 2, LabelSpec::Binary).is_err());
        assert!(JointGrid::over_normalized_domain(2, 0, LabelSpec::Binary).is_err());
        assert!(JointGrid::over_normalized_domain(
            2,
            2,
            LabelSpec::Continuous {
                bins: 0,
                lo: 0.0,
                hi: 1.0
            }
        )
        .is_err());
        assert!(JointGrid::over_normalized_domain(
            2,
            2,
            LabelSpec::Continuous {
                bins: 2,
                lo: 1.0,
                hi: 0.0
            }
        )
        .is_err());
    }

    #[test]
    fn cell_counts_multiply() {
        let g = grid(3, 5);
        assert_eq!(g.num_cells_f64(), 125.0 * 4.0);
        assert_eq!(g.num_cells_dense(1_000).unwrap(), 500);
        assert!(g.num_cells_dense(100).is_err());
    }

    #[test]
    fn cell_of_center_roundtrip() {
        let g = grid(2, 4);
        let cells = g.num_cells_dense(1_000).unwrap() as u64;
        for cell in 0..cells {
            let (x, y) = g.center_of(cell);
            assert_eq!(g.cell_of(&x, y), cell, "roundtrip failed for cell {cell}");
        }
    }

    #[test]
    fn binary_label_centres_are_exact_classes() {
        let g = JointGrid::over_normalized_domain(2, 3, LabelSpec::Binary).unwrap();
        let cells = g.num_cells_dense(100).unwrap() as u64;
        for cell in 0..cells {
            let (_, y) = g.center_of(cell);
            assert!(y == 0.0 || y == 1.0);
        }
        // Roundtrip with exact labels.
        let (x, _) = g.center_of(3);
        assert_eq!(g.cell_of(&x, 1.0), g.cell_of(&x, 0.0) + 3u64.pow(2));
    }

    #[test]
    fn boundary_values_clamp_into_range() {
        let g = grid(2, 4);
        let hi = 1.0 / 2.0_f64.sqrt();
        // Exactly at the top of the domain: still a valid cell.
        let cell = g.cell_of(&[hi, hi], 1.0);
        assert!(cell < g.num_cells_f64() as u64);
        // Slightly outside: clamped.
        let cell2 = g.cell_of(&[hi + 0.1, -0.1], 2.0);
        assert!(cell2 < g.num_cells_f64() as u64);
    }

    #[test]
    fn counting_sums_to_n() {
        let mut r = rand::rngs::StdRng::seed_from_u64(8);
        let data = fm_data::synth::linear_dataset(&mut r, 500, 3, 0.1);
        // Shift features into [0, 1/√d]: synth uses the ball, so clamp view.
        let g = grid(3, 4);
        let counts = g.count(&data);
        let total: u64 = counts.values().sum();
        assert_eq!(total, 500);
    }

    #[test]
    fn synthesize_replicates_counts() {
        let g = grid(2, 2);
        let mut counts = HashMap::new();
        counts.insert(0u64, 3u64);
        counts.insert(5u64, 2u64);
        let ds = g.synthesize(&counts, 100).unwrap();
        assert_eq!(ds.n(), 5);
        // All tuples are at cell centres inside the domain.
        for (x, y) in ds.tuples() {
            assert!(x.iter().all(|&v| (0.0..=1.0).contains(&v)));
            assert!((-1.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn synthesize_respects_cap() {
        let g = grid(2, 2);
        let mut counts = HashMap::new();
        counts.insert(1u64, 1_000u64);
        let ds = g.synthesize(&counts, 64).unwrap();
        assert_eq!(ds.n(), 64);
    }

    #[test]
    fn synthesize_empty_is_error() {
        let g = grid(2, 2);
        let counts = HashMap::new();
        assert!(matches!(
            g.synthesize(&counts, 10),
            Err(BaselineError::NoSyntheticData)
        ));
        let mut zeros = HashMap::new();
        zeros.insert(0u64, 0u64);
        assert!(g.synthesize(&zeros, 10).is_err());
    }

    #[test]
    fn random_cells_in_range() {
        let g = grid(3, 3);
        let max = g.num_cells_f64() as u64;
        let mut r = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..200 {
            assert!(g.random_cell(&mut r) < max);
        }
    }
}
