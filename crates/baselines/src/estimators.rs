//! The baselines behind `fm-core`'s generic [`DpEstimator`] surface.
//!
//! Section 7's comparison runs five methods through one protocol; these
//! impls are what let the harness hold the whole line-up as
//! `&dyn DpEstimator<Model = …>` and drive every method — private or not —
//! through the same budget-aware [`fm_core::session::PrivacySession`]
//! loop:
//!
//! * [`LinearRegression`] / [`LogisticRegression`] / [`TruncatedLogistic`]
//!   implement the trait directly (`epsilon() == None`: the session runs
//!   them without debiting).
//! * DPME and FP each fit *two* families, so a `DpEstimator` impl (one
//!   `Model` type per estimator) lives on the task-pinned wrappers
//!   [`DpmeLinear`] / [`DpmeLogistic`] / [`FpLinear`] / [`FpLogistic`].
//!
//! ```
//! use fm_baselines::estimators::DpmeLinear;
//! use fm_baselines::dpme::Dpme;
//! use fm_baselines::noprivacy::LinearRegression;
//! use fm_core::estimator::DpEstimator;
//! use fm_core::model::LinearModel;
//!
//! let lineup: Vec<(&str, Box<dyn DpEstimator<Model = LinearModel>>)> = vec![
//!     ("NoPrivacy", Box::new(LinearRegression::new())),
//!     ("DPME", Box::new(DpmeLinear(Dpme::new(0.8).unwrap()))),
//! ];
//! assert_eq!(lineup[0].1.epsilon(), None);
//! assert_eq!(lineup[1].1.epsilon(), Some(0.8));
//! ```

use rand::RngCore;

use fm_core::estimator::DpEstimator;
use fm_core::model::{LinearModel, LogisticModel, ModelKind};
use fm_core::FmError;
use fm_data::Dataset;

use crate::dpme::Dpme;
use crate::fp::FilterPriority;
use crate::noprivacy::{LinearRegression, LogisticRegression};
use crate::truncated::TruncatedLogistic;

type CoreResult<T> = std::result::Result<T, FmError>;

impl DpEstimator for LinearRegression {
    type Model = LinearModel;

    fn fit(&self, data: &Dataset, _rng: &mut dyn RngCore) -> CoreResult<LinearModel> {
        LinearRegression::fit(self, data).map_err(FmError::from)
    }

    fn epsilon(&self) -> Option<f64> {
        None
    }

    fn task(&self) -> ModelKind {
        ModelKind::Linear
    }
}

impl DpEstimator for LogisticRegression {
    type Model = LogisticModel;

    fn fit(&self, data: &Dataset, _rng: &mut dyn RngCore) -> CoreResult<LogisticModel> {
        LogisticRegression::fit(self, data).map_err(FmError::from)
    }

    fn epsilon(&self) -> Option<f64> {
        None
    }

    fn task(&self) -> ModelKind {
        ModelKind::Logistic
    }
}

impl DpEstimator for TruncatedLogistic {
    type Model = LogisticModel;

    fn fit(&self, data: &Dataset, _rng: &mut dyn RngCore) -> CoreResult<LogisticModel> {
        TruncatedLogistic::fit(self, data).map_err(FmError::from)
    }

    fn epsilon(&self) -> Option<f64> {
        None
    }

    fn task(&self) -> ModelKind {
        ModelKind::Logistic
    }
}

/// [`Dpme`] pinned to the linear-regression task.
#[derive(Debug, Clone)]
pub struct DpmeLinear(pub Dpme);

impl DpEstimator for DpmeLinear {
    type Model = LinearModel;

    fn fit(&self, data: &Dataset, mut rng: &mut dyn RngCore) -> CoreResult<LinearModel> {
        self.0.fit_linear(data, &mut rng).map_err(FmError::from)
    }

    fn epsilon(&self) -> Option<f64> {
        Some(self.0.epsilon())
    }

    fn task(&self) -> ModelKind {
        ModelKind::Linear
    }
}

/// [`Dpme`] pinned to the logistic-regression task.
#[derive(Debug, Clone)]
pub struct DpmeLogistic(pub Dpme);

impl DpEstimator for DpmeLogistic {
    type Model = LogisticModel;

    fn fit(&self, data: &Dataset, mut rng: &mut dyn RngCore) -> CoreResult<LogisticModel> {
        self.0.fit_logistic(data, &mut rng).map_err(FmError::from)
    }

    fn epsilon(&self) -> Option<f64> {
        Some(self.0.epsilon())
    }

    fn task(&self) -> ModelKind {
        ModelKind::Logistic
    }
}

/// [`FilterPriority`] pinned to the linear-regression task.
#[derive(Debug, Clone)]
pub struct FpLinear(pub FilterPriority);

impl DpEstimator for FpLinear {
    type Model = LinearModel;

    fn fit(&self, data: &Dataset, mut rng: &mut dyn RngCore) -> CoreResult<LinearModel> {
        self.0.fit_linear(data, &mut rng).map_err(FmError::from)
    }

    fn epsilon(&self) -> Option<f64> {
        Some(self.0.epsilon())
    }

    fn task(&self) -> ModelKind {
        ModelKind::Linear
    }
}

/// [`FilterPriority`] pinned to the logistic-regression task.
#[derive(Debug, Clone)]
pub struct FpLogistic(pub FilterPriority);

impl DpEstimator for FpLogistic {
    type Model = LogisticModel;

    fn fit(&self, data: &Dataset, mut rng: &mut dyn RngCore) -> CoreResult<LogisticModel> {
        self.0.fit_logistic(data, &mut rng).map_err(FmError::from)
    }

    fn epsilon(&self) -> Option<f64> {
        Some(self.0.epsilon())
    }

    fn task(&self) -> ModelKind {
        ModelKind::Logistic
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fm_core::estimator::FitConfig;
    use fm_core::linreg::DpLinearRegression;
    use fm_core::model::Model;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(2_024)
    }

    #[test]
    fn heterogeneous_lineup_runs_through_one_call_site() {
        let mut r = rng();
        let data = fm_data::synth::linear_dataset(&mut r, 3_000, 2, 0.1);
        let fm = DpLinearRegression::builder()
            .config(FitConfig::new().epsilon(0.8))
            .build();
        let lineup: Vec<(&str, Box<dyn DpEstimator<Model = LinearModel>>)> = vec![
            ("NoPrivacy", Box::new(LinearRegression::new())),
            ("FM", Box::new(fm)),
            ("DPME", Box::new(DpmeLinear(Dpme::new(0.8).unwrap()))),
            ("FP", Box::new(FpLinear(FilterPriority::new(0.8).unwrap()))),
        ];
        for (name, est) in &lineup {
            let model = est
                .fit(&data, &mut r)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(model.dim(), 2, "{name}");
            assert_eq!(est.task(), ModelKind::Linear, "{name}");
            // Private methods advertise their ε; NoPrivacy advertises none,
            // and the fitted models carry the same metadata.
            match est.epsilon() {
                Some(eps) if *name == "FM" => assert_eq!(model.epsilon(), Some(eps)),
                Some(_) => {}
                None => assert_eq!(model.epsilon(), None),
            }
        }
    }

    #[test]
    fn logistic_baselines_expose_the_trait() {
        let mut r = rng();
        let data = fm_data::synth::logistic_dataset(&mut r, 3_000, 2, 8.0);
        let lineup: Vec<Box<dyn DpEstimator<Model = LogisticModel>>> = vec![
            Box::new(LogisticRegression::new()),
            Box::new(TruncatedLogistic::new()),
            Box::new(DpmeLogistic(Dpme::new(1.0).unwrap())),
            Box::new(FpLogistic(FilterPriority::new(1.0).unwrap())),
        ];
        for est in &lineup {
            assert_eq!(est.task(), ModelKind::Logistic);
            let model = est.fit(&data, &mut r).unwrap();
            let p = model.predict(data.x().row(0));
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
