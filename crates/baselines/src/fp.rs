//! **FP (Filter-Priority)** — Cormode, Procopiuc, Srivastava, Tran:
//! *Differentially private publication of sparse data* (ICDT 2012), the
//! synthetic-data comparison method in the paper's experiments.
//!
//! The mechanism publishes a noisy histogram over a domain far too large to
//! enumerate by exploiting sparsity:
//!
//! * **Non-zero cells** get `Lap(2/ε)` noise and are *filtered*: published
//!   only if the noisy count exceeds a threshold `θ`.
//! * **Zero cells** are never materialised individually. The number of
//!   zero cells whose (hypothetical) noisy count would pass `θ` is drawn
//!   from the exact binomial (approximated Poisson/normal at scale), and
//!   each passing cell receives a draw from the Laplace tail conditioned on
//!   exceeding `θ` — distributionally identical to enumerating the domain,
//!   at `O(output)` cost.
//!
//! `θ` is set so the expected number of *noise-only* cells is about the
//! size of the real dataset, the recommendation from the FP paper that the
//! evaluation in our target paper adopts ("internal parameters set to
//! recommended values").
//!
//! Regression then runs on synthetic tuples at the published cell centres;
//! as dimensionality grows, noise-only cells crowd out signal cells —
//! FP's Figure-4 failure mode.

use std::collections::HashMap;

use rand::Rng;

use fm_core::model::{LinearModel, LogisticModel};
use fm_data::Dataset;
use fm_privacy::laplace::Laplace;

use crate::histogram::{JointGrid, LabelSpec};
use crate::noprivacy::{LinearRegression, LogisticRegression};
use crate::{BaselineError, Result};

/// Histogram L1 sensitivity under tuple replacement.
const HISTOGRAM_SENSITIVITY: f64 = 2.0;

/// Bins per feature axis. FP is built for fine domains; 4 bins per axis
/// keeps the label/feature resolution of the original FP evaluation while
/// letting d = 13 produce the sparse regime (4¹³·b_y cells ≫ n).
const DEFAULT_FEATURE_BINS: usize = 4;

/// Synthetic dataset size cap, as a multiple of the input cardinality.
const SYNTHETIC_CAP_FACTOR: usize = 4;

/// The Filter-Priority baseline.
#[derive(Debug, Clone)]
pub struct FilterPriority {
    epsilon: f64,
    feature_bins: usize,
    /// Grid the symmetric `[−1, 1]` domain instead of the footnote-1
    /// `[0, 1/√d]` domain (for centred, non-footnote-1 data).
    symmetric_domain: bool,
}

impl FilterPriority {
    /// Creates FP with privacy budget `epsilon` and default binning.
    ///
    /// # Errors
    /// [`BaselineError::InvalidConfig`] for non-positive/non-finite ε.
    pub fn new(epsilon: f64) -> Result<Self> {
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(BaselineError::InvalidConfig {
                name: "epsilon",
                reason: format!("{epsilon} must be finite and > 0"),
            });
        }
        Ok(FilterPriority {
            epsilon,
            feature_bins: DEFAULT_FEATURE_BINS,
            symmetric_domain: false,
        })
    }

    /// Overrides the bins-per-feature-axis (testing/ablation hook).
    ///
    /// # Errors
    /// [`BaselineError::InvalidConfig`] for zero bins.
    pub fn with_feature_bins(mut self, bins: usize) -> Result<Self> {
        if bins == 0 {
            return Err(BaselineError::InvalidConfig {
                name: "feature_bins",
                reason: "at least one bin required".to_string(),
            });
        }
        self.feature_bins = bins;
        Ok(self)
    }

    /// Grids the symmetric `[−1, 1]` feature domain instead of the
    /// footnote-1 `[0, 1/√d]` domain.
    #[must_use]
    pub fn with_symmetric_domain(mut self) -> Self {
        self.symmetric_domain = true;
        self
    }

    fn grid(&self, d: usize, label: LabelSpec) -> Result<JointGrid> {
        if self.symmetric_domain {
            JointGrid::over_symmetric_domain(d, self.feature_bins, label)
        } else {
            JointGrid::over_normalized_domain(d, self.feature_bins, label)
        }
    }

    /// The privacy budget ε.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// ε-DP linear regression through FP publication.
    ///
    /// # Errors
    /// [`BaselineError::Data`] on contract violations;
    /// [`BaselineError::NoSyntheticData`] if nothing passes the filter.
    pub fn fit_linear(&self, data: &Dataset, rng: &mut impl Rng) -> Result<LinearModel> {
        data.check_normalized_linear()?;
        let grid = self.grid(
            data.d(),
            LabelSpec::Continuous {
                bins: self.feature_bins,
                lo: -1.0,
                hi: 1.0,
            },
        )?;
        let synthetic = self.publish_and_synthesize(data, &grid, rng)?;
        LinearRegression::with_normal_equations().fit(&synthetic)
    }

    /// ε-DP logistic regression through FP publication.
    ///
    /// # Errors
    /// As [`FilterPriority::fit_linear`].
    pub fn fit_logistic(&self, data: &Dataset, rng: &mut impl Rng) -> Result<LogisticModel> {
        data.check_normalized_logistic()?;
        let grid = self.grid(data.d(), LabelSpec::Binary)?;
        let synthetic = self.publish_and_synthesize(data, &grid, rng)?;
        if synthetic.y().iter().all(|&y| y == 0.0) || synthetic.y().iter().all(|&y| y == 1.0) {
            return Ok(LogisticModel::new(vec![0.0; data.d()], Some(self.epsilon)));
        }
        LogisticRegression::new().fit_unchecked(&synthetic)
    }

    /// The FP core: filter non-zero cells, sample passing zero cells from
    /// the tail, synthesize.
    fn publish_and_synthesize(
        &self,
        data: &Dataset,
        grid: &JointGrid,
        rng: &mut impl Rng,
    ) -> Result<Dataset> {
        let noise = Laplace::from_sensitivity(HISTOGRAM_SENSITIVITY, self.epsilon)?;
        let exact = grid.count(data);
        let num_cells = grid.num_cells_f64();
        let num_zero_cells = (num_cells - exact.len() as f64).max(0.0);

        // Threshold: expected noise-only output ≈ n. P(Lap(b) > θ) =
        // ½e^{−θ/b} for θ ≥ 0, so θ = b·ln(N₀ / (2n)) (clamped at 0 when the
        // domain is small enough that no filtering is needed).
        let target = data.n() as f64;
        let theta = if num_zero_cells > 2.0 * target {
            noise.scale() * (num_zero_cells / (2.0 * target)).ln()
        } else {
            0.0
        };

        let mut published: HashMap<u64, u64> = HashMap::new();

        // Non-zero cells: noise, filter at θ, round. Iterate in sorted cell
        // order so noise draws are deterministic for a given RNG seed
        // (HashMap order would scramble the RNG stream between runs).
        let mut sorted: Vec<(u64, u64)> = exact.iter().map(|(&c, &n)| (c, n)).collect();
        sorted.sort_unstable();
        for (cell, count) in sorted {
            let noisy = count as f64 + noise.sample(rng);
            if noisy > theta {
                let rounded = noisy.round();
                if rounded >= 1.0 {
                    published.insert(cell, rounded as u64);
                }
            }
        }

        // Zero cells: K ~ Binomial(N₀, p_pass) passing cells, each with a
        // tail draw θ + Exp(b) (memoryless Laplace tail for θ ≥ 0).
        let p_pass = 0.5 * (-theta / noise.scale()).exp();
        let expected = num_zero_cells * p_pass;
        let k = sample_count(rng, num_zero_cells, p_pass, expected);
        for _ in 0..k {
            let cell = grid.random_cell(rng);
            if published.contains_key(&cell) {
                continue; // vanishing-probability collision: skip
            }
            let tail = theta + sample_exponential(rng, noise.scale());
            let rounded = tail.round();
            if rounded >= 1.0 {
                published.insert(cell, rounded as u64);
            }
        }

        grid.synthesize(
            &published,
            data.n().saturating_mul(SYNTHETIC_CAP_FACTOR).max(16),
        )
    }
}

/// Exp(scale) via inverse CDF.
fn sample_exponential(rng: &mut impl Rng, scale: f64) -> f64 {
    let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
    -scale * u.ln()
}

/// Binomial(n, p) sampled exactly for small n, by Poisson/normal
/// approximation at scale (standard regime splits).
fn sample_count(rng: &mut impl Rng, n: f64, p: f64, mean: f64) -> u64 {
    if n <= 0.0 || p <= 0.0 {
        return 0;
    }
    if n <= 4_096.0 {
        // Exact Bernoulli sum.
        let trials = n as u64;
        let mut k = 0;
        for _ in 0..trials {
            if rng.gen::<f64>() < p {
                k += 1;
            }
        }
        return k;
    }
    if mean < 32.0 {
        // Poisson approximation (Knuth's product method is fine here).
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut prod: f64 = 1.0;
        loop {
            prod *= rng.gen::<f64>();
            if prod <= l || k > 10_000 {
                return k;
            }
            k += 1;
        }
    }
    // Normal approximation for large means.
    let std = (mean * (1.0 - p)).sqrt();
    let draw = fm_privacy::gaussian::normal(rng, mean, std);
    draw.max(0.0).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(4242)
    }

    #[test]
    fn config_validation() {
        assert!(FilterPriority::new(0.0).is_err());
        assert!(FilterPriority::new(-2.0).is_err());
        assert!(FilterPriority::new(1.0)
            .unwrap()
            .with_feature_bins(0)
            .is_err());
        assert!(FilterPriority::new(1.0)
            .unwrap()
            .with_feature_bins(8)
            .is_ok());
    }

    #[test]
    fn exponential_sampler_mean() {
        let mut r = rng();
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| sample_exponential(&mut r, 3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn count_sampler_regimes() {
        let mut r = rng();
        // Exact regime.
        let k = sample_count(&mut r, 1_000.0, 0.5, 500.0);
        assert!((400..600).contains(&(k as i64)), "exact regime k={k}");
        // Poisson regime.
        let reps = 2_000;
        let mean: f64 = (0..reps)
            .map(|_| sample_count(&mut r, 1e9, 5e-9, 5.0) as f64)
            .sum::<f64>()
            / reps as f64;
        assert!((mean - 5.0).abs() < 0.3, "poisson regime mean {mean}");
        // Normal regime.
        let k = sample_count(&mut r, 1e9, 1e-4, 1e5);
        assert!(
            (90_000..110_000).contains(&(k as i64)),
            "normal regime k={k}"
        );
        // Degenerate inputs.
        assert_eq!(sample_count(&mut r, 0.0, 0.5, 0.0), 0);
        assert_eq!(sample_count(&mut r, 100.0, 0.0, 0.0), 0);
    }

    #[test]
    fn linear_fit_runs_in_high_dimension_sparse_regime() {
        // d = 8 with 4 bins/axis ⇒ 4⁹ ≈ 260k cells ≫ n = 5k: genuinely
        // sparse. FP must still produce a model.
        let mut r = rng();
        let data = fm_data::synth::linear_dataset(&mut r, 5_000, 8, 0.1);
        let model = FilterPriority::new(1.0)
            .unwrap()
            .with_symmetric_domain()
            .fit_linear(&data, &mut r)
            .unwrap();
        assert_eq!(model.dim(), 8);
        assert!(model.weights().iter().all(|w| w.is_finite()));
    }

    #[test]
    fn logistic_fit_runs() {
        let mut r = rng();
        let data = fm_data::synth::logistic_dataset(&mut r, 5_000, 4, 8.0);
        let model = FilterPriority::new(1.0)
            .unwrap()
            .with_symmetric_domain()
            .fit_logistic(&data, &mut r)
            .unwrap();
        let p = model.probability(data.x().row(0));
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn signal_recovered_with_generous_budget_low_dimension() {
        let mut r = rng();
        let w = vec![0.6, -0.5];
        let data = fm_data::synth::linear_dataset_with_weights(&mut r, 40_000, &w, 0.05);
        let model = FilterPriority::new(4.0)
            .unwrap()
            .with_symmetric_domain()
            .fit_linear(&data, &mut r)
            .unwrap();
        let cos = fm_linalg::vecops::dot(model.weights(), &w)
            / (fm_linalg::vecops::norm2(model.weights()).max(1e-9) * fm_linalg::vecops::norm2(&w));
        assert!(cos > 0.3, "cosine {cos} (weights {:?})", model.weights());
    }

    #[test]
    fn rejects_unnormalized() {
        let x = fm_linalg::Matrix::from_rows(&[&[4.0]]).unwrap();
        let data = Dataset::new(x, vec![0.0]).unwrap();
        let mut r = rng();
        assert!(FilterPriority::new(1.0)
            .unwrap()
            .fit_linear(&data, &mut r)
            .is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let data = fm_data::synth::linear_dataset(&mut rng(), 3_000, 3, 0.1);
        let run = || {
            let mut r = rand::rngs::StdRng::seed_from_u64(3);
            FilterPriority::new(1.0)
                .unwrap()
                .with_symmetric_domain()
                .fit_linear(&data, &mut r)
                .unwrap()
                .weights()
                .to_vec()
        };
        assert_eq!(run(), run());
    }
}
