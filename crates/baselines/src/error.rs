use std::fmt;

/// Errors produced by baseline methods.
#[derive(Debug)]
pub enum BaselineError {
    /// Input-data failure (contract violation, empty dataset, …).
    Data(fm_data::DataError),
    /// Privacy-parameter failure.
    Privacy(fm_privacy::PrivacyError),
    /// Optimisation failure.
    Optim(fm_optim::OptimError),
    /// Linear-algebra failure.
    Linalg(fm_linalg::LinalgError),
    /// Functional-mechanism failure (the `Truncated` baseline reuses
    /// `fm-core`'s objective assembly).
    Fm(fm_core::FmError),
    /// The synthetic-data stage produced no usable tuples (all noisy counts
    /// non-positive) — the regression cannot run.
    NoSyntheticData,
    /// Invalid configuration.
    InvalidConfig {
        /// Which parameter.
        name: &'static str,
        /// Why it is invalid.
        reason: String,
    },
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Data(e) => write!(f, "data error: {e}"),
            BaselineError::Privacy(e) => write!(f, "privacy error: {e}"),
            BaselineError::Optim(e) => write!(f, "optimisation error: {e}"),
            BaselineError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            BaselineError::Fm(e) => write!(f, "functional mechanism error: {e}"),
            BaselineError::NoSyntheticData => {
                write!(f, "noisy histogram produced no synthetic tuples")
            }
            BaselineError::InvalidConfig { name, reason } => {
                write!(f, "invalid configuration `{name}`: {reason}")
            }
        }
    }
}

impl std::error::Error for BaselineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BaselineError::Data(e) => Some(e),
            BaselineError::Privacy(e) => Some(e),
            BaselineError::Optim(e) => Some(e),
            BaselineError::Linalg(e) => Some(e),
            BaselineError::Fm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fm_data::DataError> for BaselineError {
    fn from(e: fm_data::DataError) -> Self {
        BaselineError::Data(e)
    }
}

impl From<fm_privacy::PrivacyError> for BaselineError {
    fn from(e: fm_privacy::PrivacyError) -> Self {
        BaselineError::Privacy(e)
    }
}

impl From<fm_optim::OptimError> for BaselineError {
    fn from(e: fm_optim::OptimError) -> Self {
        BaselineError::Optim(e)
    }
}

impl From<fm_linalg::LinalgError> for BaselineError {
    fn from(e: fm_linalg::LinalgError) -> Self {
        BaselineError::Linalg(e)
    }
}

impl From<fm_core::FmError> for BaselineError {
    fn from(e: fm_core::FmError) -> Self {
        BaselineError::Fm(e)
    }
}

/// The reverse mapping, used when a baseline runs behind `fm-core`'s
/// generic `DpEstimator` surface: shared substrate errors map variant to
/// variant, wrapped FM errors unwrap, and the baseline-only failures
/// surface as configuration errors.
impl From<BaselineError> for fm_core::FmError {
    fn from(e: BaselineError) -> Self {
        match e {
            BaselineError::Data(e) => fm_core::FmError::Data(e),
            BaselineError::Privacy(e) => fm_core::FmError::Privacy(e),
            BaselineError::Optim(e) => fm_core::FmError::Optim(e),
            BaselineError::Linalg(e) => fm_core::FmError::Linalg(e),
            BaselineError::Fm(e) => e,
            BaselineError::NoSyntheticData => fm_core::FmError::InvalidConfig {
                name: "synthetic data",
                reason: "noisy histogram produced no synthetic tuples".to_string(),
            },
            BaselineError::InvalidConfig { name, reason } => {
                fm_core::FmError::InvalidConfig { name, reason }
            }
        }
    }
}
