//! Baseline methods the paper evaluates the Functional Mechanism against
//! (Section 7), plus the related-work comparator of Section 2.
//!
//! | Module | Paper name | What it is |
//! |--------|-----------|------------|
//! | [`noprivacy`] | **NoPrivacy** | exact, non-private regression: OLS via QR/normal equations; logistic via damped Newton on the exact loss |
//! | [`truncated`] | **Truncated** | the §5 degree-2 Taylor objective minimised *without* noise — isolates the approximation error from the privacy noise |
//! | [`dpme`] | **DPME** (Lei, NIPS 2011) | differentially private M-estimation: Laplace-perturbed multi-dimensional histogram → synthetic dataset → ordinary regression |
//! | [`fp`] | **FP** (Cormode et al., ICDT 2012) | Filter-Priority publication of a sparse noisy histogram → synthetic dataset → ordinary regression |
//! | [`objective_perturbation`] | Chaudhuri et al. [4, 5] | ℓ2-regularized ERM with objective / output perturbation — the related-work method the paper argues is inapplicable to *standard* logistic regression; included as an extension for completeness |
//!
//! DPME and FP share the [`histogram`] substrate (equi-width grids over the
//! normalized domain, cell synthesis). Their defining failure mode — cell
//! count exploding exponentially with dimensionality, starving every cell
//! of signal — emerges directly from that construction, which is what
//! Figure 4 of the paper shows.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dpme;
pub mod estimators;
pub mod fp;
pub mod histogram;
pub mod noprivacy;
pub mod objective_perturbation;
pub mod truncated;

pub use estimators::{DpmeLinear, DpmeLogistic, FpLinear, FpLogistic};

mod error;

pub use error::BaselineError;

/// Result alias for fallible baseline operations.
pub type Result<T> = std::result::Result<T, BaselineError>;
