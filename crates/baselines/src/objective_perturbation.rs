//! Objective & output perturbation for regularized ERM — Chaudhuri &
//! Monteleoni (NIPS 2008), Chaudhuri, Monteleoni & Sarwate (JMLR 2011):
//! references [4, 5] of the paper.
//!
//! The paper's Related Work argues these methods do not apply to the
//! *standard* logistic-regression formulation it targets (they require a
//! strongly convex, regularized objective and, in [4, 5]'s input model,
//! probability-valued labels). We implement them anyway, as the natural
//! related-work comparator, in their native setting: ℓ2-regularized
//! logistic ERM over labels mapped to `{−1, +1}`,
//!
//! ```text
//! J(ω) = (1/n) Σ log(1 + exp(−ỹ_i x_iᵀω)) + (Λ/2)‖ω‖².
//! ```
//!
//! * [`ObjectivePerturbation`] (JMLR Alg. 2, specialised to logistic loss
//!   with smoothness constant `c = 1/4`): adds a random linear term
//!   `bᵀω/n` with `‖b‖ ~ Γ(d, 2/ε')` and uniform direction.
//! * [`OutputPerturbation`] (JMLR Alg. 1): solves exactly, then adds noise
//!   with `‖η‖ ~ Γ(d, 2/(nΛε))` to the solution (L2 sensitivity of the
//!   regularized minimiser is `2/(nΛ)`).
//!
//! Both guarantees need `‖x‖₂ ≤ 1`, which the paper's normalization
//! already provides.

use rand::Rng;

use fm_core::model::LogisticModel;
use fm_data::Dataset;
use fm_linalg::{vecops, Matrix};
use fm_optim::newton::Newton;
use fm_optim::{Objective, TwiceDifferentiable};
use fm_privacy::gaussian;

use crate::{BaselineError, Result};

/// Smoothness constant of the logistic loss (`|ℓ''| ≤ 1/4`).
const LOGISTIC_SMOOTHNESS: f64 = 0.25;

/// Validates `(epsilon, lambda)` and the dataset contract shared by both
/// perturbation flavours.
fn validate(epsilon: f64, lambda: f64, data: &Dataset) -> Result<()> {
    if !epsilon.is_finite() || epsilon <= 0.0 {
        return Err(BaselineError::InvalidConfig {
            name: "epsilon",
            reason: format!("{epsilon} must be finite and > 0"),
        });
    }
    if !lambda.is_finite() || lambda <= 0.0 {
        return Err(BaselineError::InvalidConfig {
            name: "lambda",
            reason: format!("{lambda} must be finite and > 0"),
        });
    }
    data.check_normalized_logistic()?;
    Ok(())
}

/// Samples a vector with uniformly random direction and `Γ(shape = d,
/// scale)` norm — the noise shape both Chaudhuri algorithms use.
fn gamma_noise(rng: &mut impl Rng, d: usize, scale: f64) -> Vec<f64> {
    // Γ(d, scale) = sum of d Exp(scale) variables.
    let norm: f64 = (0..d)
        .map(|_| {
            let u: f64 = 1.0 - rng.gen::<f64>();
            -scale * u.ln()
        })
        .sum();
    // Uniform direction via normalized Gaussian.
    let mut dir = vec![0.0; d];
    gaussian::standard_normal_into(rng, &mut dir);
    let len = vecops::norm2(&dir);
    if len == 0.0 {
        return dir;
    }
    vecops::scale(norm / len, &mut dir);
    dir
}

/// The regularized ERM objective
/// `(1/n)Σ log(1+exp(−ỹ x ᵀω)) + (Λ/2)‖ω‖² + bᵀω/n`.
struct RegularizedLogistic<'a> {
    data: &'a Dataset,
    lambda: f64,
    /// Extra linear term `b` (zero for the plain/output-perturbation path).
    b: Vec<f64>,
}

impl RegularizedLogistic<'_> {
    /// `ỹ ∈ {−1, +1}` from the dataset's `{0, 1}` labels.
    fn signed_label(y: f64) -> f64 {
        2.0 * y - 1.0
    }
}

impl Objective for RegularizedLogistic<'_> {
    fn dim(&self) -> usize {
        self.data.d()
    }

    fn value(&self, omega: &[f64]) -> f64 {
        let n = self.data.n() as f64;
        let loss: f64 = self
            .data
            .tuples()
            .map(|(x, y)| {
                fm_poly::taylor::log1p_exp(-Self::signed_label(y) * vecops::dot(x, omega))
            })
            .sum();
        loss / n + 0.5 * self.lambda * vecops::dot(omega, omega) + vecops::dot(&self.b, omega) / n
    }

    fn gradient(&self, omega: &[f64]) -> Vec<f64> {
        let n = self.data.n() as f64;
        let mut g = vec![0.0; self.dim()];
        for (x, y) in self.data.tuples() {
            let s = Self::signed_label(y);
            let z = -s * vecops::dot(x, omega);
            let sigma = if z >= 0.0 {
                1.0 / (1.0 + (-z).exp())
            } else {
                let e = z.exp();
                e / (1.0 + e)
            };
            vecops::axpy(-s * sigma / n, x, &mut g);
        }
        vecops::axpy(self.lambda, omega, &mut g);
        vecops::axpy(1.0 / n, &self.b, &mut g);
        g
    }
}

impl TwiceDifferentiable for RegularizedLogistic<'_> {
    fn hessian(&self, omega: &[f64]) -> Matrix {
        // H = (1/n)·Xᵀ·diag(σ(1−σ))·X + Λ·I via the blocked weighted-syrk
        // kernel shared with the batched assembly path.
        let n = self.data.n() as f64;
        let d = self.dim();
        let w: Vec<f64> = self
            .data
            .tuples()
            .map(|(x, y)| {
                let s = Self::signed_label(y);
                let z = -s * vecops::dot(x, omega);
                let sigma = if z >= 0.0 {
                    1.0 / (1.0 + (-z).exp())
                } else {
                    let e = z.exp();
                    e / (1.0 + e)
                };
                sigma * (1.0 - sigma) / n
            })
            .collect();
        let mut h = Matrix::zeros(d, d);
        h.syrk_weighted_acc(1.0, self.data.x().as_slice(), d, &w)
            .expect("row arity");
        h.add_diagonal(self.lambda);
        h
    }
}

fn solve(data: &Dataset, lambda: f64, b: Vec<f64>) -> Result<Vec<f64>> {
    let objective = RegularizedLogistic { data, lambda, b };
    let result = Newton::default().minimize(&objective, &vec![0.0; data.d()])?;
    Ok(result.omega)
}

/// Chaudhuri et al.'s **objective perturbation** (JMLR 2011, Algorithm 2).
#[derive(Debug, Clone, Copy)]
pub struct ObjectivePerturbation {
    epsilon: f64,
    /// ℓ2 regularization strength Λ.
    lambda: f64,
}

impl ObjectivePerturbation {
    /// Creates the mechanism with privacy budget `epsilon` and
    /// regularization `lambda`.
    ///
    /// # Errors
    /// Parameter domain errors surface at [`ObjectivePerturbation::fit`]
    /// (the dataset is needed for full validation); this constructor only
    /// stores the values.
    #[must_use]
    pub fn new(epsilon: f64, lambda: f64) -> Self {
        ObjectivePerturbation { epsilon, lambda }
    }

    /// Fits an ε-DP logistic model by perturbing the ERM objective.
    ///
    /// # Errors
    /// [`BaselineError::InvalidConfig`] / [`BaselineError::Data`] /
    /// [`BaselineError::Optim`] per the shared validation and solver.
    pub fn fit(&self, data: &Dataset, rng: &mut impl Rng) -> Result<LogisticModel> {
        validate(self.epsilon, self.lambda, data)?;
        let n = data.n() as f64;
        let c = LOGISTIC_SMOOTHNESS;

        // ε' = ε − log(1 + 2c/(nΛ) + c²/(n²Λ²)); if non-positive, raise Λ
        // effectively (JMLR's Λ-adjustment) by solving for the Λ' that makes
        // ε' = ε/2, then use ε/2 for the noise.
        let slack =
            (1.0 + 2.0 * c / (n * self.lambda) + c * c / (n * n * self.lambda * self.lambda)).ln();
        let (eps_noise, lambda_eff) = if self.epsilon > 2.0 * slack {
            (self.epsilon - slack, self.lambda)
        } else {
            let lambda_adj = c / (n * ((self.epsilon / 4.0).exp() - 1.0));
            (self.epsilon / 2.0, self.lambda.max(lambda_adj))
        };

        let b = gamma_noise(rng, data.d(), 2.0 / eps_noise);
        let omega = solve(data, lambda_eff, b)?;
        Ok(LogisticModel::new(omega, Some(self.epsilon)))
    }
}

/// Chaudhuri et al.'s **output perturbation** (JMLR 2011, Algorithm 1).
#[derive(Debug, Clone, Copy)]
pub struct OutputPerturbation {
    epsilon: f64,
    /// ℓ2 regularization strength Λ.
    lambda: f64,
}

impl OutputPerturbation {
    /// Creates the mechanism.
    #[must_use]
    pub fn new(epsilon: f64, lambda: f64) -> Self {
        OutputPerturbation { epsilon, lambda }
    }

    /// Fits by solving the regularized ERM exactly, then noising the
    /// solution with L2 sensitivity `2/(nΛ)`.
    ///
    /// # Errors
    /// As [`ObjectivePerturbation::fit`].
    pub fn fit(&self, data: &Dataset, rng: &mut impl Rng) -> Result<LogisticModel> {
        validate(self.epsilon, self.lambda, data)?;
        let mut omega = solve(data, self.lambda, vec![0.0; data.d()])?;
        let scale = 2.0 / (data.n() as f64 * self.lambda * self.epsilon);
        let noise = gamma_noise(rng, data.d(), scale);
        vecops::axpy(1.0, &noise, &mut omega);
        Ok(LogisticModel::new(omega, Some(self.epsilon)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(64)
    }

    #[test]
    fn gamma_noise_norm_has_gamma_mean() {
        // E‖b‖ = d·scale.
        let mut r = rng();
        let reps = 3_000;
        let mean: f64 = (0..reps)
            .map(|_| vecops::norm2(&gamma_noise(&mut r, 4, 0.5)))
            .sum::<f64>()
            / reps as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean norm {mean}");
    }

    #[test]
    fn regularized_gradient_matches_numeric() {
        let mut r = rng();
        let data = fm_data::synth::logistic_dataset(&mut r, 60, 3, 4.0);
        let obj = RegularizedLogistic {
            data: &data,
            lambda: 0.01,
            b: vec![0.3, -0.2, 0.1],
        };
        let omega = [0.4, -0.1, 0.2];
        let g = obj.gradient(&omega);
        let num = fm_optim::numerical_gradient(&obj, &omega, 1e-6);
        assert!(vecops::approx_eq(&g, &num, 1e-5), "{g:?} vs {num:?}");
    }

    #[test]
    fn objective_perturbation_learns_direction() {
        let mut r = rng();
        let w = vec![0.5, -0.4];
        let data = fm_data::synth::logistic_dataset_with_weights(&mut r, 30_000, &w, 10.0);
        let model = ObjectivePerturbation::new(2.0, 1e-3)
            .fit(&data, &mut r)
            .unwrap();
        let cos = vecops::dot(model.weights(), &w)
            / (vecops::norm2(model.weights()).max(1e-12) * vecops::norm2(&w));
        assert!(cos > 0.8, "cosine {cos}");
    }

    #[test]
    fn output_perturbation_learns_direction() {
        let mut r = rng();
        let w = vec![0.5, -0.4];
        let data = fm_data::synth::logistic_dataset_with_weights(&mut r, 30_000, &w, 10.0);
        let model = OutputPerturbation::new(2.0, 1e-3)
            .fit(&data, &mut r)
            .unwrap();
        let cos = vecops::dot(model.weights(), &w)
            / (vecops::norm2(model.weights()).max(1e-12) * vecops::norm2(&w));
        assert!(cos > 0.5, "cosine {cos}");
    }

    #[test]
    fn tiny_epsilon_triggers_lambda_adjustment() {
        // With ε very small the ε' slack goes non-positive and the Λ-adjust
        // path runs; the fit must still succeed.
        let mut r = rng();
        let data = fm_data::synth::logistic_dataset(&mut r, 500, 2, 6.0);
        let model = ObjectivePerturbation::new(1e-4, 1e-9)
            .fit(&data, &mut r)
            .unwrap();
        assert!(model.weights().iter().all(|w| w.is_finite()));
    }

    #[test]
    fn parameter_validation() {
        let mut r = rng();
        let data = fm_data::synth::logistic_dataset(&mut r, 100, 2, 6.0);
        assert!(ObjectivePerturbation::new(0.0, 0.1)
            .fit(&data, &mut r)
            .is_err());
        assert!(ObjectivePerturbation::new(1.0, 0.0)
            .fit(&data, &mut r)
            .is_err());
        assert!(OutputPerturbation::new(-1.0, 0.1)
            .fit(&data, &mut r)
            .is_err());
        // Non-binary labels rejected.
        let x = fm_linalg::Matrix::from_rows(&[&[0.1]]).unwrap();
        let bad = Dataset::new(x, vec![0.3]).unwrap();
        assert!(ObjectivePerturbation::new(1.0, 0.1)
            .fit(&bad, &mut r)
            .is_err());
    }

    #[test]
    fn more_regularization_means_less_output_noise() {
        // Output-perturbation noise scale is 2/(nΛε): higher Λ ⇒ closer to
        // the non-private solution.
        let mut r = rng();
        let data = fm_data::synth::logistic_dataset(&mut r, 5_000, 2, 8.0);
        let clean = solve(&data, 0.1, vec![0.0; 2]).unwrap();
        let reps = 30;
        let mean_dist = |lambda: f64, r: &mut rand::rngs::StdRng| -> f64 {
            (0..reps)
                .map(|_| {
                    let m = OutputPerturbation::new(1.0, lambda).fit(&data, r).unwrap();
                    vecops::dist2(m.weights(), &clean)
                })
                .sum::<f64>()
                / reps as f64
        };
        let strong = mean_dist(0.1, &mut r);
        let weak = mean_dist(0.001, &mut r);
        assert!(
            strong < weak,
            "Λ=0.1 dist {strong} should beat Λ=0.001 dist {weak}"
        );
    }
}
