//! The **NoPrivacy** baseline: exact regression with no noise.
//!
//! This is the accuracy ceiling every private method is measured against in
//! Figures 4–6, and the running-time *floor* the paper's Figures 7–9
//! compare FM's closed-form solve to (exact logistic regression must
//! iterate).

use fm_data::Dataset;
use fm_linalg::{qr, vecops, Matrix};
use fm_optim::newton::Newton;
use fm_optim::{Objective, TwiceDifferentiable};

use fm_core::model::{LinearModel, LogisticModel};
use fm_poly::taylor::log1p_exp;

use crate::Result;

/// Which dense solver OLS runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OlsSolver {
    /// Householder QR on the design matrix (default) — better conditioned
    /// than the normal equations for the correlated census attributes, but
    /// fails with an explicit error on rank-deficient input.
    #[default]
    Qr,
    /// The normal equations `XᵀX ω = Xᵀy` solved by LU, matching the
    /// objective assembly FM perturbs; semi-definite failures surface as
    /// explicit `Singular` errors.
    NormalEquations,
    /// SVD minimum-norm least squares — never fails on rank-deficient
    /// input (returns the smallest-norm minimiser), at ~3× the cost of QR.
    /// Used on heavily subsampled or degenerate synthetic data where entire
    /// attribute columns can collapse.
    SvdMinNorm,
}

/// Ordinary least squares.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinearRegression {
    /// The dense solver to run (default [`OlsSolver::Qr`]).
    pub solver: OlsSolver,
}

impl LinearRegression {
    /// OLS configured for QR solving.
    #[must_use]
    pub fn new() -> Self {
        LinearRegression {
            solver: OlsSolver::Qr,
        }
    }

    /// OLS via the normal equations (`XᵀX ω = Xᵀy`); see
    /// [`OlsSolver::NormalEquations`].
    #[must_use]
    pub fn with_normal_equations() -> Self {
        LinearRegression {
            solver: OlsSolver::NormalEquations,
        }
    }

    /// OLS via SVD minimum-norm least squares; see [`OlsSolver::SvdMinNorm`].
    #[must_use]
    pub fn with_min_norm() -> Self {
        LinearRegression {
            solver: OlsSolver::SvdMinNorm,
        }
    }

    /// Fits `argmin_ω Σ (y_i − x_iᵀω)²`.
    ///
    /// # Errors
    /// [`crate::BaselineError::Linalg`] when the design matrix is rank
    /// deficient (QR / normal-equation solvers only — the SVD solver always
    /// returns the minimum-norm minimiser).
    pub fn fit(&self, data: &Dataset) -> Result<LinearModel> {
        let omega = match self.solver {
            OlsSolver::Qr => qr::lstsq(data.x(), data.y())?,
            OlsSolver::SvdMinNorm => fm_linalg::lstsq_min_norm(data.x(), data.y())?,
            OlsSolver::NormalEquations => {
                // Same batched Gram kernels as the Functional Mechanism's
                // coefficient assembly: XᵀX via blocked syrk, Xᵀy via the
                // transposed-gemv kernel.
                let d = data.d();
                let mut xtx = Matrix::zeros(d, d);
                let mut xty = vec![0.0; d];
                xtx.syrk_acc(1.0, data.x().as_slice(), d)?;
                vecops::gemv_t_acc(1.0, data.x().as_slice(), d, data.y(), &mut xty);
                fm_linalg::Lu::new(&xtx)?.solve(&xty)?
            }
        };
        Ok(LinearModel::new(omega, None))
    }
}

/// The exact logistic-regression objective
/// `Σ log(1 + exp(x_iᵀω)) − y_i x_iᵀω` over a dataset.
///
/// Exposed publicly so the benchmark harness can time the *objective* the
/// paper says is expensive to optimise.
#[derive(Debug)]
pub struct ExactLogisticLoss<'a> {
    data: &'a Dataset,
}

impl<'a> ExactLogisticLoss<'a> {
    /// Wraps a dataset (not validated here; `LogisticRegression::fit`
    /// validates).
    #[must_use]
    pub fn new(data: &'a Dataset) -> Self {
        ExactLogisticLoss { data }
    }
}

impl Objective for ExactLogisticLoss<'_> {
    fn dim(&self) -> usize {
        self.data.d()
    }

    fn value(&self, omega: &[f64]) -> f64 {
        self.data
            .tuples()
            .map(|(x, y)| {
                let z = vecops::dot(x, omega);
                log1p_exp(z) - y * z
            })
            .sum()
    }

    fn gradient(&self, omega: &[f64]) -> Vec<f64> {
        // ∇ = Σ (σ(xᵀω) − y)·x.
        let mut g = vec![0.0; self.dim()];
        for (x, y) in self.data.tuples() {
            let z = vecops::dot(x, omega);
            let sigma = stable_sigmoid(z);
            vecops::axpy(sigma - y, x, &mut g);
        }
        g
    }
}

impl TwiceDifferentiable for ExactLogisticLoss<'_> {
    fn hessian(&self, omega: &[f64]) -> Matrix {
        // H = Σ σ(1−σ)·x xᵀ = Xᵀ·diag(w)·X — one pass for the weights,
        // then the blocked weighted-syrk kernel (shared with the batched
        // assembly path) instead of n rank-1 updates.
        let d = self.dim();
        let w: Vec<f64> = self
            .data
            .tuples()
            .map(|(x, _)| {
                let sigma = stable_sigmoid(vecops::dot(x, omega));
                sigma * (1.0 - sigma)
            })
            .collect();
        let mut h = Matrix::zeros(d, d);
        h.syrk_weighted_acc(1.0, self.data.x().as_slice(), d, &w)
            .expect("row arity");
        h
    }
}

fn stable_sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Exact (maximum-likelihood) logistic regression via damped Newton.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    solver: Newton,
    /// Tiny ridge added to the Hessian for strict convexity on separable
    /// data (exact MLE diverges there; this is standard practice and does
    /// not affect the paper's comparisons).
    ridge: f64,
}

impl Default for LogisticRegression {
    fn default() -> Self {
        LogisticRegression {
            solver: Newton {
                max_iters: 100,
                grad_tol: 1e-8,
            },
            ridge: 1e-9,
        }
    }
}

impl LogisticRegression {
    /// Newton-based exact logistic regression with default tolerances.
    #[must_use]
    pub fn new() -> Self {
        LogisticRegression::default()
    }

    /// Fits the exact MLE (up to a `1e-9` ridge).
    ///
    /// # Errors
    /// * [`crate::BaselineError::Data`] if labels are not `{0, 1}`.
    /// * [`crate::BaselineError::Optim`] on solver breakdown.
    pub fn fit(&self, data: &Dataset) -> Result<LogisticModel> {
        data.check_normalized_logistic()?;
        self.fit_unchecked(data)
    }

    /// Fits without the `‖x‖₂ ≤ 1` contract check. For *synthetic* inputs
    /// produced by the histogram baselines, whose box-domain cell centres
    /// can lie slightly outside the unit ball — the contract only matters
    /// for sensitivity analysis, which does not apply to post-processed
    /// synthetic data.
    ///
    /// # Errors
    /// [`crate::BaselineError::Optim`] on solver breakdown.
    pub fn fit_unchecked(&self, data: &Dataset) -> Result<LogisticModel> {
        let loss = RidgedLoss {
            inner: ExactLogisticLoss::new(data),
            ridge: self.ridge,
        };
        let start = vec![0.0; data.d()];
        let result = self.solver.minimize(&loss, &start)?;
        Ok(LogisticModel::new(result.omega, None))
    }
}

/// `ExactLogisticLoss + (ridge/2)·‖ω‖²`.
struct RidgedLoss<'a> {
    inner: ExactLogisticLoss<'a>,
    ridge: f64,
}

impl Objective for RidgedLoss<'_> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }
    fn value(&self, omega: &[f64]) -> f64 {
        self.inner.value(omega) + 0.5 * self.ridge * vecops::dot(omega, omega)
    }
    fn gradient(&self, omega: &[f64]) -> Vec<f64> {
        let mut g = self.inner.gradient(omega);
        vecops::axpy(self.ridge, omega, &mut g);
        g
    }
}

impl TwiceDifferentiable for RidgedLoss<'_> {
    fn hessian(&self, omega: &[f64]) -> Matrix {
        let mut h = self.inner.hessian(omega);
        h.add_diagonal(self.ridge);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BaselineError;
    use fm_optim::numerical_gradient;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(555)
    }

    #[test]
    fn ols_recovers_exact_linear_relationship() {
        let mut r = rng();
        let w = vec![0.3, -0.5];
        let data = fm_data::synth::linear_dataset_with_weights(&mut r, 500, &w, 0.0);
        for reg in [
            LinearRegression::new(),
            LinearRegression::with_normal_equations(),
        ] {
            let model = reg.fit(&data).unwrap();
            assert!(vecops::approx_eq(model.weights(), &w, 1e-8));
        }
    }

    #[test]
    fn qr_and_normal_equations_agree() {
        let mut r = rng();
        let data = fm_data::synth::linear_dataset(&mut r, 2_000, 5, 0.1);
        let a = LinearRegression::new().fit(&data).unwrap();
        let b = LinearRegression::with_normal_equations()
            .fit(&data)
            .unwrap();
        assert!(vecops::approx_eq(a.weights(), b.weights(), 1e-7));
    }

    #[test]
    fn svd_solver_agrees_on_full_rank_data() {
        let mut r = rng();
        let data = fm_data::synth::linear_dataset(&mut r, 2_000, 4, 0.1);
        let a = LinearRegression::new().fit(&data).unwrap();
        let c = LinearRegression::with_min_norm().fit(&data).unwrap();
        assert!(vecops::approx_eq(a.weights(), c.weights(), 1e-7));
    }

    #[test]
    fn svd_solver_survives_rank_deficiency() {
        // Duplicate a column: x₂ = x₁ exactly, so XᵀX is singular. QR and
        // the normal equations must refuse; SVD returns the minimum-norm
        // minimiser, which splits the weight evenly across the duplicates.
        let x = fm_linalg::Matrix::from_fn(50, 2, |r, _| ((r % 7) as f64 - 3.0) / 10.0);
        let y: Vec<f64> = (0..50).map(|r| ((r % 7) as f64 - 3.0) / 10.0).collect();
        let data = Dataset::new(x, y).unwrap();

        assert!(LinearRegression::new().fit(&data).is_err());
        assert!(LinearRegression::with_normal_equations()
            .fit(&data)
            .is_err());

        let model = LinearRegression::with_min_norm().fit(&data).unwrap();
        // y = x₁ = x₂ ⇒ min-norm solution is (0.5, 0.5).
        assert!(vecops::approx_eq(model.weights(), &[0.5, 0.5], 1e-9));
    }

    #[test]
    fn ols_minimises_training_mse() {
        let mut r = rng();
        let data = fm_data::synth::linear_dataset(&mut r, 1_000, 3, 0.2);
        let model = LinearRegression::new().fit(&data).unwrap();
        let opt_preds = model.predict_batch(data.x());
        let opt_mse = fm_data::metrics::mse(&opt_preds, data.y());
        // Any perturbed weight vector must do worse on the training data.
        for i in 0..3 {
            let mut w = model.weights().to_vec();
            w[i] += 0.05;
            let m = LinearModel::new(w, None);
            let mse = fm_data::metrics::mse(&m.predict_batch(data.x()), data.y());
            assert!(mse >= opt_mse, "perturbed {i} beat OLS");
        }
    }

    #[test]
    fn exact_loss_gradient_matches_numeric() {
        let mut r = rng();
        let data = fm_data::synth::logistic_dataset(&mut r, 50, 3, 5.0);
        let loss = ExactLogisticLoss::new(&data);
        let omega = [0.2, -0.4, 0.6];
        let g = loss.gradient(&omega);
        let num = numerical_gradient(&loss, &omega, 1e-6);
        assert!(vecops::approx_eq(&g, &num, 1e-5), "{g:?} vs {num:?}");
    }

    #[test]
    fn exact_loss_hessian_is_psd() {
        let mut r = rng();
        let data = fm_data::synth::logistic_dataset(&mut r, 100, 3, 5.0);
        let loss = ExactLogisticLoss::new(&data);
        let h = loss.hessian(&[0.1, 0.1, -0.1]);
        let eig = fm_linalg::SymmetricEigen::new(&h).unwrap();
        assert!(eig.values().iter().all(|&v| v >= -1e-10));
    }

    #[test]
    fn logistic_mle_beats_chance_and_matches_direction() {
        let mut r = rng();
        let w = vec![0.6, -0.3];
        let data = fm_data::synth::logistic_dataset_with_weights(&mut r, 20_000, &w, 10.0);
        let model = LogisticRegression::new().fit(&data).unwrap();
        let cos =
            vecops::dot(model.weights(), &w) / (vecops::norm2(model.weights()) * vecops::norm2(&w));
        assert!(cos > 0.98, "cosine {cos}");
        let probs = model.probabilities_batch(data.x());
        let err = fm_data::metrics::misclassification_rate(&probs, data.y());
        assert!(err < 0.40, "misclassification {err}");
    }

    #[test]
    fn logistic_rejects_bad_labels() {
        let x = fm_linalg::Matrix::from_rows(&[&[0.1]]).unwrap();
        let data = Dataset::new(x, vec![0.5]).unwrap();
        assert!(matches!(
            LogisticRegression::new().fit(&data),
            Err(BaselineError::Data(_))
        ));
    }

    #[test]
    fn newton_converges_in_few_iterations() {
        let mut r = rng();
        let data = fm_data::synth::logistic_dataset(&mut r, 5_000, 4, 6.0);
        let loss = RidgedLoss {
            inner: ExactLogisticLoss::new(&data),
            ridge: 1e-9,
        };
        let res = Newton::default().minimize(&loss, &[0.0; 4]).unwrap();
        assert!(res.converged);
        assert!(res.iterations < 30, "{} iterations", res.iterations);
    }
}
