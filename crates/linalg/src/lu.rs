// Triangular/banded access patterns read better with explicit indices.
#![allow(clippy::needless_range_loop)]

use crate::{LinalgError, Matrix, Result};

/// Pivot magnitude below which a matrix is treated as singular.
const SINGULAR_TOL: f64 = 1e-12;

/// LU decomposition with partial (row) pivoting: `P·A = L·U`.
///
/// Used to solve the general (possibly indefinite) linear systems that arise
/// when minimising noisy quadratic objectives in Algorithm 1 of the paper —
/// after the functional mechanism injects Laplace noise, the Hessian is
/// symmetric but *not* guaranteed positive definite, so Cholesky cannot be
/// assumed.
///
/// The factorisation is computed once and can then solve against any number
/// of right-hand sides in `O(n²)` each.
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined L (strict lower, unit diagonal implied) and U (upper) factors.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row index now at row `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (`+1.0` or `-1.0`), for determinants.
    perm_sign: f64,
}

impl Lu {
    /// Factors a square matrix.
    ///
    /// # Errors
    /// * [`LinalgError::NotSquare`] for rectangular input.
    /// * [`LinalgError::Empty`] for a 0×0 matrix.
    /// * [`LinalgError::Singular`] when a pivot column is numerically zero.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        for k in 0..n {
            // Partial pivoting: pick the largest |entry| in column k at or
            // below the diagonal.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for r in (k + 1)..n {
                let v = lu[(r, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < SINGULAR_TOL {
                return Err(LinalgError::Singular { pivot: k });
            }
            if pivot_row != k {
                swap_rows(&mut lu, k, pivot_row);
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
            }
            let pivot = lu[(k, k)];
            for r in (k + 1)..n {
                let factor = lu[(r, k)] / pivot;
                lu[(r, k)] = factor;
                for c in (k + 1)..n {
                    let u_kc = lu[(k, c)];
                    lu[(r, c)] -= factor * u_kc;
                }
            }
        }
        Ok(Lu {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Dimension of the factored matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b` for `x`.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] if `b.len()` differs from the matrix
    /// dimension.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Apply permutation, then forward substitution (unit lower).
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for r in 1..n {
            let mut sum = x[r];
            for c in 0..r {
                sum -= self.lu[(r, c)] * x[c];
            }
            x[r] = sum;
        }
        // Back substitution (upper).
        for r in (0..n).rev() {
            let mut sum = x[r];
            for c in (r + 1)..n {
                sum -= self.lu[(r, c)] * x[c];
            }
            x[r] = sum / self.lu[(r, r)];
        }
        Ok(x)
    }

    /// Solves `A·X = B` column by column.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] if `B` has the wrong row count.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu_solve_matrix",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for c in 0..b.cols() {
            let col = self.solve(&b.col(c).collect::<Vec<f64>>())?;
            for (r, v) in col.into_iter().enumerate() {
                out[(r, c)] = v;
            }
        }
        Ok(out)
    }

    /// Computes `A⁻¹`.
    ///
    /// Prefer [`Lu::solve`] when you only need `A⁻¹·b`.
    ///
    /// # Errors
    /// Propagates solver errors (cannot occur for a successfully factored
    /// matrix, but kept fallible for API symmetry).
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// Determinant of the factored matrix (product of U's diagonal times the
    /// permutation sign).
    #[must_use]
    pub fn determinant(&self) -> f64 {
        self.perm_sign * self.lu.diagonal().iter().product::<f64>()
    }
}

fn swap_rows(m: &mut Matrix, a: usize, b: usize) {
    if a == b {
        return;
    }
    for c in 0..m.cols() {
        let tmp = m[(a, c)];
        m[(a, c)] = m[(b, c)];
        m[(b, c)] = tmp;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vecops;

    #[test]
    fn solve_known_system() {
        // 2x + y = 5 ; x + 3y = 10  →  x = 1, y = 3
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let x = Lu::new(&a).unwrap().solve(&[5.0, 10.0]).unwrap();
        assert!(vecops::approx_eq(&x, &[1.0, 3.0], 1e-12));
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero in the (0,0) position forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = Lu::new(&a).unwrap().solve(&[2.0, 3.0]).unwrap();
        assert!(vecops::approx_eq(&x, &[3.0, 2.0], 1e-12));
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(Lu::new(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn rejects_rectangular_and_empty() {
        assert!(matches!(
            Lu::new(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
        assert!(matches!(
            Lu::new(&Matrix::zeros(0, 0)),
            Err(LinalgError::Empty)
        ));
    }

    #[test]
    fn determinant_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert!((Lu::new(&a).unwrap().determinant() - (-2.0)).abs() < 1e-12);
        assert!((Lu::new(&Matrix::identity(4)).unwrap().determinant() - 1.0).abs() < 1e-12);
        // Permuted identity has determinant -1.
        let p = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        assert!((Lu::new(&p).unwrap().determinant() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = Matrix::from_rows(&[&[4.0, 7.0, 2.0], &[3.0, 6.0, 1.0], &[2.0, 5.0, 3.0]]).unwrap();
        let inv = Lu::new(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(3), 1e-10));
    }

    #[test]
    fn solve_matrix_multiple_rhs() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[2.0, 4.0], &[4.0, 8.0]]).unwrap();
        let x = Lu::new(&a).unwrap().solve_matrix(&b).unwrap();
        assert!(x.approx_eq(
            &Matrix::from_rows(&[&[1.0, 2.0], &[1.0, 2.0]]).unwrap(),
            1e-12
        ));
    }

    #[test]
    fn solve_checks_rhs_length() {
        let a = Matrix::identity(3);
        let lu = Lu::new(&a).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
        assert!(lu.solve_matrix(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn reconstructs_solution_for_random_like_system() {
        // Deterministic pseudo-random matrix; verify A·x ≈ b.
        let n = 8;
        let a = Matrix::from_fn(n, n, |r, c| {
            let v = ((r * 31 + c * 17 + 7) % 23) as f64 - 11.0;
            if r == c {
                v + 30.0 // diagonally dominant: comfortably nonsingular
            } else {
                v
            }
        });
        let b: Vec<f64> = (0..n).map(|i| i as f64 - 3.0).collect();
        let x = Lu::new(&a).unwrap().solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        assert!(vecops::approx_eq(&ax, &b, 1e-9));
    }
}
