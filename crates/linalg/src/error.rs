use std::fmt;

/// Errors produced by linear-algebra operations.
///
/// Library code in this workspace never panics on malformed *user* input;
/// dimension mismatches and numerically impossible requests surface as
/// variants of this enum instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Two operands had incompatible shapes.
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left/first operand, `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right/second operand, `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// An operation that requires a square matrix received a rectangular one.
    NotSquare {
        /// Actual shape, `(rows, cols)`.
        shape: (usize, usize),
    },
    /// A factorisation that requires symmetry received an asymmetric matrix.
    NotSymmetric,
    /// Cholesky factorisation failed: the matrix is not positive definite.
    NotPositiveDefinite {
        /// Index of the pivot at which factorisation broke down.
        pivot: usize,
    },
    /// The matrix is singular (or numerically so) and cannot be solved against.
    Singular {
        /// Index of the zero (or tiny) pivot.
        pivot: usize,
    },
    /// An iterative algorithm failed to converge within its sweep budget.
    NoConvergence {
        /// The algorithm that failed.
        algorithm: &'static str,
        /// Number of iterations/sweeps performed before giving up.
        iterations: usize,
    },
    /// A matrix constructor received data whose length disagrees with the
    /// requested shape.
    BadConstruction {
        /// What was wrong.
        reason: &'static str,
    },
    /// An empty matrix or vector was supplied where a non-empty one is needed.
    Empty,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotSquare { shape } => {
                write!(f, "expected square matrix, got {}x{}", shape.0, shape.1)
            }
            LinalgError::NotSymmetric => write!(f, "matrix is not symmetric"),
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular at pivot {pivot}")
            }
            LinalgError::NoConvergence {
                algorithm,
                iterations,
            } => write!(
                f,
                "{algorithm} failed to converge after {iterations} iterations"
            ),
            LinalgError::BadConstruction { reason } => {
                write!(f, "invalid matrix construction: {reason}")
            }
            LinalgError::Empty => write!(f, "empty matrix or vector"),
        }
    }
}

impl std::error::Error for LinalgError {}
