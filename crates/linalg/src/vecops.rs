//! BLAS-1 style free functions over `&[f64]` slices.
//!
//! Vectors in this workspace are plain `Vec<f64>` / `&[f64]` so they compose
//! with std and with callers that own their storage; these helpers provide
//! the handful of dense kernels the rest of the workspace needs.
//!
//! All functions assume (and `debug_assert!`) equal lengths where relevant;
//! in release builds a length mismatch is a logic error in the caller, and
//! the shorter length wins (`zip` semantics) rather than panicking.

/// Dot product `x · y`.
///
/// ```
/// assert_eq!(fm_linalg::vecops::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
#[must_use]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Euclidean norm `‖x‖₂`.
#[must_use]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Sum of the entries.
#[must_use]
pub fn sum(x: &[f64]) -> f64 {
    let mut acc = [0.0_f64; 4];
    let mut chunks = x.chunks_exact(4);
    for c in &mut chunks {
        acc[0] += c[0];
        acc[1] += c[1];
        acc[2] += c[2];
        acc[3] += c[3];
    }
    let tail: f64 = chunks.remainder().iter().sum();
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Fused sum of squares `Σ x_i²` — the `yᵀy` kernel of batched coefficient
/// assembly (one pass, four independent accumulators).
#[must_use]
pub fn sum_squares(x: &[f64]) -> f64 {
    let mut acc = [0.0_f64; 4];
    let mut chunks = x.chunks_exact(4);
    for c in &mut chunks {
        for l in 0..4 {
            acc[l] += c[l] * c[l];
        }
    }
    let tail: f64 = chunks.remainder().iter().map(|v| v * v).sum();
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Batched transposed matrix-vector accumulation
/// `out ← out + a · Xᵀy`, where `rows` is a row-major `k × d` block
/// (`k = y.len()`, `rows.len() = k·d`) — the `Xᵀy` kernel of batched
/// coefficient assembly. Rows are processed four at a time so `out`
/// stays register/L1-resident instead of being re-streamed per tuple.
///
/// # Panics
/// If `rows.len() != y.len()·d` or `out.len() != d` — a silent zip
/// truncation here would mean silently wrong coefficients, so the shape
/// relation is enforced in release builds too (one comparison per call).
pub fn gemv_t_acc(a: f64, rows: &[f64], d: usize, y: &[f64], out: &mut [f64]) {
    assert_eq!(rows.len(), y.len() * d, "gemv_t_acc: shape mismatch");
    assert_eq!(out.len(), d, "gemv_t_acc: output arity");
    if d == 0 {
        return;
    }
    let mut row_quads = rows.chunks_exact(4 * d);
    let mut y_quads = y.chunks_exact(4);
    for (quad, yq) in (&mut row_quads).zip(&mut y_quads) {
        let (c0, c1, c2, c3) = (a * yq[0], a * yq[1], a * yq[2], a * yq[3]);
        let (r0, rest) = quad.split_at(d);
        let (r1, rest) = rest.split_at(d);
        let (r2, r3) = rest.split_at(d);
        for j in 0..d {
            out[j] += (c0 * r0[j] + c1 * r1[j]) + (c2 * r2[j] + c3 * r3[j]);
        }
    }
    for (row, &yi) in row_quads
        .remainder()
        .chunks_exact(d)
        .zip(y_quads.remainder())
    {
        axpy(a * yi, row, out);
    }
}

/// Batched column-sum accumulation `out ← out + a · Σ_i x_i` over a
/// row-major `k × d` block — the `Σ x` kernel feeding the linear
/// coefficients of Taylor-truncated objectives.
///
/// # Panics
/// If `rows.len()` is not a multiple of `d == out.len()` (enforced in
/// release builds: a silent truncation would be silently wrong sums).
pub fn col_sums_acc(a: f64, rows: &[f64], d: usize, out: &mut [f64]) {
    assert_eq!(out.len(), d, "col_sums_acc: output arity");
    assert_eq!(rows.len() % d.max(1), 0, "col_sums_acc: ragged block");
    if d == 0 {
        return;
    }
    let mut quads = rows.chunks_exact(4 * d);
    for quad in &mut quads {
        let (r0, rest) = quad.split_at(d);
        let (r1, rest) = rest.split_at(d);
        let (r2, r3) = rest.split_at(d);
        for j in 0..d {
            out[j] += a * ((r0[j] + r1[j]) + (r2[j] + r3[j]));
        }
    }
    for row in quads.remainder().chunks_exact(d) {
        axpy(a, row, out);
    }
}

/// Column-major counterpart of [`gemv_t_acc`] for a single feature column:
/// `out ← out + a · colᵀy` with the **same** four-row grouping
/// `(c₀x₀ + c₁x₁) + (c₂x₂ + c₃x₃)` per quad (`c_l = a·y_l`), so assembling
/// from a cached transpose is bit-identical to streaming the row-major
/// block. Callers loop this over the `d` columns.
///
/// # Panics
/// If `col.len() != y.len()` (a silent zip truncation would be silently
/// wrong coefficients).
pub fn dot_blocked_acc(a: f64, col: &[f64], y: &[f64], out: &mut f64) {
    assert_eq!(col.len(), y.len(), "dot_blocked_acc: length mismatch");
    let mut acc = *out;
    let mut cq = col.chunks_exact(4);
    let mut yq = y.chunks_exact(4);
    for (c4, y4) in (&mut cq).zip(&mut yq) {
        let (c0, c1, c2, c3) = (a * y4[0], a * y4[1], a * y4[2], a * y4[3]);
        acc += (c0 * c4[0] + c1 * c4[1]) + (c2 * c4[2] + c3 * c4[3]);
    }
    for (&x, &yi) in cq.remainder().iter().zip(yq.remainder()) {
        acc += (a * yi) * x;
    }
    *out = acc;
}

/// Column-major counterpart of [`col_sums_acc`] for a single feature
/// column: `out ← out + a · Σ col`, grouping four rows per addition
/// exactly as the row-major kernel does — bit-identical results when a
/// caller switches between the two layouts.
pub fn sum_blocked_acc(a: f64, col: &[f64], out: &mut f64) {
    let mut acc = *out;
    let mut cq = col.chunks_exact(4);
    for c4 in &mut cq {
        acc += a * ((c4[0] + c4[1]) + (c4[2] + c4[3]));
    }
    for &x in cq.remainder() {
        acc += a * x;
    }
    *out = acc;
}

/// Manhattan norm `‖x‖₁`.
#[must_use]
pub fn norm1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// Max norm `‖x‖∞`. Returns `0.0` for an empty slice.
#[must_use]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

/// Squared Euclidean distance `‖x − y‖₂²`.
#[must_use]
pub fn dist2_sq(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len(), "dist2_sq: length mismatch");
    x.iter().zip(y).map(|(a, b)| (a - b) * (a - b)).sum()
}

/// Euclidean distance `‖x − y‖₂`.
#[must_use]
pub fn dist2(x: &[f64], y: &[f64]) -> f64 {
    dist2_sq(x, y).sqrt()
}

/// In-place scaled accumulation `y ← y + a·x` (the classic `axpy`).
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// In-place scaling `x ← a·x`.
pub fn scale(a: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= a;
    }
}

/// Element-wise sum returning a new vector.
#[must_use]
pub fn add(x: &[f64], y: &[f64]) -> Vec<f64> {
    debug_assert_eq!(x.len(), y.len(), "add: length mismatch");
    x.iter().zip(y).map(|(a, b)| a + b).collect()
}

/// Element-wise difference returning a new vector.
#[must_use]
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    debug_assert_eq!(x.len(), y.len(), "sub: length mismatch");
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

/// Scaled copy `a·x` returning a new vector.
#[must_use]
pub fn scaled(a: f64, x: &[f64]) -> Vec<f64> {
    x.iter().map(|v| a * v).collect()
}

/// Mean of the entries; `0.0` for an empty slice.
#[must_use]
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f64>() / x.len() as f64
    }
}

/// Sample variance (denominator `n − 1`); `0.0` if fewer than two entries.
#[must_use]
pub fn variance(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let m = mean(x);
    x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (x.len() - 1) as f64
}

/// `true` when every pair of entries differs by at most `tol`.
#[must_use]
pub fn approx_eq(x: &[f64], y: &[f64], tol: f64) -> bool {
    x.len() == y.len() && x.iter().zip(y).all(|(a, b)| (a - b).abs() <= tol)
}

/// Normalises `x` to unit Euclidean length in place.
///
/// Returns the original norm. A zero vector is left untouched and `0.0` is
/// returned, so callers can detect the degenerate case.
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > 0.0 {
        scale(1.0 / n, x);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn norms() {
        let x = [3.0, -4.0];
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(norm1(&x), 7.0);
        assert_eq!(norm_inf(&x), 4.0);
    }

    #[test]
    fn norm_inf_empty() {
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn distances() {
        let x = [1.0, 2.0];
        let y = [4.0, 6.0];
        assert_eq!(dist2_sq(&x, &y), 25.0);
        assert_eq!(dist2(&x, &y), 5.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, vec![-3.0, 6.0]);
    }

    #[test]
    fn add_sub_scaled() {
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 6.0]);
        assert_eq!(sub(&[1.0, 2.0], &[3.0, 4.0]), vec![-2.0, -2.0]);
        assert_eq!(scaled(2.0, &[1.0, -1.0]), vec![2.0, -2.0]);
    }

    #[test]
    fn mean_variance() {
        let x = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&x) - 5.0).abs() < 1e-12);
        assert!((variance(&x) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn mean_variance_degenerate() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[42.0]), 0.0);
    }

    #[test]
    fn approx_eq_checks_length_and_tol() {
        assert!(approx_eq(&[1.0], &[1.0 + 1e-12], 1e-9));
        assert!(!approx_eq(&[1.0], &[1.1], 1e-9));
        assert!(!approx_eq(&[1.0], &[1.0, 2.0], 1e-9));
    }

    #[test]
    fn normalize_unit_length() {
        let mut x = vec![3.0, 4.0];
        let n = normalize(&mut x);
        assert_eq!(n, 5.0);
        assert!((norm2(&x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_zero_vector_untouched() {
        let mut x = vec![0.0, 0.0];
        assert_eq!(normalize(&mut x), 0.0);
        assert_eq!(x, vec![0.0, 0.0]);
    }

    #[test]
    fn sum_and_sum_squares_match_naive() {
        for n in [0usize, 1, 3, 4, 5, 8, 17] {
            let x: Vec<f64> = (0..n).map(|i| (i as f64 - 2.5) / 3.0).collect();
            let naive_sum: f64 = x.iter().sum();
            let naive_sq: f64 = x.iter().map(|v| v * v).sum();
            assert!((sum(&x) - naive_sum).abs() < 1e-12, "n={n}");
            assert!((sum_squares(&x) - naive_sq).abs() < 1e-12, "n={n}");
        }
    }

    #[test]
    fn gemv_t_acc_matches_per_row_axpy() {
        for k in [0usize, 1, 3, 4, 5, 9] {
            let d = 3;
            let rows: Vec<f64> = (0..k * d).map(|i| (i as f64) * 0.1 - 0.7).collect();
            let y: Vec<f64> = (0..k).map(|i| (i as f64) * 0.3 - 0.4).collect();
            let mut fast = vec![1.0, -2.0, 0.5];
            let mut slow = fast.clone();
            gemv_t_acc(-2.0, &rows, d, &y, &mut fast);
            for (row, &yi) in rows.chunks_exact(d).zip(&y) {
                axpy(-2.0 * yi, row, &mut slow);
            }
            assert!(
                approx_eq(&fast, &slow, 1e-12),
                "k={k}: {fast:?} vs {slow:?}"
            );
        }
    }

    #[test]
    fn col_sums_acc_matches_per_row_axpy() {
        for k in [0usize, 1, 4, 6, 11] {
            let d = 4;
            let rows: Vec<f64> = (0..k * d).map(|i| ((i * 7) % 13) as f64 / 13.0).collect();
            let mut fast = vec![0.0; d];
            let mut slow = vec![0.0; d];
            col_sums_acc(0.5, &rows, d, &mut fast);
            for row in rows.chunks_exact(d) {
                axpy(0.5, row, &mut slow);
            }
            assert!(approx_eq(&fast, &slow, 1e-12), "k={k}");
        }
    }
}
