// Triangular/banded access patterns read better with explicit indices.
#![allow(clippy::needless_range_loop)]

use crate::{LinalgError, Matrix, Result};

/// Off-diagonal Frobenius mass below which the Jacobi sweep terminates,
/// relative to the input's Frobenius norm.
const JACOBI_REL_TOL: f64 = 1e-14;

/// Maximum number of full Jacobi sweeps. For symmetric matrices the
/// off-diagonal mass converges quadratically, so well-conditioned inputs
/// finish in < 10 sweeps even at n = 100; this cap only guards degenerate
/// floating-point input.
const MAX_SWEEPS: usize = 100;

/// Full eigendecomposition `A = V·Λ·Vᵀ` of a symmetric matrix, via the
/// cyclic Jacobi rotation algorithm.
///
/// This is the engine behind the paper's *spectral trimming* post-processing
/// (Section 6.2): the noisy Hessian `M* + λI` is eigendecomposed, its
/// non-positive eigenvalues are discarded, and the optimisation proceeds in
/// the positive eigenspace. Jacobi is the right algorithm here — it is
/// simple, unconditionally stable for symmetric input, and produces an
/// orthonormal eigenbasis to machine precision, which Section 6.2 relies on
/// to invert `Q'ω = V` via a transpose.
///
/// Eigenvalues are returned in **descending** order with eigenvectors as the
/// *columns* of [`SymmetricEigen::vectors`] (so `vectors.col(i)` pairs with
/// `values[i]`). In the paper's notation `M = QᵀΛQ` where the rows of `Q`
/// are eigenvectors; thus `Q = Vᵀ`.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    values: Vec<f64>,
    vectors: Matrix,
}

impl SymmetricEigen {
    /// Decomposes a symmetric matrix.
    ///
    /// # Errors
    /// * [`LinalgError::NotSquare`] / [`LinalgError::Empty`] on bad shape.
    /// * [`LinalgError::NotSymmetric`] when symmetry is violated beyond
    ///   `1e-9` absolute.
    /// * [`LinalgError::NoConvergence`] if the sweep cap is exhausted
    ///   (non-finite input is the only practical cause).
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        if !a.is_symmetric(1e-9) {
            return Err(LinalgError::NotSymmetric);
        }

        let mut m = a.clone();
        m.symmetrize()?; // remove any sub-tolerance asymmetry exactly
        let mut v = Matrix::identity(n);
        let scale = m.frobenius_norm().max(f64::MIN_POSITIVE);
        let tol = JACOBI_REL_TOL * scale;

        let mut converged = false;
        let mut sweeps = 0;
        while sweeps < MAX_SWEEPS {
            sweeps += 1;
            let off = off_diagonal_norm(&m);
            if off <= tol {
                converged = true;
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    jacobi_rotate(&mut m, &mut v, p, q);
                }
            }
        }
        // A final tolerance check in case the last sweep finished the job.
        if !converged && off_diagonal_norm(&m) > tol {
            return Err(LinalgError::NoConvergence {
                algorithm: "jacobi",
                iterations: sweeps,
            });
        }

        // Extract and sort descending, permuting eigenvector columns along.
        let mut order: Vec<usize> = (0..n).collect();
        let diag = m.diagonal();
        order.sort_by(|&i, &j| diag[j].partial_cmp(&diag[i]).expect("finite eigenvalues"));
        let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
        let vectors = Matrix::from_fn(n, n, |r, c| v[(r, order[c])]);
        Ok(SymmetricEigen { values, vectors })
    }

    /// Eigenvalues in descending order.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Orthonormal eigenvectors as matrix columns, ordered to match
    /// [`SymmetricEigen::values`].
    #[must_use]
    pub fn vectors(&self) -> &Matrix {
        &self.vectors
    }

    /// Number of eigenvalues strictly greater than `threshold`.
    #[must_use]
    pub fn count_above(&self, threshold: f64) -> usize {
        self.values.iter().filter(|&&v| v > threshold).count()
    }

    /// Reconstructs `V·Λ·Vᵀ` — useful for validation and for building the
    /// trimmed operator in Section 6.2.
    #[must_use]
    pub fn reconstruct(&self) -> Matrix {
        let n = self.values.len();
        let mut out = Matrix::zeros(n, n);
        for k in 0..n {
            let col: Vec<f64> = self.vectors.col(k).collect();
            // out += λ_k · v_k v_kᵀ
            out.rank1_update(self.values[k], &col)
                .expect("eigenvector length equals dimension");
        }
        out
    }
}

fn off_diagonal_norm(m: &Matrix) -> f64 {
    let n = m.rows();
    let mut sum = 0.0;
    for r in 0..n {
        for c in (r + 1)..n {
            sum += 2.0 * m[(r, c)] * m[(r, c)];
        }
    }
    sum.sqrt()
}

/// One Jacobi rotation zeroing `m[p][q]` (and `m[q][p]`), accumulating the
/// rotation into `v`.
fn jacobi_rotate(m: &mut Matrix, v: &mut Matrix, p: usize, q: usize) {
    let apq = m[(p, q)];
    if apq == 0.0 {
        return;
    }
    let app = m[(p, p)];
    let aqq = m[(q, q)];
    let theta = (aqq - app) / (2.0 * apq);
    // Stable tangent computation (Golub & Van Loan, Alg. 8.4.1).
    let t = if theta >= 0.0 {
        1.0 / (theta + (1.0 + theta * theta).sqrt())
    } else {
        1.0 / (theta - (1.0 + theta * theta).sqrt())
    };
    let c = 1.0 / (1.0 + t * t).sqrt();
    let s = t * c;
    let n = m.rows();

    // Update rows/cols p and q of the symmetric matrix.
    for k in 0..n {
        if k != p && k != q {
            let akp = m[(k, p)];
            let akq = m[(k, q)];
            m[(k, p)] = c * akp - s * akq;
            m[(p, k)] = m[(k, p)];
            m[(k, q)] = s * akp + c * akq;
            m[(q, k)] = m[(k, q)];
        }
    }
    m[(p, p)] = app - t * apq;
    m[(q, q)] = aqq + t * apq;
    m[(p, q)] = 0.0;
    m[(q, p)] = 0.0;

    // Accumulate rotation into the eigenvector matrix.
    for k in 0..n {
        let vkp = v[(k, p)];
        let vkq = v[(k, q)];
        v[(k, p)] = c * vkp - s * vkq;
        v[(k, q)] = s * vkp + c * vkq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vecops;

    #[test]
    fn diagonal_matrix_eigenvalues_sorted() {
        let m = Matrix::from_diagonal(&[1.0, 5.0, 3.0]);
        let e = SymmetricEigen::new(&m).unwrap();
        assert!(vecops::approx_eq(e.values(), &[5.0, 3.0, 1.0], 1e-12));
    }

    #[test]
    fn known_2x2_spectrum() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let m = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let e = SymmetricEigen::new(&m).unwrap();
        assert!(vecops::approx_eq(e.values(), &[3.0, 1.0], 1e-12));
        // Eigenvector for λ=3 is (1,1)/√2 up to sign.
        let v0: Vec<f64> = e.vectors().col(0).collect();
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v0[0] - v0[1]).abs() < 1e-10);
    }

    #[test]
    fn indefinite_matrix_negative_eigenvalue() {
        // [[1,2],[2,1]] has eigenvalues 3 and -1 — the exact situation
        // spectral trimming handles.
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        let e = SymmetricEigen::new(&m).unwrap();
        assert!(vecops::approx_eq(e.values(), &[3.0, -1.0], 1e-12));
        assert_eq!(e.count_above(0.0), 1);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let m = Matrix::from_rows(&[
            &[4.0, 1.0, -2.0, 0.5],
            &[1.0, 3.0, 0.0, 1.0],
            &[-2.0, 0.0, 5.0, -1.0],
            &[0.5, 1.0, -1.0, 2.0],
        ])
        .unwrap();
        let e = SymmetricEigen::new(&m).unwrap();
        let v = e.vectors();
        let vtv = v.transpose().matmul(v).unwrap();
        assert!(vtv.approx_eq(&Matrix::identity(4), 1e-10));
    }

    #[test]
    fn reconstruction_matches_input() {
        let m =
            Matrix::from_rows(&[&[4.0, 1.0, -2.0], &[1.0, 3.0, 0.0], &[-2.0, 0.0, 5.0]]).unwrap();
        let e = SymmetricEigen::new(&m).unwrap();
        assert!(e.reconstruct().approx_eq(&m, 1e-9));
    }

    #[test]
    fn eigenpairs_satisfy_definition() {
        let m =
            Matrix::from_rows(&[&[2.0, -1.0, 0.0], &[-1.0, 2.0, -1.0], &[0.0, -1.0, 2.0]]).unwrap();
        let e = SymmetricEigen::new(&m).unwrap();
        for k in 0..3 {
            let vk: Vec<f64> = e.vectors().col(k).collect();
            let mv = m.matvec(&vk).unwrap();
            let lv = vecops::scaled(e.values()[k], &vk);
            assert!(vecops::approx_eq(&mv, &lv, 1e-9), "eigenpair {k} violated");
        }
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let m = Matrix::from_rows(&[&[1.0, 0.5], &[0.5, -2.0]]).unwrap();
        let e = SymmetricEigen::new(&m).unwrap();
        let sum: f64 = e.values().iter().sum();
        assert!((sum - m.trace()).abs() < 1e-10);
    }

    #[test]
    fn rejects_asymmetric_and_bad_shape() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]).unwrap();
        assert!(matches!(
            SymmetricEigen::new(&a),
            Err(LinalgError::NotSymmetric)
        ));
        assert!(SymmetricEigen::new(&Matrix::zeros(2, 3)).is_err());
        assert!(matches!(
            SymmetricEigen::new(&Matrix::zeros(0, 0)),
            Err(LinalgError::Empty)
        ));
    }

    #[test]
    fn handles_1x1() {
        let m = Matrix::from_diagonal(&[-7.5]);
        let e = SymmetricEigen::new(&m).unwrap();
        assert_eq!(e.values(), &[-7.5]);
        assert_eq!(e.vectors()[(0, 0)].abs(), 1.0);
    }

    #[test]
    fn zero_matrix_all_zero_eigenvalues() {
        let e = SymmetricEigen::new(&Matrix::zeros(3, 3)).unwrap();
        assert!(e.values().iter().all(|&v| v == 0.0));
        assert_eq!(e.count_above(0.0), 0);
        assert_eq!(e.count_above(-1.0), 3);
    }

    #[test]
    fn moderately_large_matrix_converges() {
        // 20x20 symmetric with deterministic pseudo-random entries.
        let n = 20;
        let mut m = Matrix::from_fn(n, n, |r, c| (((r * 7 + c * 13) % 11) as f64 - 5.0) / 5.0);
        m.symmetrize().unwrap();
        let e = SymmetricEigen::new(&m).unwrap();
        assert!(e.reconstruct().approx_eq(&m, 1e-8));
        let sum: f64 = e.values().iter().sum();
        assert!((sum - m.trace()).abs() < 1e-8);
    }
}
