//! Dense linear algebra substrate for the `functional-mechanism` workspace.
//!
//! The Functional Mechanism (Zhang et al., VLDB 2012) reduces differentially
//! private regression to operations on small dense matrices: assembling
//! quadratic objective functions, solving symmetric linear systems
//! (Algorithm 1, line 8), and eigendecomposing noisy Hessians for the
//! spectral-trimming post-processing step (Section 6.2 of the paper).
//!
//! This crate implements everything those steps need, from scratch and
//! without `unsafe`:
//!
//! * [`Matrix`] — a row-major dense matrix with the usual arithmetic.
//! * [`vecops`] — free functions over `&[f64]` vectors (dot products, norms,
//!   BLAS-1 style updates).
//! * [`Lu`] — LU decomposition with partial pivoting; linear solves,
//!   determinants and inverses.
//! * [`Cholesky`] — Cholesky factorisation of symmetric positive definite
//!   matrices; the cheapest way to both solve normal equations and *test*
//!   positive definiteness.
//! * [`qr`] — Householder QR and least-squares solving.
//! * [`SymmetricEigen`] — the cyclic Jacobi eigenvalue algorithm for
//!   symmetric matrices, returning the full spectrum and an orthonormal
//!   eigenbasis.
//! * [`TridiagonalEigen`] — Householder tridiagonalization + implicit-QL,
//!   the `O(d³)`-total eigensolver for dimensions beyond the paper's
//!   `d ≤ 14` regime (same API as the Jacobi engine).
//! * [`Svd`] — one-sided Jacobi singular value decomposition; numerical
//!   rank, condition numbers, Moore–Penrose pseudo-inverse and
//!   minimum-norm least squares for the rank-deficient systems produced by
//!   spectral trimming (Section 6.2) and degenerate baselines.
//!
//! Dimensions in this workspace are tiny (the paper's experiments top out at
//! `d = 14`), so the implementations favour clarity and numerical robustness
//! over blocking/SIMD tricks; all are `O(n^3)` classics with partial
//! pivoting where appropriate.
//!
//! # Example
//!
//! ```
//! use fm_linalg::{Matrix, Cholesky};
//!
//! // Solve the SPD system A x = b.
//! let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]).unwrap();
//! let chol = Cholesky::new(&a).unwrap();
//! let x = chol.solve(&[2.0, 1.0]).unwrap();
//! let ax = a.matvec(&x).unwrap();
//! assert!((ax[0] - 2.0).abs() < 1e-12 && (ax[1] - 1.0).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cholesky;
mod eigen;
mod error;
mod lu;
mod matrix;
pub mod qr;
mod svd;
mod tridiagonal;
pub mod vecops;

pub use cholesky::{is_positive_definite, Cholesky};
pub use eigen::SymmetricEigen;
pub use error::LinalgError;
pub use lu::Lu;
pub use matrix::Matrix;
pub use svd::{lstsq_min_norm, Svd};
pub use tridiagonal::TridiagonalEigen;

/// Result alias for fallible linear-algebra operations.
pub type Result<T> = std::result::Result<T, LinalgError>;
