// The Householder/QL recurrences are index-heavy by nature; explicit
// indices follow the classical presentation (Golub & Van Loan §8.3).
#![allow(clippy::needless_range_loop)]

use crate::{LinalgError, Matrix, Result};

/// Maximum implicit-QL iterations per eigenvalue. Convergence is cubic;
/// 50 is the classical safety margin (Numerical Recipes uses 30).
const MAX_QL_ITERS: usize = 50;

/// Full eigendecomposition `A = V·Λ·Vᵀ` of a symmetric matrix via
/// **Householder tridiagonalization followed by the implicit-shift QL
/// algorithm** — the `O(d³)`-total classic that scales past the regime
/// where cyclic Jacobi (`O(d³)` *per sweep*) stays competitive.
///
/// [`crate::SymmetricEigen`] (Jacobi) remains the default engine for the
/// paper's experiments: at `d ≤ 14` both run in microseconds and Jacobi's
/// eigenvectors are orthonormal to machine precision by construction. This
/// solver exists for the production regime beyond the paper — DP-ERM
/// workloads with hundreds of features, where the §6.2 spectral-trimming
/// step would otherwise dominate the fit. The `eigen_scaling` Criterion
/// bench quantifies the crossover.
///
/// The API mirrors [`crate::SymmetricEigen`]: eigenvalues **descending**,
/// eigenvectors as matrix columns aligned with the values.
#[derive(Debug, Clone)]
pub struct TridiagonalEigen {
    values: Vec<f64>,
    vectors: Matrix,
}

impl TridiagonalEigen {
    /// Decomposes a symmetric matrix.
    ///
    /// # Errors
    /// * [`LinalgError::NotSquare`] / [`LinalgError::Empty`] on bad shape.
    /// * [`LinalgError::NotSymmetric`] when symmetry is violated beyond
    ///   `1e-9` absolute.
    /// * [`LinalgError::NoConvergence`] if any eigenvalue fails to settle
    ///   within the iteration cap (non-finite input is the practical cause).
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        if !a.is_symmetric(1e-9) {
            return Err(LinalgError::NotSymmetric);
        }

        let mut z = a.clone();
        z.symmetrize()?;
        let (mut d, mut e) = householder_tridiagonalize(&mut z);
        ql_implicit_shifts(&mut d, &mut e, &mut z)?;

        // Sort descending, permuting eigenvector columns along.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| d[j].partial_cmp(&d[i]).expect("finite eigenvalues"));
        let values: Vec<f64> = order.iter().map(|&i| d[i]).collect();
        let vectors = Matrix::from_fn(n, n, |r, c| z[(r, order[c])]);
        Ok(TridiagonalEigen { values, vectors })
    }

    /// Eigenvalues in descending order.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Orthonormal eigenvectors as matrix columns, ordered to match
    /// [`TridiagonalEigen::values`].
    #[must_use]
    pub fn vectors(&self) -> &Matrix {
        &self.vectors
    }

    /// Number of eigenvalues strictly greater than `threshold`.
    #[must_use]
    pub fn count_above(&self, threshold: f64) -> usize {
        self.values.iter().filter(|&&v| v > threshold).count()
    }

    /// Reconstructs `V·Λ·Vᵀ` — used by the validation tests.
    #[must_use]
    pub fn reconstruct(&self) -> Matrix {
        let n = self.values.len();
        let mut out = Matrix::zeros(n, n);
        for k in 0..n {
            let col: Vec<f64> = self.vectors.col(k).collect();
            out.rank1_update(self.values[k], &col)
                .expect("eigenvector length equals dimension");
        }
        out
    }
}

/// Householder reduction of the symmetric matrix in `z` to tridiagonal
/// form (classical `tred2`), accumulating the orthogonal transformation
/// into `z` itself. Returns `(diagonal, sub-diagonal)`; the sub-diagonal
/// entry `e[i]` couples rows `i−1` and `i` (`e[0]` is unused and zero).
fn householder_tridiagonalize(z: &mut Matrix) -> (Vec<f64>, Vec<f64>) {
    let n = z.rows();
    let mut d = vec![0.0f64; n];
    let mut e = vec![0.0f64; n];

    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        if l > 0 {
            let scale: f64 = (0..=l).map(|k| z[(i, k)].abs()).sum();
            if scale == 0.0 {
                // Row already reduced.
                e[i] = z[(i, l)];
            } else {
                for k in 0..=l {
                    z[(i, k)] /= scale;
                    h += z[(i, k)] * z[(i, k)];
                }
                let f = z[(i, l)];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z[(i, l)] = f - g;
                let mut f_acc = 0.0;
                for j in 0..=l {
                    // Store u/H in column i for the later accumulation pass.
                    z[(j, i)] = z[(i, j)] / h;
                    // g = (A·u)_j restricted to the active block.
                    let mut g_sum = 0.0;
                    for k in 0..=j {
                        g_sum += z[(j, k)] * z[(i, k)];
                    }
                    for k in (j + 1)..=l {
                        g_sum += z[(k, j)] * z[(i, k)];
                    }
                    e[j] = g_sum / h;
                    f_acc += e[j] * z[(i, j)];
                }
                let hh = f_acc / (h + h);
                // Rank-2 update A ← A − u·qᵀ − q·uᵀ.
                for j in 0..=l {
                    let f = z[(i, j)];
                    let g = e[j] - hh * f;
                    e[j] = g;
                    for k in 0..=j {
                        let delta = f * e[k] + g * z[(i, k)];
                        z[(j, k)] -= delta;
                    }
                }
            }
        } else {
            e[i] = z[(i, l)];
        }
        d[i] = h;
    }

    d[0] = 0.0;
    e[0] = 0.0;
    // Accumulate the Householder transformations into z.
    for i in 0..n {
        if d[i] != 0.0 {
            for j in 0..i {
                let mut g = 0.0;
                for k in 0..i {
                    g += z[(i, k)] * z[(k, j)];
                }
                for k in 0..i {
                    let delta = g * z[(k, i)];
                    z[(k, j)] -= delta;
                }
            }
        }
        d[i] = z[(i, i)];
        z[(i, i)] = 1.0;
        for j in 0..i {
            z[(j, i)] = 0.0;
            z[(i, j)] = 0.0;
        }
    }
    (d, e)
}

/// Implicit-shift QL iteration on the tridiagonal `(d, e)` (classical
/// `tqli`), rotating the eigenvector columns of `z` along.
fn ql_implicit_shifts(d: &mut [f64], e: &mut [f64], z: &mut Matrix) -> Result<()> {
    let n = d.len();
    // Renumber the sub-diagonal for the QL convention.
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find the first negligible sub-diagonal element at or after l.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break; // d[l] converged
            }
            iter += 1;
            if iter > MAX_QL_ITERS {
                return Err(LinalgError::NoConvergence {
                    algorithm: "implicit-shift QL",
                    iterations: iter,
                });
            }

            // Form the implicit Wilkinson-style shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(g));
            let (mut s, mut c) = (1.0f64, 1.0f64);
            let mut p = 0.0f64;

            let mut i = m;
            while i > l {
                i -= 1;
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    // Deflate: skip the rotation chain and restart.
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Apply the rotation to the eigenvector columns.
                for k in 0..n {
                    f = z[(k, i + 1)];
                    z[(k, i + 1)] = s * z[(k, i)] + c * f;
                    z[(k, i)] = c * z[(k, i)] - s * f;
                }
                if i == l {
                    d[l] -= p;
                    e[l] = g;
                    e[m] = 0.0;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{vecops, SymmetricEigen};

    fn deterministic_symmetric(n: usize) -> Matrix {
        let mut m = Matrix::from_fn(n, n, |r, c| (((r * 7 + c * 13) % 19) as f64 - 9.0) / 9.0);
        m.symmetrize().unwrap();
        m
    }

    #[test]
    fn diagonal_matrix_eigenvalues_sorted() {
        let m = Matrix::from_diagonal(&[1.0, 5.0, 3.0]);
        let e = TridiagonalEigen::new(&m).unwrap();
        assert!(vecops::approx_eq(e.values(), &[5.0, 3.0, 1.0], 1e-12));
    }

    #[test]
    fn known_2x2_spectrum() {
        let m = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let e = TridiagonalEigen::new(&m).unwrap();
        assert!(vecops::approx_eq(e.values(), &[3.0, 1.0], 1e-12));
    }

    #[test]
    fn indefinite_matrix_negative_eigenvalue() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        let e = TridiagonalEigen::new(&m).unwrap();
        assert!(vecops::approx_eq(e.values(), &[3.0, -1.0], 1e-12));
        assert_eq!(e.count_above(0.0), 1);
    }

    #[test]
    fn matches_jacobi_on_random_matrices() {
        for n in [1usize, 2, 3, 5, 8, 14, 20] {
            let m = deterministic_symmetric(n);
            let ql = TridiagonalEigen::new(&m).unwrap();
            let jac = SymmetricEigen::new(&m).unwrap();
            assert!(
                vecops::approx_eq(ql.values(), jac.values(), 1e-8 * (1.0 + m.max_abs())),
                "n={n}: {:?} vs {:?}",
                ql.values(),
                jac.values()
            );
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let m = deterministic_symmetric(12);
        let e = TridiagonalEigen::new(&m).unwrap();
        let v = e.vectors();
        let vtv = v.transpose().matmul(v).unwrap();
        assert!(vtv.approx_eq(&Matrix::identity(12), 1e-9));
    }

    #[test]
    fn reconstruction_matches_input() {
        for n in [1usize, 3, 7, 16] {
            let m = deterministic_symmetric(n);
            let e = TridiagonalEigen::new(&m).unwrap();
            assert!(e.reconstruct().approx_eq(&m, 1e-8), "n={n}");
        }
    }

    #[test]
    fn eigenpairs_satisfy_definition() {
        let m = deterministic_symmetric(9);
        let e = TridiagonalEigen::new(&m).unwrap();
        for k in 0..9 {
            let vk: Vec<f64> = e.vectors().col(k).collect();
            let mv = m.matvec(&vk).unwrap();
            let lv = vecops::scaled(e.values()[k], &vk);
            assert!(vecops::approx_eq(&mv, &lv, 1e-8), "eigenpair {k} violated");
        }
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let m = deterministic_symmetric(11);
        let e = TridiagonalEigen::new(&m).unwrap();
        let sum: f64 = e.values().iter().sum();
        assert!((sum - m.trace()).abs() < 1e-8 * (1.0 + m.trace().abs()));
    }

    #[test]
    fn repeated_eigenvalues_handled() {
        // 3·I has a triple eigenvalue; the basis must still be orthonormal.
        let m = Matrix::from_diagonal(&[3.0, 3.0, 3.0]);
        let e = TridiagonalEigen::new(&m).unwrap();
        assert!(vecops::approx_eq(e.values(), &[3.0, 3.0, 3.0], 1e-12));
        let vtv = e.vectors().transpose().matmul(e.vectors()).unwrap();
        assert!(vtv.approx_eq(&Matrix::identity(3), 1e-12));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(TridiagonalEigen::new(&Matrix::zeros(2, 3)).is_err());
        assert!(matches!(
            TridiagonalEigen::new(&Matrix::zeros(0, 0)),
            Err(LinalgError::Empty)
        ));
        let asym = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]).unwrap();
        assert!(matches!(
            TridiagonalEigen::new(&asym),
            Err(LinalgError::NotSymmetric)
        ));
    }

    #[test]
    fn handles_1x1_and_zero() {
        let e = TridiagonalEigen::new(&Matrix::from_diagonal(&[-7.5])).unwrap();
        assert_eq!(e.values(), &[-7.5]);
        let z = TridiagonalEigen::new(&Matrix::zeros(4, 4)).unwrap();
        assert!(z.values().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn large_matrix_converges_and_matches_jacobi() {
        let n = 60;
        let m = deterministic_symmetric(n);
        let ql = TridiagonalEigen::new(&m).unwrap();
        let jac = SymmetricEigen::new(&m).unwrap();
        assert!(vecops::approx_eq(
            ql.values(),
            jac.values(),
            1e-7 * (1.0 + m.max_abs())
        ));
        assert!(ql.reconstruct().approx_eq(&m, 1e-7));
    }
}
