// Triangular/banded access patterns read better with explicit indices.
#![allow(clippy::needless_range_loop)]

use crate::{LinalgError, Matrix, Result};

/// Symmetry slack accepted by [`Cholesky::new`]; noisy Hessians are
/// symmetrised upstream, so anything beyond this indicates a caller bug.
const SYMMETRY_TOL: f64 = 1e-9;

/// Cholesky factorisation `A = L·Lᵀ` of a symmetric positive definite matrix.
///
/// Two roles in this workspace:
///
/// 1. The fast solver for normal equations (`XᵀX ω = Xᵀy`) in the
///    non-private and `Truncated` baselines.
/// 2. The *positive-definiteness oracle*: Section 6 of the paper needs to
///    know whether a noisy quadratic objective is bounded below, which for a
///    symmetric Hessian is exactly "is `M` positive definite" — attempting a
///    Cholesky factorisation answers that in `O(n³/3)` without computing a
///    full eigendecomposition.
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor; entries above the diagonal are zero.
    l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive definite matrix.
    ///
    /// # Errors
    /// * [`LinalgError::NotSquare`] / [`LinalgError::Empty`] on bad shape.
    /// * [`LinalgError::NotSymmetric`] when symmetry is violated beyond
    ///   `1e-9` absolute.
    /// * [`LinalgError::NotPositiveDefinite`] when a pivot is non-positive —
    ///   this is the signal Section 6's post-processing acts on.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        if !a.is_symmetric(SYMMETRY_TOL) {
            return Err(LinalgError::NotSymmetric);
        }
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            let mut diag = a[(j, j)];
            for k in 0..j {
                diag -= l[(j, k)] * l[(j, k)];
            }
            if diag <= 0.0 || !diag.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { pivot: j });
            }
            let ljj = diag.sqrt();
            l[(j, j)] = ljj;
            for i in (j + 1)..n {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = sum / ljj;
            }
        }
        Ok(Cholesky { l })
    }

    /// Dimension of the factored matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Borrow of the lower-triangular factor `L`.
    #[must_use]
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A·x = b` via forward/back substitution on `L`.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] on wrong `b` length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // L·z = b
        let mut z = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[(i, k)] * z[k];
            }
            z[i] = sum / self.l[(i, i)];
        }
        // Lᵀ·x = z
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = z[i];
            for k in (i + 1)..n {
                sum -= self.l[(k, i)] * x[k];
            }
            x[i] = sum / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Log-determinant of `A` (`2·Σ log L[i][i]`), numerically stabler than
    /// taking `det` directly for large dimensions.
    #[must_use]
    pub fn log_determinant(&self) -> f64 {
        self.l.diagonal().iter().map(|v| v.ln()).sum::<f64>() * 2.0
    }
}

/// `true` iff `a` is symmetric positive definite (via attempted Cholesky).
///
/// This is the boundedness test used by Section 6 of the paper: a quadratic
/// objective `ωᵀMω + αᵀω + β` has a unique finite minimiser iff `M` (made
/// symmetric) is positive definite.
#[must_use]
pub fn is_positive_definite(a: &Matrix) -> bool {
    Cholesky::new(a).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vecops;

    fn spd3() -> Matrix {
        // A = Bᵀ·B + I for a full-rank B is SPD.
        Matrix::from_rows(&[&[6.0, 2.0, 1.0], &[2.0, 5.0, 2.0], &[1.0, 2.0, 4.0]]).unwrap()
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd3();
        let chol = Cholesky::new(&a).unwrap();
        let l = chol.l();
        let llt = l.matmul(&l.transpose()).unwrap();
        assert!(llt.approx_eq(&a, 1e-10));
    }

    #[test]
    fn l_is_lower_triangular() {
        let chol = Cholesky::new(&spd3()).unwrap();
        let l = chol.l();
        for r in 0..3 {
            for c in (r + 1)..3 {
                assert_eq!(l[(r, c)], 0.0);
            }
        }
    }

    #[test]
    fn solve_matches_lu() {
        let a = spd3();
        let b = [1.0, -2.0, 0.5];
        let x_chol = Cholesky::new(&a).unwrap().solve(&b).unwrap();
        let x_lu = crate::Lu::new(&a).unwrap().solve(&b).unwrap();
        assert!(vecops::approx_eq(&x_chol, &x_lu, 1e-10));
    }

    #[test]
    fn detects_indefinite() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap(); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::new(&m),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
        assert!(!is_positive_definite(&m));
    }

    #[test]
    fn detects_negative_definite() {
        let m = Matrix::from_diagonal(&[-1.0, -2.0]);
        assert!(matches!(
            Cholesky::new(&m),
            Err(LinalgError::NotPositiveDefinite { pivot: 0 })
        ));
    }

    #[test]
    fn detects_semidefinite_as_not_pd() {
        let m = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]).unwrap(); // rank 1
        assert!(!is_positive_definite(&m));
    }

    #[test]
    fn rejects_asymmetric() {
        let m = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 2.0]]).unwrap();
        assert!(matches!(Cholesky::new(&m), Err(LinalgError::NotSymmetric)));
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(Cholesky::new(&Matrix::zeros(2, 3)).is_err());
        assert!(matches!(
            Cholesky::new(&Matrix::zeros(0, 0)),
            Err(LinalgError::Empty)
        ));
    }

    #[test]
    fn identity_is_pd_with_zero_logdet() {
        let chol = Cholesky::new(&Matrix::identity(5)).unwrap();
        assert!((chol.log_determinant()).abs() < 1e-12);
        assert!(is_positive_definite(&Matrix::identity(5)));
    }

    #[test]
    fn log_determinant_diagonal() {
        let chol = Cholesky::new(&Matrix::from_diagonal(&[2.0, 3.0])).unwrap();
        assert!((chol.log_determinant() - (6.0_f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn solve_checks_rhs_length() {
        let chol = Cholesky::new(&Matrix::identity(3)).unwrap();
        assert!(chol.solve(&[1.0]).is_err());
    }
}
