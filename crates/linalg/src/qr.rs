//! Householder QR factorisation and least-squares solving.
//!
//! The non-private OLS baseline can solve the normal equations
//! `XᵀX ω = Xᵀy` via Cholesky, but when `XᵀX` is ill-conditioned (highly
//! correlated census attributes at `d = 14`) the QR route
//! `X = Q·R, R·ω = Qᵀy` is numerically preferable — it squares the
//! condition number of nothing. This module provides that route.

// Triangular/banded access patterns read better with explicit indices.
#![allow(clippy::needless_range_loop)]

use crate::{LinalgError, Matrix, Result};

/// Compact Householder QR factorisation of an `m × n` matrix with `m ≥ n`.
///
/// Stores the `R` factor and the Householder reflectors; `Qᵀb` is applied
/// implicitly, so the full `Q` is never materialised.
#[derive(Debug, Clone)]
pub struct Qr {
    /// Packed factorisation: upper triangle holds `R`, the lower part the
    /// essential parts of the Householder vectors.
    qr: Matrix,
    /// Leading coefficients `β_k = 2 / (v_kᵀ v_k)` per reflector (stored as
    /// the full diagonal of the Householder vectors is implicit 1).
    betas: Vec<f64>,
    /// Householder vectors, one per column (each of length `m`).
    vs: Vec<Vec<f64>>,
}

impl Qr {
    /// Factors `a` (requires `rows ≥ cols ≥ 1`).
    ///
    /// # Errors
    /// * [`LinalgError::Empty`] for an empty matrix.
    /// * [`LinalgError::ShapeMismatch`] for under-determined shapes
    ///   (`rows < cols`).
    pub fn new(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Err(LinalgError::Empty);
        }
        if m < n {
            return Err(LinalgError::ShapeMismatch {
                op: "qr (rows must be >= cols)",
                lhs: (m, n),
                rhs: (n, n),
            });
        }
        let mut r = a.clone();
        let mut betas = Vec::with_capacity(n);
        let mut vs: Vec<Vec<f64>> = Vec::with_capacity(n);

        for k in 0..n {
            // Build the Householder vector for column k below the diagonal.
            let mut v = vec![0.0; m];
            let mut norm_sq = 0.0;
            for i in k..m {
                let x = r[(i, k)];
                v[i] = x;
                norm_sq += x * x;
            }
            let norm = norm_sq.sqrt();
            if norm == 0.0 {
                // Column already zero below (and at) the diagonal: rank
                // deficient, but we can keep a no-op reflector.
                betas.push(0.0);
                vs.push(v);
                continue;
            }
            let alpha = if r[(k, k)] >= 0.0 { -norm } else { norm };
            v[k] -= alpha;
            let vtv: f64 = v[k..].iter().map(|x| x * x).sum();
            let beta = if vtv == 0.0 { 0.0 } else { 2.0 / vtv };

            // Apply the reflector to the trailing submatrix.
            if beta != 0.0 {
                for c in k..n {
                    let mut dot = 0.0;
                    for i in k..m {
                        dot += v[i] * r[(i, c)];
                    }
                    let scale = beta * dot;
                    for i in k..m {
                        r[(i, c)] -= scale * v[i];
                    }
                }
            }
            betas.push(beta);
            vs.push(v);
        }
        Ok(Qr { qr: r, betas, vs })
    }

    /// The `n × n` upper-triangular `R` factor.
    #[must_use]
    pub fn r(&self) -> Matrix {
        let n = self.qr.cols();
        Matrix::from_fn(n, n, |r, c| if c >= r { self.qr[(r, c)] } else { 0.0 })
    }

    /// Applies `Qᵀ` to a vector of length `rows`.
    fn apply_qt(&self, b: &[f64]) -> Vec<f64> {
        let mut y = b.to_vec();
        for (k, v) in self.vs.iter().enumerate() {
            let beta = self.betas[k];
            if beta == 0.0 {
                continue;
            }
            let dot: f64 = v.iter().zip(&y).map(|(vi, yi)| vi * yi).sum();
            let scale = beta * dot;
            for (yi, vi) in y.iter_mut().zip(v) {
                *yi -= scale * vi;
            }
        }
        y
    }

    /// Solves the least-squares problem `min ‖A·x − b‖₂`.
    ///
    /// # Errors
    /// * [`LinalgError::ShapeMismatch`] on wrong `b` length.
    /// * [`LinalgError::Singular`] when `A` is rank deficient.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = self.qr.shape();
        if b.len() != m {
            return Err(LinalgError::ShapeMismatch {
                op: "qr_solve",
                lhs: (m, n),
                rhs: (b.len(), 1),
            });
        }
        let y = self.apply_qt(b);
        // Back-substitute R x = y[..n].
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let rii = self.qr[(i, i)];
            if rii.abs() < 1e-12 {
                return Err(LinalgError::Singular { pivot: i });
            }
            let mut sum = y[i];
            for c in (i + 1)..n {
                sum -= self.qr[(i, c)] * x[c];
            }
            x[i] = sum / rii;
        }
        Ok(x)
    }
}

/// One-shot least squares: `argmin_x ‖A·x − b‖₂` via Householder QR.
///
/// # Errors
/// See [`Qr::new`] and [`Qr::solve`].
pub fn lstsq(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Qr::new(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vecops;

    #[test]
    fn square_system_exact() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let x = lstsq(&a, &[5.0, 10.0]).unwrap();
        assert!(vecops::approx_eq(&x, &[1.0, 3.0], 1e-10));
    }

    #[test]
    fn overdetermined_recovers_exact_solution() {
        // b is exactly in the column space: residual 0.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]).unwrap();
        let x_true = [2.0, -1.0];
        let b = a.matvec(&x_true).unwrap();
        let x = lstsq(&a, &b).unwrap();
        assert!(vecops::approx_eq(&x, &x_true, 1e-10));
    }

    #[test]
    fn overdetermined_least_squares_solution() {
        // Fit y = c to observations [1, 2, 3]: least-squares c = 2.
        let a = Matrix::from_rows(&[&[1.0], &[1.0], &[1.0]]).unwrap();
        let x = lstsq(&a, &[1.0, 2.0, 3.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn matches_normal_equations() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0], &[7.0, 9.0]]).unwrap();
        let b = [1.0, 0.5, -0.5, 2.0];
        let x_qr = lstsq(&a, &b).unwrap();
        // Normal equations: (AᵀA) x = Aᵀ b.
        let ata = a.transpose().matmul(&a).unwrap();
        let atb = a.matvec_transposed(&b).unwrap();
        let x_ne = crate::Lu::new(&ata).unwrap().solve(&atb).unwrap();
        assert!(vecops::approx_eq(&x_qr, &x_ne, 1e-8));
    }

    #[test]
    fn r_is_upper_triangular_and_consistent() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let qr = Qr::new(&a).unwrap();
        let r = qr.r();
        assert_eq!(r.shape(), (2, 2));
        assert_eq!(r[(1, 0)], 0.0);
        // |R| diagonal relates to column norms: R[0][0]² = ‖a_col0‖² after
        // reflection ⇒ |R[0][0]| = ‖(1,3,5)‖.
        assert!((r[(0, 0)].abs() - (35.0_f64).sqrt()).abs() < 1e-10);
    }

    #[test]
    fn rank_deficient_detected_on_solve() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]).unwrap();
        let qr = Qr::new(&a).unwrap();
        assert!(matches!(
            qr.solve(&[1.0, 2.0, 3.0]),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn zero_column_no_op_reflector() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 2.0], &[0.0, 3.0]]).unwrap();
        let qr = Qr::new(&a).unwrap();
        assert!(matches!(
            qr.solve(&[1.0, 1.0, 1.0]),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn shape_validation() {
        assert!(Qr::new(&Matrix::zeros(0, 0)).is_err());
        assert!(Qr::new(&Matrix::zeros(2, 3)).is_err()); // underdetermined
        let qr = Qr::new(&Matrix::identity(3)).unwrap();
        assert!(qr.solve(&[1.0, 2.0]).is_err());
    }
}
