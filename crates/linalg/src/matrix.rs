// Triangular/banded access patterns read better with explicit indices.
#![allow(clippy::needless_range_loop)]

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::{LinalgError, Result};

/// A dense, row-major `f64` matrix.
///
/// This is the workhorse type of the workspace. Shapes are validated at the
/// API boundary and arithmetic returns [`LinalgError`] on mismatch rather
/// than panicking, because the callers (the functional mechanism and its
/// baselines) assemble matrices from user-provided datasets.
///
/// Indexing with `m[(r, c)]` is provided for ergonomic element access and
/// *does* panic on out-of-bounds, mirroring slice indexing semantics.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Errors
    /// [`LinalgError::BadConstruction`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::BadConstruction {
                reason: "data length does not match rows * cols",
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from a slice of equal-length rows.
    ///
    /// # Errors
    /// [`LinalgError::Empty`] for no rows, [`LinalgError::BadConstruction`]
    /// for ragged rows.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let r = rows.len();
        if r == 0 {
            return Err(LinalgError::Empty);
        }
        let c = rows[0].len();
        if rows.iter().any(|row| row.len() != c) {
            return Err(LinalgError::BadConstruction {
                reason: "rows have differing lengths",
            });
        }
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            data.extend_from_slice(row);
        }
        Ok(Matrix { rows: r, cols: c, data })
    }

    /// Creates a matrix by evaluating `f(r, c)` at every position.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    #[must_use]
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &v) in diag.iter().enumerate() {
            m.data[i * n + i] = v;
        }
        m
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` for a square matrix.
    #[must_use]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of the underlying row-major storage.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix, returning its row-major storage.
    #[must_use]
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow of row `r` as a slice. Panics if `r >= rows`.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`. Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy of column `c`. Panics if `c >= cols`.
    #[must_use]
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "col index {c} out of bounds ({})", self.cols);
        (0..self.rows).map(|r| self.data[r * self.cols + c]).collect()
    }

    /// Copy of the main diagonal (length `min(rows, cols)`).
    #[must_use]
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols))
            .map(|i| self.data[i * self.cols + i])
            .collect()
    }

    /// Sum of the diagonal entries.
    #[must_use]
    pub fn trace(&self) -> f64 {
        self.diagonal().iter().sum()
    }

    /// Returns the transpose as a new matrix.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        t
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] unless `self.cols == rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // ikj loop order: stream over rhs rows for cache friendliness.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.data[i * self.cols + k];
                if aik == 0.0 {
                    continue;
                }
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += aik * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self · x`.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] unless `x.len() == self.cols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|r| crate::vecops::dot(self.row(r), x))
            .collect())
    }

    /// Transposed matrix-vector product `selfᵀ · x`.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] unless `x.len() == self.rows`.
    pub fn matvec_transposed(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec_transposed",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            crate::vecops::axpy(x[r], self.row(r), &mut out);
        }
        Ok(out)
    }

    /// Element-wise sum.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] on differing shapes.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Element-wise difference.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] on differing shapes.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    fn zip_with(&self, rhs: &Matrix, op: &'static str, f: impl Fn(f64, f64) -> f64) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Returns `a · self` as a new matrix.
    #[must_use]
    pub fn scaled(&self, a: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| a * v).collect(),
        }
    }

    /// Scales every entry in place.
    pub fn scale_in_place(&mut self, a: f64) {
        crate::vecops::scale(a, &mut self.data);
    }

    /// Adds `a` to every diagonal entry in place (used for ridge
    /// regularization, Section 6.1 of the paper).
    pub fn add_diagonal(&mut self, a: f64) {
        for i in 0..self.rows.min(self.cols) {
            self.data[i * self.cols + i] += a;
        }
    }

    /// Rank-1 update `self ← self + a · x xᵀ` (symmetric outer product).
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] unless `self` is `n × n` with
    /// `n == x.len()`.
    pub fn rank1_update(&mut self, a: f64, x: &[f64]) -> Result<()> {
        if self.rows != x.len() || self.cols != x.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "rank1_update",
                lhs: self.shape(),
                rhs: (x.len(), x.len()),
            });
        }
        let n = x.len();
        for r in 0..n {
            let arx = a * x[r];
            let row = &mut self.data[r * n..(r + 1) * n];
            for (entry, &xc) in row.iter_mut().zip(x) {
                *entry += arx * xc;
            }
        }
        Ok(())
    }

    /// `true` when `|self[r][c] − self[c][r]| ≤ tol` for all entries.
    #[must_use]
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for r in 0..self.rows {
            for c in (r + 1)..self.cols {
                if (self.data[r * self.cols + c] - self.data[c * self.cols + r]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Replaces the matrix with `(M + Mᵀ)/2`, forcing exact symmetry.
    ///
    /// # Errors
    /// [`LinalgError::NotSquare`] for rectangular input.
    pub fn symmetrize(&mut self) -> Result<()> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare { shape: self.shape() });
        }
        for r in 0..self.rows {
            for c in (r + 1)..self.cols {
                let avg = 0.5 * (self.data[r * self.cols + c] + self.data[c * self.cols + r]);
                self.data[r * self.cols + c] = avg;
                self.data[c * self.cols + r] = avg;
            }
        }
        Ok(())
    }

    /// Frobenius norm `sqrt(Σ m²)`.
    #[must_use]
    pub fn frobenius_norm(&self) -> f64 {
        crate::vecops::norm2(&self.data)
    }

    /// Largest absolute entry; `0.0` for an empty matrix.
    #[must_use]
    pub fn max_abs(&self) -> f64 {
        crate::vecops::norm_inf(&self.data)
    }

    /// Quadratic form `xᵀ · self · x`.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] unless `self` is square of size `x.len()`.
    pub fn quadratic_form(&self, x: &[f64]) -> Result<f64> {
        let mx = self.matvec(x)?;
        Ok(crate::vecops::dot(x, &mx))
    }

    /// `true` when all entries differ from `other`'s by at most `tol`.
    #[must_use]
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape() && crate::vecops::approx_eq(&self.data, &other.data, tol)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  [")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:+.6}", self.data[r * self.cols + c])?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m22(a: f64, b: f64, c: f64, d: f64) -> Matrix {
        Matrix::from_vec(2, 2, vec![a, b, c, d]).unwrap()
    }

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));

        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i.trace(), 3.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_validates() {
        assert!(matches!(Matrix::from_rows(&[]), Err(LinalgError::Empty)));
        let ragged: &[&[f64]] = &[&[1.0, 2.0], &[3.0]];
        assert!(Matrix::from_rows(ragged).is_err());
        let ok = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(ok[(1, 0)], 3.0);
    }

    #[test]
    fn from_fn_and_diagonal() {
        let m = Matrix::from_fn(2, 2, |r, c| (r * 10 + c) as f64);
        assert_eq!(m[(1, 1)], 11.0);
        let d = Matrix::from_diagonal(&[1.0, 2.0]);
        assert_eq!(d[(0, 0)], 1.0);
        assert_eq!(d[(0, 1)], 0.0);
        assert_eq!(d.diagonal(), vec![1.0, 2.0]);
    }

    #[test]
    fn row_col_access() {
        let m = m22(1.0, 2.0, 3.0, 4.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.col(1), vec![2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_out_of_bounds_panics() {
        let m = m22(1.0, 2.0, 3.0, 4.0);
        let _ = m.row(2);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], m[(1, 2)]);
        assert!(t.transpose().approx_eq(&m, 0.0));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = m22(1.0, 2.0, 3.0, 4.0);
        let i = Matrix::identity(2);
        assert!(m.matmul(&i).unwrap().approx_eq(&m, 0.0));
        assert!(i.matmul(&m).unwrap().approx_eq(&m, 0.0));
    }

    #[test]
    fn matmul_known_product() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let b = m22(5.0, 6.0, 7.0, 8.0);
        let c = a.matmul(&b).unwrap();
        assert!(c.approx_eq(&m22(19.0, 22.0, 43.0, 50.0), 1e-12));
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn matvec_and_transposed() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]).unwrap(), vec![-2.0, -2.0]);
        assert_eq!(m.matvec_transposed(&[1.0, 1.0]).unwrap(), vec![5.0, 7.0, 9.0]);
        assert!(m.matvec(&[1.0]).is_err());
        assert!(m.matvec_transposed(&[1.0]).is_err());
    }

    #[test]
    fn add_sub_scale() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let b = m22(4.0, 3.0, 2.0, 1.0);
        assert!(a.add(&b).unwrap().approx_eq(&m22(5.0, 5.0, 5.0, 5.0), 0.0));
        assert!(a.sub(&b).unwrap().approx_eq(&m22(-3.0, -1.0, 1.0, 3.0), 0.0));
        assert!(a.scaled(2.0).approx_eq(&m22(2.0, 4.0, 6.0, 8.0), 0.0));
        let mut c = a.clone();
        c.scale_in_place(0.5);
        assert!(c.approx_eq(&m22(0.5, 1.0, 1.5, 2.0), 0.0));
        assert!(a.add(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn add_diagonal_ridge() {
        let mut m = m22(1.0, 2.0, 3.0, 4.0);
        m.add_diagonal(10.0);
        assert!(m.approx_eq(&m22(11.0, 2.0, 3.0, 14.0), 0.0));
    }

    #[test]
    fn rank1_update_builds_gram_matrix() {
        let mut m = Matrix::zeros(2, 2);
        m.rank1_update(1.0, &[1.0, 2.0]).unwrap();
        m.rank1_update(1.0, &[3.0, -1.0]).unwrap();
        // x1 x1ᵀ + x2 x2ᵀ
        assert!(m.approx_eq(&m22(10.0, -1.0, -1.0, 5.0), 1e-12));
        assert!(m.rank1_update(1.0, &[1.0]).is_err());
    }

    #[test]
    fn symmetry_checks() {
        let s = m22(1.0, 2.0, 2.0, 3.0);
        assert!(s.is_symmetric(0.0));
        let a = m22(1.0, 2.0, 2.1, 3.0);
        assert!(!a.is_symmetric(0.01));
        assert!(a.is_symmetric(0.2));
        assert!(!Matrix::zeros(2, 3).is_symmetric(1.0));
    }

    #[test]
    fn symmetrize_averages() {
        let mut m = m22(1.0, 2.0, 4.0, 3.0);
        m.symmetrize().unwrap();
        assert!(m.approx_eq(&m22(1.0, 3.0, 3.0, 3.0), 0.0));
        assert!(Matrix::zeros(2, 3).symmetrize().is_err());
    }

    #[test]
    fn norms_and_quadratic_form() {
        let m = m22(3.0, 0.0, 0.0, 4.0);
        assert_eq!(m.frobenius_norm(), 5.0);
        assert_eq!(m.max_abs(), 4.0);
        // xᵀ diag(3,4) x with x = (1,2) → 3 + 16
        assert_eq!(m.quadratic_form(&[1.0, 2.0]).unwrap(), 19.0);
        assert!(m.quadratic_form(&[1.0]).is_err());
    }

    #[test]
    fn debug_format_contains_shape() {
        let m = Matrix::identity(2);
        let s = format!("{m:?}");
        assert!(s.contains("Matrix 2x2"));
    }
}
