// Triangular/banded access patterns read better with explicit indices.
#![allow(clippy::needless_range_loop)]

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::{LinalgError, Result};

/// A dense, row-major `f64` matrix.
///
/// This is the workhorse type of the workspace. Shapes are validated at the
/// API boundary and arithmetic returns [`LinalgError`] on mismatch rather
/// than panicking, because the callers (the functional mechanism and its
/// baselines) assemble matrices from user-provided datasets.
///
/// Indexing with `m[(r, c)]` is provided for ergonomic element access and
/// *does* panic on out-of-bounds, mirroring slice indexing semantics.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// The panel tap handed to [`Matrix::syrk_acc_visit`]: receives each
/// packed column-major panel (`panel`, then the tuple count `k`; feature
/// column `j` is `panel[j*k..(j+1)*k]`).
pub type PanelVisitor<'v> = dyn FnMut(&[f64], usize) + 'v;

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Errors
    /// [`LinalgError::BadConstruction`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::BadConstruction {
                reason: "data length does not match rows * cols",
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from a slice of equal-length rows.
    ///
    /// # Errors
    /// [`LinalgError::Empty`] for no rows, [`LinalgError::BadConstruction`]
    /// for ragged rows.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let r = rows.len();
        if r == 0 {
            return Err(LinalgError::Empty);
        }
        let c = rows[0].len();
        if rows.iter().any(|row| row.len() != c) {
            return Err(LinalgError::BadConstruction {
                reason: "rows have differing lengths",
            });
        }
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: r,
            cols: c,
            data,
        })
    }

    /// Creates a matrix by evaluating `f(r, c)` at every position.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    #[must_use]
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &v) in diag.iter().enumerate() {
            m.data[i * n + i] = v;
        }
        m
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` for a square matrix.
    #[must_use]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of the underlying row-major storage.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix, returning its row-major storage.
    #[must_use]
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow of row `r` as a slice. Panics if `r >= rows`.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`. Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Allocation-free iterator over column `c` (top to bottom).
    /// Panics if `c >= cols`.
    ///
    /// Callers that need owned storage can `.collect::<Vec<_>>()`; most
    /// consumers (dot products, norms, scaled accumulation) can stream the
    /// entries directly.
    pub fn col(&self, c: usize) -> impl Iterator<Item = f64> + '_ {
        assert!(c < self.cols, "col index {c} out of bounds ({})", self.cols);
        self.data.iter().skip(c).step_by(self.cols).copied()
    }

    /// Copy of the main diagonal (length `min(rows, cols)`).
    #[must_use]
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols))
            .map(|i| self.data[i * self.cols + i])
            .collect()
    }

    /// Sum of the diagonal entries (allocation-free).
    #[must_use]
    pub fn trace(&self) -> f64 {
        (0..self.rows.min(self.cols))
            .map(|i| self.data[i * self.cols + i])
            .sum()
    }

    /// Returns the transpose as a new matrix.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        t
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] unless `self.cols == rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // Cache-blocked ikj: tile the i (output rows) and k (depth) loops so
        // the touched `rhs` panel stays L1/L2-resident while each output row
        // is streamed. Inner loop stays a contiguous axpy for vectorization.
        const BLOCK_I: usize = 32;
        const BLOCK_K: usize = 64;
        for i0 in (0..self.rows).step_by(BLOCK_I) {
            let i1 = (i0 + BLOCK_I).min(self.rows);
            for k0 in (0..self.cols).step_by(BLOCK_K) {
                let k1 = (k0 + BLOCK_K).min(self.cols);
                for i in i0..i1 {
                    let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                    for k in k0..k1 {
                        let aik = self.data[i * self.cols + k];
                        let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                        for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                            *o += aik * b;
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self · x`.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] unless `x.len() == self.cols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|r| crate::vecops::dot(self.row(r), x))
            .collect())
    }

    /// Transposed matrix-vector product `selfᵀ · x`.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] unless `x.len() == self.rows`.
    pub fn matvec_transposed(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec_transposed",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            crate::vecops::axpy(x[r], self.row(r), &mut out);
        }
        Ok(out)
    }

    /// Element-wise sum.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] on differing shapes.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// In-place element-wise sum `self ← self + rhs` (no allocation) — the
    /// merge primitive behind `fm-poly`'s partial-objective reduction.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] on differing shapes.
    pub fn add_assign(&mut self, rhs: &Matrix) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "add_assign",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        crate::vecops::axpy(1.0, &rhs.data, &mut self.data);
        Ok(())
    }

    /// Element-wise difference.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] on differing shapes.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    fn zip_with(
        &self,
        rhs: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Returns `a · self` as a new matrix.
    #[must_use]
    pub fn scaled(&self, a: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| a * v).collect(),
        }
    }

    /// Scales every entry in place.
    pub fn scale_in_place(&mut self, a: f64) {
        crate::vecops::scale(a, &mut self.data);
    }

    /// Adds `a` to every diagonal entry in place (used for ridge
    /// regularization, Section 6.1 of the paper).
    pub fn add_diagonal(&mut self, a: f64) {
        for i in 0..self.rows.min(self.cols) {
            self.data[i * self.cols + i] += a;
        }
    }

    /// Rank-1 update `self ← self + a · x xᵀ` (symmetric outer product).
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] unless `self` is `n × n` with
    /// `n == x.len()`.
    pub fn rank1_update(&mut self, a: f64, x: &[f64]) -> Result<()> {
        if self.rows != x.len() || self.cols != x.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "rank1_update",
                lhs: self.shape(),
                rhs: (x.len(), x.len()),
            });
        }
        let n = x.len();
        for r in 0..n {
            let arx = a * x[r];
            let row = &mut self.data[r * n..(r + 1) * n];
            for (entry, &xc) in row.iter_mut().zip(x) {
                *entry += arx * xc;
            }
        }
        Ok(())
    }

    /// Blocked symmetric rank-k accumulation `self ← self + a · XᵀX`, where
    /// `rows` is a row-major `k × d` block of tuples (`rows.len() = k·d`,
    /// `d = self.rows()`) — the `XᵀX` kernel of batched coefficient
    /// assembly.
    ///
    /// Only the upper triangle is accumulated (half the FLOPs of repeated
    /// [`Matrix::rank1_update`]); tuples are register-blocked four at a
    /// time so the accumulator matrix is streamed once per quad instead of
    /// once per tuple. The lower triangle is mirrored before returning, so
    /// a symmetric `self` stays symmetric.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] unless `self` is `d × d` and
    /// `rows.len()` is a multiple of `d`. `self` must be symmetric on
    /// entry (debug-asserted): the mirror step overwrites the lower
    /// triangle.
    pub fn syrk_acc(&mut self, a: f64, rows: &[f64], d: usize) -> Result<()> {
        if self.rows != d || self.cols != d || d == 0 || rows.len() % d != 0 {
            return Err(LinalgError::ShapeMismatch {
                op: "syrk_acc",
                lhs: self.shape(),
                rhs: (rows.len() / d.max(1), d),
            });
        }
        debug_assert!(
            self.is_symmetric(0.0),
            "syrk_acc requires a symmetric accumulator"
        );
        // Pack-and-dot formulation: each panel of tuples is transposed
        // into a column-major scratch buffer, turning every C[i][j]
        // update into one *long contiguous* dot product — the shape the
        // register-blocked FMA kernels below turn into packed `vfmadd`s.
        // The naive in-place alternative (per-tuple rank-1 with j-loops of
        // length ≤ d) never vectorizes for the paper's small d.
        //
        // The panel is sized to stay L1-resident (~24 KB) whatever `d`
        // is — the dot phase re-reads each column ~d/2 times, so a panel
        // that spills to L2 forfeits most of the formulation's win. The
        // scratch buffer is thread-local so chunked callers don't pay an
        // allocation (and fresh-page faults) per call.
        let panel_rows = (3_072 / d.max(1)).max(16) & !7;
        SYRK_SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            scratch.resize(panel_rows * d, 0.0);
            self.syrk_panels(a, rows, d, panel_rows, &mut scratch, None);
        });
        self.mirror_upper();
        Ok(())
    }

    /// [`Matrix::syrk_acc`] with a **panel tap**: after each L1-resident
    /// panel of tuples has been packed column-major and fed to the syrk
    /// dot kernels, `visit(panel, k)` receives the packed panel (`k`
    /// tuples; feature column `j` is `panel[j*k..(j+1)*k]`, contiguous) so
    /// callers can fuse their own column-panel kernels — `Xᵀy` via
    /// [`crate::vecops::dot_blocked_acc`], `Σx` via
    /// [`crate::vecops::sum_blocked_acc`] — into the same pack pass
    /// instead of re-streaming the row-major chunk.
    ///
    /// Panel boundaries are multiples of eight tuples (only the final
    /// panel may be ragged), so a visitor whose per-column kernel groups
    /// rows four at a time accumulates **bit-identically** to one call
    /// over the whole chunk: quads never straddle a panel boundary and
    /// the sub-quad remainder can only occur at the very end.
    ///
    /// # Errors
    /// As [`Matrix::syrk_acc`].
    pub fn syrk_acc_visit(
        &mut self,
        a: f64,
        rows: &[f64],
        d: usize,
        visit: &mut PanelVisitor<'_>,
    ) -> Result<()> {
        if self.rows != d || self.cols != d || d == 0 || rows.len() % d != 0 {
            return Err(LinalgError::ShapeMismatch {
                op: "syrk_acc_visit",
                lhs: self.shape(),
                rhs: (rows.len() / d.max(1), d),
            });
        }
        debug_assert!(
            self.is_symmetric(0.0),
            "syrk_acc_visit requires a symmetric accumulator"
        );
        let panel_rows = (3_072 / d.max(1)).max(16) & !7;
        SYRK_SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            scratch.resize(panel_rows * d, 0.0);
            self.syrk_panels(a, rows, d, panel_rows, &mut scratch, Some(visit));
        });
        self.mirror_upper();
        Ok(())
    }

    /// The pack-and-dot panel loop of [`Matrix::syrk_acc`] /
    /// [`Matrix::syrk_acc_visit`] (shapes pre-validated by the caller).
    fn syrk_panels(
        &mut self,
        a: f64,
        rows: &[f64],
        d: usize,
        panel_rows: usize,
        scratch: &mut [f64],
        mut visit: Option<&mut PanelVisitor<'_>>,
    ) {
        for panel in rows.chunks(panel_rows * d) {
            let k = panel.len() / d;
            for (r, row) in panel.chunks_exact(d).enumerate() {
                for (j, &v) in row.iter().enumerate() {
                    scratch[j * k + r] = v;
                }
            }
            let col = |j: usize| &scratch[j * k..j * k + k];
            syrk_dot_panel(&mut self.data, d, a, &col);
            if let Some(tap) = visit.as_deref_mut() {
                tap(&scratch[..k * d], k);
            }
        }
    }

    /// Column-major symmetric rank-k accumulation
    /// `self ← self + a · XᵀX` over the row range `[lo, hi)`, where `xt`
    /// is the `d × n` **transpose** of the design matrix (each feature
    /// column stored contiguously as one of `xt`'s rows) — typically the
    /// cached `Dataset::columnar()` view from `fm-data`, so repeated
    /// assemblies skip [`Matrix::syrk_acc`]'s per-call pack step.
    ///
    /// Panel blocking and the register-blocked dot kernels are shared with
    /// [`Matrix::syrk_acc`], so for the same row range the two paths are
    /// **bit-identical** — switching a caller between them can never
    /// perturb assembled coefficients.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] unless `self` is `d × d` with
    /// `d = xt.rows()` and `lo ≤ hi ≤ xt.cols()`. `self` must be symmetric
    /// on entry (debug-asserted): the mirror step overwrites the lower
    /// triangle.
    pub fn syrk_cols_acc(&mut self, a: f64, xt: &Matrix, lo: usize, hi: usize) -> Result<()> {
        let d = xt.rows();
        if self.rows != d || self.cols != d || d == 0 || lo > hi || hi > xt.cols() {
            return Err(LinalgError::ShapeMismatch {
                op: "syrk_cols_acc",
                lhs: self.shape(),
                rhs: (d, hi.saturating_sub(lo)),
            });
        }
        debug_assert!(
            self.is_symmetric(0.0),
            "syrk_cols_acc requires a symmetric accumulator"
        );
        // Identical L1-resident panel size to `syrk_acc`, so the partial
        // sums group the same way (bit-exact agreement between the paths).
        let panel_rows = (3_072 / d.max(1)).max(16) & !7;
        let mut plo = lo;
        while plo < hi {
            let phi = (plo + panel_rows).min(hi);
            let col = |j: usize| &xt.row(j)[plo..phi];
            syrk_dot_panel(&mut self.data, d, a, &col);
            plo = phi;
        }
        self.mirror_upper();
        Ok(())
    }

    /// Weighted symmetric rank-k accumulation
    /// `self ← self + a · Σ_i w_i·x_i x_iᵀ` (`Xᵀ·diag(w)·X`) over a
    /// row-major `k × d` block — the batched form of the per-row weighted
    /// [`Matrix::rank1_update`] loops in Newton-type Hessian assembly.
    ///
    /// # Errors
    /// As [`Matrix::syrk_acc`], plus a shape error when
    /// `w.len() · d != rows.len()`.
    pub fn syrk_weighted_acc(&mut self, a: f64, rows: &[f64], d: usize, w: &[f64]) -> Result<()> {
        if self.rows != d || self.cols != d || d == 0 || rows.len() != w.len() * d {
            return Err(LinalgError::ShapeMismatch {
                op: "syrk_weighted_acc",
                lhs: self.shape(),
                rhs: (w.len(), d),
            });
        }
        debug_assert!(
            self.is_symmetric(0.0),
            "syrk_weighted_acc requires a symmetric accumulator"
        );
        let mut quads = rows.chunks_exact(4 * d);
        let mut w_quads = w.chunks_exact(4);
        for (quad, wq) in (&mut quads).zip(&mut w_quads) {
            let (r0, rest) = quad.split_at(d);
            let (r1, rest) = rest.split_at(d);
            let (r2, r3) = rest.split_at(d);
            for i in 0..d {
                let (a0, a1) = (a * wq[0] * r0[i], a * wq[1] * r1[i]);
                let (a2, a3) = (a * wq[2] * r2[i], a * wq[3] * r3[i]);
                let out = &mut self.data[i * d..(i + 1) * d];
                for j in i..d {
                    out[j] += (a0 * r0[j] + a1 * r1[j]) + (a2 * r2[j] + a3 * r3[j]);
                }
            }
        }
        for (row, &wi) in quads.remainder().chunks_exact(d).zip(w_quads.remainder()) {
            for i in 0..d {
                let ai = a * wi * row[i];
                let out = &mut self.data[i * d..(i + 1) * d];
                for j in i..d {
                    out[j] += ai * row[j];
                }
            }
        }
        self.mirror_upper();
        Ok(())
    }

    /// Column-major counterpart of [`Matrix::syrk_weighted_acc`]:
    /// `self ← self + a · Σ_i w_i·x_i x_iᵀ` over tuples `[lo, hi)` read
    /// from `xt`, the `d × n` **transpose** of the design matrix (feature
    /// columns contiguous, e.g. the cached `Dataset::columnar()` view).
    /// `w` holds one weight per tuple in the range (`w.len() = hi − lo`).
    ///
    /// The accumulation replicates [`Matrix::syrk_weighted_acc`]'s
    /// floating-point grouping exactly — tuples in quads of four, partial
    /// sums paired `(q₀ + q₁) + (q₂ + q₃)`, remainder tuples one at a
    /// time — so for the same row range and weights the two layouts are
    /// **bit-identical**: a caller switching between them can never
    /// perturb assembled coefficients.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] unless `self` is `d × d` with
    /// `d = xt.rows()`, `lo ≤ hi ≤ xt.cols()` and `w.len() = hi − lo`.
    /// `self` must be symmetric on entry (debug-asserted): the mirror step
    /// overwrites the lower triangle.
    pub fn syrk_weighted_cols_acc(
        &mut self,
        a: f64,
        xt: &Matrix,
        lo: usize,
        hi: usize,
        w: &[f64],
    ) -> Result<()> {
        let d = xt.rows();
        if self.rows != d || self.cols != d || d == 0 || lo > hi || hi > xt.cols() {
            return Err(LinalgError::ShapeMismatch {
                op: "syrk_weighted_cols_acc",
                lhs: self.shape(),
                rhs: (d, hi.saturating_sub(lo)),
            });
        }
        if w.len() != hi - lo {
            return Err(LinalgError::ShapeMismatch {
                op: "syrk_weighted_cols_acc",
                lhs: (w.len(), 1),
                rhs: (hi - lo, 1),
            });
        }
        debug_assert!(
            self.is_symmetric(0.0),
            "syrk_weighted_cols_acc requires a symmetric accumulator"
        );
        let k = hi - lo;
        let quads = k / 4 * 4;
        for i in 0..d {
            let ri = &xt.row(i)[lo..hi];
            // Split the mutable accumulator row out before borrowing rows
            // of `xt` for j ≥ i.
            for j in i..d {
                let rj = &xt.row(j)[lo..hi];
                let mut acc = self.data[i * d + j];
                let mut t = 0;
                while t < quads {
                    // Same multiply order and pairing as the row-major
                    // kernel: a_l = (a·w_l)·x_l[i], term = (a₀x₀[j] +
                    // a₁x₁[j]) + (a₂x₂[j] + a₃x₃[j]).
                    let (a0, a1) = (a * w[t] * ri[t], a * w[t + 1] * ri[t + 1]);
                    let (a2, a3) = (a * w[t + 2] * ri[t + 2], a * w[t + 3] * ri[t + 3]);
                    acc += (a0 * rj[t] + a1 * rj[t + 1]) + (a2 * rj[t + 2] + a3 * rj[t + 3]);
                    t += 4;
                }
                for t in quads..k {
                    acc += (a * w[t] * ri[t]) * rj[t];
                }
                self.data[i * d + j] = acc;
            }
        }
        self.mirror_upper();
        Ok(())
    }

    /// Copies the upper triangle onto the lower one (strict symmetry).
    fn mirror_upper(&mut self) {
        let n = self.rows;
        for i in 0..n {
            for j in (i + 1)..n {
                self.data[j * n + i] = self.data[i * n + j];
            }
        }
    }

    /// `true` when `|self[r][c] − self[c][r]| ≤ tol` for all entries.
    #[must_use]
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for r in 0..self.rows {
            for c in (r + 1)..self.cols {
                if (self.data[r * self.cols + c] - self.data[c * self.cols + r]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Replaces the matrix with `(M + Mᵀ)/2`, forcing exact symmetry.
    ///
    /// # Errors
    /// [`LinalgError::NotSquare`] for rectangular input.
    pub fn symmetrize(&mut self) -> Result<()> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                shape: self.shape(),
            });
        }
        for r in 0..self.rows {
            for c in (r + 1)..self.cols {
                let avg = 0.5 * (self.data[r * self.cols + c] + self.data[c * self.cols + r]);
                self.data[r * self.cols + c] = avg;
                self.data[c * self.cols + r] = avg;
            }
        }
        Ok(())
    }

    /// Frobenius norm `sqrt(Σ m²)`.
    #[must_use]
    pub fn frobenius_norm(&self) -> f64 {
        crate::vecops::norm2(&self.data)
    }

    /// Largest absolute entry; `0.0` for an empty matrix.
    #[must_use]
    pub fn max_abs(&self) -> f64 {
        crate::vecops::norm_inf(&self.data)
    }

    /// Quadratic form `xᵀ · self · x`.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] unless `self` is square of size `x.len()`.
    pub fn quadratic_form(&self, x: &[f64]) -> Result<f64> {
        let mx = self.matvec(x)?;
        Ok(crate::vecops::dot(x, &mx))
    }

    /// `true` when all entries differ from `other`'s by at most `tol`.
    #[must_use]
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape() && crate::vecops::approx_eq(&self.data, &other.data, tol)
    }
}

/// SIMD lane width for the fused-dot kernels: eight f64 lanes (one
/// AVX-512 register, or an even pair of AVX2 registers).
const LANES: usize = 8;

thread_local! {
    /// Reusable column-major panel buffer for [`Matrix::syrk_acc`] — the
    /// kernel is called once per row chunk on the assembly hot path, and a
    /// fresh zeroed allocation per call costs more than the pack itself.
    static SYRK_SCRATCH: std::cell::RefCell<Vec<f64>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// The register-blocked upper-triangle update shared by
/// [`Matrix::syrk_acc`] (packed scratch columns) and
/// [`Matrix::syrk_cols_acc`] (cached transpose rows): for one panel of `k`
/// tuples whose `d` feature columns are served contiguously by `col`,
/// accumulates `data[i·d + j] += a · col(i)·col(j)` for `i ≤ j`.
fn syrk_dot_panel<'a>(data: &mut [f64], d: usize, a: f64, col: &impl Fn(usize) -> &'a [f64]) {
    let mut i = 0;
    while i + 1 < d {
        let (ci0, ci1) = (col(i), col(i + 1));
        // Diagonal corner of the 2-row strip.
        let (d00, d01, _, d11) = dot_2x2(ci0, ci1, ci0, ci1);
        data[i * d + i] += a * d00;
        data[i * d + i + 1] += a * d01;
        data[(i + 1) * d + i + 1] += a * d11;
        let mut j = i + 2;
        // 2×4 register blocking: eight independent accumulator
        // chains hide FMA latency; eight FMAs per six loads keep
        // the load ports off the critical path.
        while j + 3 < d {
            let c = dot_2x4(ci0, ci1, col(j), col(j + 1), col(j + 2), col(j + 3));
            for (t, &v) in c[..4].iter().enumerate() {
                data[i * d + j + t] += a * v;
            }
            for (t, &v) in c[4..].iter().enumerate() {
                data[(i + 1) * d + j + t] += a * v;
            }
            j += 4;
        }
        while j + 1 < d {
            let (c00, c01, c10, c11) = dot_2x2(ci0, ci1, col(j), col(j + 1));
            data[i * d + j] += a * c00;
            data[i * d + j + 1] += a * c01;
            data[(i + 1) * d + j] += a * c10;
            data[(i + 1) * d + j + 1] += a * c11;
            j += 2;
        }
        if j < d {
            let cj = col(j);
            data[i * d + j] += a * dot_lanes(ci0, cj);
            data[(i + 1) * d + j] += a * dot_lanes(ci1, cj);
        }
        i += 2;
    }
    if i < d {
        let ci = col(i);
        for j in i..d {
            data[i * d + j] += a * dot_lanes(ci, col(j));
        }
    }
}

/// Contiguous dot product with eight independent accumulator lanes. The
/// lane-parallel shape is what LLVM turns into packed mul/add pairs — a
/// plain `zip().sum()` is a single serial reduction chain and stays
/// scalar. Deliberately *unfused*: rustc cannot contract `a*b + c` into
/// an FMA (fusion changes rounding), and explicit `mul_add` measured ~2x
/// slower than dual-issued mul+add on the reference hosts.
fn dot_lanes(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    let mut acc = [0.0_f64; LANES];
    let mut xq = x.chunks_exact(LANES);
    let mut yq = y.chunks_exact(LANES);
    for (a, b) in (&mut xq).zip(&mut yq) {
        for l in 0..LANES {
            acc[l] += a[l] * b[l];
        }
    }
    let tail: f64 = xq
        .remainder()
        .iter()
        .zip(yq.remainder())
        .map(|(a, b)| a * b)
        .sum();
    acc.iter().sum::<f64>() + tail
}

/// Four dot products sharing their loads: `(x0·y0, x0·y1, x1·y0, x1·y1)`.
/// Register blocking doubles arithmetic intensity over independent dots
/// (four FMAs per four loads), keeping the FMA ports — not the load
/// ports — on the critical path.
fn dot_2x2(x0: &[f64], x1: &[f64], y0: &[f64], y1: &[f64]) -> (f64, f64, f64, f64) {
    debug_assert!(x0.len() == x1.len() && y0.len() == y1.len() && x0.len() == y0.len());
    let mut c00 = [0.0_f64; LANES];
    let mut c01 = [0.0_f64; LANES];
    let mut c10 = [0.0_f64; LANES];
    let mut c11 = [0.0_f64; LANES];
    // chunks_exact-based iteration: no bounds checks in the hot loop, so
    // the lane arrays lower to packed FMAs.
    let mut x0q = x0.chunks_exact(LANES);
    let mut x1q = x1.chunks_exact(LANES);
    let mut y0q = y0.chunks_exact(LANES);
    let mut y1q = y1.chunks_exact(LANES);
    for (((xa, xb), ya), yb) in (&mut x0q).zip(&mut x1q).zip(&mut y0q).zip(&mut y1q) {
        for l in 0..LANES {
            let (a, b) = (xa[l], xb[l]);
            let (c, d) = (ya[l], yb[l]);
            c00[l] += a * c;
            c01[l] += a * d;
            c10[l] += b * c;
            c11[l] += b * d;
        }
    }
    let (mut t00, mut t01, mut t10, mut t11) = (0.0, 0.0, 0.0, 0.0);
    for (((a, b), c), d) in x0q
        .remainder()
        .iter()
        .zip(x1q.remainder())
        .zip(y0q.remainder())
        .zip(y1q.remainder())
    {
        t00 += a * c;
        t01 += a * d;
        t10 += b * c;
        t11 += b * d;
    }
    (
        c00.iter().sum::<f64>() + t00,
        c01.iter().sum::<f64>() + t01,
        c10.iter().sum::<f64>() + t10,
        c11.iter().sum::<f64>() + t11,
    )
}

/// Eight dot products from a 2×4 tile of column pairs, sharing loads
/// across both axes: eight FMAs per six loads, eight independent
/// accumulator chains to hide FMA latency. Returns
/// `[x0·y0, x0·y1, x0·y2, x0·y3, x1·y0, x1·y1, x1·y2, x1·y3]`.
fn dot_2x4(x0: &[f64], x1: &[f64], y0: &[f64], y1: &[f64], y2: &[f64], y3: &[f64]) -> [f64; 8] {
    let n = x0.len();
    debug_assert!(
        x1.len() == n && y0.len() == n && y1.len() == n && y2.len() == n && y3.len() == n
    );
    let mut c00 = [0.0_f64; LANES];
    let mut c01 = [0.0_f64; LANES];
    let mut c02 = [0.0_f64; LANES];
    let mut c03 = [0.0_f64; LANES];
    let mut c10 = [0.0_f64; LANES];
    let mut c11 = [0.0_f64; LANES];
    let mut c12 = [0.0_f64; LANES];
    let mut c13 = [0.0_f64; LANES];
    let quads = n - n % LANES;
    let mut i = 0;
    while i < quads {
        let (xa, xb) = (&x0[i..i + LANES], &x1[i..i + LANES]);
        let (ya, yb) = (&y0[i..i + LANES], &y1[i..i + LANES]);
        let (yc, yd) = (&y2[i..i + LANES], &y3[i..i + LANES]);
        for l in 0..LANES {
            let (a, b) = (xa[l], xb[l]);
            c00[l] += a * ya[l];
            c01[l] += a * yb[l];
            c02[l] += a * yc[l];
            c03[l] += a * yd[l];
            c10[l] += b * ya[l];
            c11[l] += b * yb[l];
            c12[l] += b * yc[l];
            c13[l] += b * yd[l];
        }
        i += LANES;
    }
    let mut out = [
        c00.iter().sum::<f64>(),
        c01.iter().sum::<f64>(),
        c02.iter().sum::<f64>(),
        c03.iter().sum::<f64>(),
        c10.iter().sum::<f64>(),
        c11.iter().sum::<f64>(),
        c12.iter().sum::<f64>(),
        c13.iter().sum::<f64>(),
    ];
    for l in quads..n {
        let (a, b) = (x0[l], x1[l]);
        out[0] += a * y0[l];
        out[1] += a * y1[l];
        out[2] += a * y2[l];
        out[3] += a * y3[l];
        out[4] += b * y0[l];
        out[5] += b * y1[l];
        out[6] += b * y2[l];
        out[7] += b * y3[l];
    }
    out
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  [")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:+.6}", self.data[r * self.cols + c])?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m22(a: f64, b: f64, c: f64, d: f64) -> Matrix {
        Matrix::from_vec(2, 2, vec![a, b, c, d]).unwrap()
    }

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));

        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i.trace(), 3.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_validates() {
        assert!(matches!(Matrix::from_rows(&[]), Err(LinalgError::Empty)));
        let ragged: &[&[f64]] = &[&[1.0, 2.0], &[3.0]];
        assert!(Matrix::from_rows(ragged).is_err());
        let ok = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(ok[(1, 0)], 3.0);
    }

    #[test]
    fn from_fn_and_diagonal() {
        let m = Matrix::from_fn(2, 2, |r, c| (r * 10 + c) as f64);
        assert_eq!(m[(1, 1)], 11.0);
        let d = Matrix::from_diagonal(&[1.0, 2.0]);
        assert_eq!(d[(0, 0)], 1.0);
        assert_eq!(d[(0, 1)], 0.0);
        assert_eq!(d.diagonal(), vec![1.0, 2.0]);
    }

    #[test]
    fn row_col_access() {
        let m = m22(1.0, 2.0, 3.0, 4.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.col(1).collect::<Vec<_>>(), vec![2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_out_of_bounds_panics() {
        let m = m22(1.0, 2.0, 3.0, 4.0);
        let _ = m.row(2);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], m[(1, 2)]);
        assert!(t.transpose().approx_eq(&m, 0.0));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = m22(1.0, 2.0, 3.0, 4.0);
        let i = Matrix::identity(2);
        assert!(m.matmul(&i).unwrap().approx_eq(&m, 0.0));
        assert!(i.matmul(&m).unwrap().approx_eq(&m, 0.0));
    }

    #[test]
    fn matmul_known_product() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let b = m22(5.0, 6.0, 7.0, 8.0);
        let c = a.matmul(&b).unwrap();
        assert!(c.approx_eq(&m22(19.0, 22.0, 43.0, 50.0), 1e-12));
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn matvec_and_transposed() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]).unwrap(), vec![-2.0, -2.0]);
        assert_eq!(
            m.matvec_transposed(&[1.0, 1.0]).unwrap(),
            vec![5.0, 7.0, 9.0]
        );
        assert!(m.matvec(&[1.0]).is_err());
        assert!(m.matvec_transposed(&[1.0]).is_err());
    }

    #[test]
    fn add_sub_scale() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let b = m22(4.0, 3.0, 2.0, 1.0);
        assert!(a.add(&b).unwrap().approx_eq(&m22(5.0, 5.0, 5.0, 5.0), 0.0));
        assert!(a
            .sub(&b)
            .unwrap()
            .approx_eq(&m22(-3.0, -1.0, 1.0, 3.0), 0.0));
        assert!(a.scaled(2.0).approx_eq(&m22(2.0, 4.0, 6.0, 8.0), 0.0));
        let mut c = a.clone();
        c.scale_in_place(0.5);
        assert!(c.approx_eq(&m22(0.5, 1.0, 1.5, 2.0), 0.0));
        assert!(a.add(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn add_diagonal_ridge() {
        let mut m = m22(1.0, 2.0, 3.0, 4.0);
        m.add_diagonal(10.0);
        assert!(m.approx_eq(&m22(11.0, 2.0, 3.0, 14.0), 0.0));
    }

    #[test]
    fn rank1_update_builds_gram_matrix() {
        let mut m = Matrix::zeros(2, 2);
        m.rank1_update(1.0, &[1.0, 2.0]).unwrap();
        m.rank1_update(1.0, &[3.0, -1.0]).unwrap();
        // x1 x1ᵀ + x2 x2ᵀ
        assert!(m.approx_eq(&m22(10.0, -1.0, -1.0, 5.0), 1e-12));
        assert!(m.rank1_update(1.0, &[1.0]).is_err());
    }

    #[test]
    fn matmul_blocked_matches_naive_on_odd_shapes() {
        // Shapes straddling the 32/64 block boundaries.
        for (n, k, m) in [
            (1usize, 1usize, 1usize),
            (7, 5, 3),
            (33, 65, 34),
            (70, 64, 31),
        ] {
            let a = Matrix::from_fn(n, k, |r, c| ((r * 31 + c * 17) % 13) as f64 - 6.0);
            let b = Matrix::from_fn(k, m, |r, c| ((r * 7 + c * 29) % 11) as f64 - 5.0);
            let fast = a.matmul(&b).unwrap();
            let mut naive = Matrix::zeros(n, m);
            for i in 0..n {
                for j in 0..m {
                    let mut s = 0.0;
                    for t in 0..k {
                        s += a[(i, t)] * b[(t, j)];
                    }
                    naive[(i, j)] = s;
                }
            }
            assert!(fast.approx_eq(&naive, 1e-9), "{n}x{k}x{m}");
        }
    }

    #[test]
    fn add_assign_in_place() {
        let mut a = m22(1.0, 2.0, 3.0, 4.0);
        a.add_assign(&m22(4.0, 3.0, 2.0, 1.0)).unwrap();
        assert!(a.approx_eq(&m22(5.0, 5.0, 5.0, 5.0), 0.0));
        assert!(a.add_assign(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn syrk_acc_matches_rank1_updates() {
        for k in [0usize, 1, 3, 4, 5, 9, 16] {
            let d = 3;
            let rows: Vec<f64> = (0..k * d)
                .map(|i| ((i * 11) % 7) as f64 / 7.0 - 0.4)
                .collect();
            let mut fast = Matrix::from_diagonal(&[0.5, 0.5, 0.5]);
            let mut slow = fast.clone();
            fast.syrk_acc(2.0, &rows, d).unwrap();
            for row in rows.chunks_exact(d) {
                slow.rank1_update(2.0, row).unwrap();
            }
            assert!(fast.approx_eq(&slow, 1e-12), "k={k}");
            assert!(fast.is_symmetric(0.0));
        }
    }

    #[test]
    fn syrk_acc_visit_is_bit_identical_and_taps_every_panel() {
        // The tapped variant must (a) leave the syrk accumulation
        // bit-identical to the untapped call and (b) hand the visitor
        // column panels whose per-column four-row grouping reproduces a
        // whole-chunk gemv_t_acc bit-for-bit.
        for (k, d) in [(0usize, 3usize), (1, 3), (5, 3), (23, 5), (2000, 7)] {
            let rows: Vec<f64> = (0..k * d)
                .map(|i| ((i * 11) % 13) as f64 / 13.0 - 0.4)
                .collect();
            let y: Vec<f64> = (0..k).map(|i| ((i * 3) % 9) as f64 / 9.0 - 0.5).collect();

            let mut plain = Matrix::from_diagonal(&vec![0.5; d]);
            let mut tapped = plain.clone();
            plain.syrk_acc(2.0, &rows, d).unwrap();

            let mut fused_xty = vec![0.25; d];
            let mut pos = 0usize;
            tapped
                .syrk_acc_visit(2.0, &rows, d, &mut |panel, pk| {
                    for (j, out) in fused_xty.iter_mut().enumerate() {
                        crate::vecops::dot_blocked_acc(
                            -2.0,
                            &panel[j * pk..(j + 1) * pk],
                            &y[pos..pos + pk],
                            out,
                        );
                    }
                    pos += pk;
                })
                .unwrap();
            assert_eq!(pos, k, "visitor must see every tuple exactly once");
            for (a, b) in plain.as_slice().iter().zip(tapped.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "k={k} d={d}: syrk perturbed");
            }

            let mut reference = vec![0.25; d];
            crate::vecops::gemv_t_acc(-2.0, &rows, d, &y, &mut reference);
            for (a, b) in fused_xty.iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits(), "k={k} d={d}: fused Xᵀy drifted");
            }
        }
        // Shape errors mirror syrk_acc.
        let mut m = Matrix::zeros(2, 2);
        assert!(m
            .syrk_acc_visit(1.0, &[1.0, 2.0, 3.0], 2, &mut |_, _| {})
            .is_err());
    }

    #[test]
    fn syrk_weighted_acc_matches_weighted_rank1() {
        for k in [0usize, 2, 4, 7] {
            let d = 4;
            let rows: Vec<f64> = (0..k * d)
                .map(|i| ((i * 5) % 9) as f64 / 9.0 - 0.3)
                .collect();
            let w: Vec<f64> = (0..k).map(|i| 0.1 + (i as f64) * 0.2).collect();
            let mut fast = Matrix::zeros(d, d);
            let mut slow = Matrix::zeros(d, d);
            fast.syrk_weighted_acc(1.5, &rows, d, &w).unwrap();
            for (row, &wi) in rows.chunks_exact(d).zip(&w) {
                slow.rank1_update(1.5 * wi, row).unwrap();
            }
            assert!(fast.approx_eq(&slow, 1e-12), "k={k}");
        }
    }

    #[test]
    fn syrk_weighted_cols_acc_is_bit_identical_to_row_major() {
        // The columnar weighted kernel must replicate the row-major quad
        // grouping exactly — bit-for-bit, not just to tolerance — over
        // full ranges, sub-ranges, and remainder-heavy lengths.
        let d = 5;
        let n = 23;
        let rows: Vec<f64> = (0..n * d)
            .map(|i| ((i * 13) % 17) as f64 / 17.0 - 0.45)
            .collect();
        let w_all: Vec<f64> = (0..n)
            .map(|i| ((i * 7) % 11) as f64 / 11.0 + 0.05)
            .collect();
        let mut xt = Matrix::zeros(d, n);
        for (r, row) in rows.chunks_exact(d).enumerate() {
            for (j, &v) in row.iter().enumerate() {
                xt[(j, r)] = v;
            }
        }
        for (lo, hi) in [(0usize, n), (0, 4), (3, 20), (7, 7), (1, n)] {
            let mut row_major = Matrix::from_diagonal(&[0.25; 5]);
            let mut columnar = row_major.clone();
            row_major
                .syrk_weighted_acc(0.5, &rows[lo * d..hi * d], d, &w_all[lo..hi])
                .unwrap();
            columnar
                .syrk_weighted_cols_acc(0.5, &xt, lo, hi, &w_all[lo..hi])
                .unwrap();
            for (a, b) in row_major.as_slice().iter().zip(columnar.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "rows [{lo}, {hi})");
            }
            assert!(columnar.is_symmetric(0.0));
        }
    }

    #[test]
    fn syrk_shape_errors() {
        let mut m = Matrix::zeros(2, 2);
        // Ragged block (length not a multiple of d).
        assert!(m.syrk_acc(1.0, &[1.0, 2.0, 3.0], 2).is_err());
        // Accumulator shape mismatch.
        assert!(m.syrk_acc(1.0, &[1.0, 2.0, 3.0], 3).is_err());
        // Weight count mismatch.
        assert!(m
            .syrk_weighted_acc(1.0, &[1.0, 2.0], 2, &[1.0, 1.0])
            .is_err());
        // Columnar twin: range and weight-length mismatches.
        let xt = Matrix::zeros(2, 4);
        assert!(m.syrk_weighted_cols_acc(1.0, &xt, 0, 5, &[]).is_err());
        assert!(m.syrk_weighted_cols_acc(1.0, &xt, 0, 2, &[1.0]).is_err());
        let mut wrong = Matrix::zeros(3, 3);
        assert!(wrong
            .syrk_weighted_cols_acc(1.0, &xt, 0, 2, &[1.0, 1.0])
            .is_err());
    }

    #[test]
    fn symmetry_checks() {
        let s = m22(1.0, 2.0, 2.0, 3.0);
        assert!(s.is_symmetric(0.0));
        let a = m22(1.0, 2.0, 2.1, 3.0);
        assert!(!a.is_symmetric(0.01));
        assert!(a.is_symmetric(0.2));
        assert!(!Matrix::zeros(2, 3).is_symmetric(1.0));
    }

    #[test]
    fn symmetrize_averages() {
        let mut m = m22(1.0, 2.0, 4.0, 3.0);
        m.symmetrize().unwrap();
        assert!(m.approx_eq(&m22(1.0, 3.0, 3.0, 3.0), 0.0));
        assert!(Matrix::zeros(2, 3).symmetrize().is_err());
    }

    #[test]
    fn norms_and_quadratic_form() {
        let m = m22(3.0, 0.0, 0.0, 4.0);
        assert_eq!(m.frobenius_norm(), 5.0);
        assert_eq!(m.max_abs(), 4.0);
        // xᵀ diag(3,4) x with x = (1,2) → 3 + 16
        assert_eq!(m.quadratic_form(&[1.0, 2.0]).unwrap(), 19.0);
        assert!(m.quadratic_form(&[1.0]).is_err());
    }

    #[test]
    fn debug_format_contains_shape() {
        let m = Matrix::identity(2);
        let s = format!("{m:?}");
        assert!(s.contains("Matrix 2x2"));
    }
}
