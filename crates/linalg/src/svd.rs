// Column-pair sweeps read better with explicit indices.
#![allow(clippy::needless_range_loop)]

use crate::{LinalgError, Matrix, Result};

/// Relative tolerance below which a column pair counts as orthogonal and the
/// Jacobi sweep skips it.
const JACOBI_REL_TOL: f64 = 1e-14;

/// Maximum number of full one-sided Jacobi sweeps. Convergence is quadratic
/// once the columns are roughly orthogonal; this cap only guards degenerate
/// floating-point input (NaN/Inf patterns that never settle).
const MAX_SWEEPS: usize = 120;

/// Thin singular value decomposition `A = U·Σ·Vᵀ` via the one-sided Jacobi
/// algorithm.
///
/// For an `m×n` input with `m ≥ n`, `U` is `m×n` with orthonormal columns
/// (columns paired with zero singular values are zero vectors), `Σ` is the
/// diagonal of [`Svd::singular_values`] in **descending** order, and `V` is
/// `n×n` orthogonal. Inputs with `m < n` are handled by decomposing the
/// transpose and swapping the factors.
///
/// In this workspace the SVD backs two jobs the paper's pipeline needs done
/// robustly:
///
/// * **minimum-norm least squares** for rank-deficient systems — the
///   Section 6.2 spectral-trimming step solves `Q'ω = V` where `Q'` has
///   fewer rows than columns, and the NoPrivacy baseline's normal equations
///   can be singular on degenerate (e.g. heavily subsampled) data;
/// * **diagnostics** — [`Svd::rank`] and [`Svd::condition_number`] quantify
///   how close a noisy Hessian `M*` is to losing positive definiteness,
///   which the ablation benchmarks report.
///
/// One-sided Jacobi is the right algorithm at this scale (`d ≤ 14` in the
/// paper's experiments): it is simple, unconditionally stable, and computes
/// small singular values to high *relative* accuracy — better than forming
/// `AᵀA`, which squares the condition number.
#[derive(Debug, Clone)]
pub struct Svd {
    u: Matrix,
    singular_values: Vec<f64>,
    v: Matrix,
}

impl Svd {
    /// Decomposes `a` into `U·Σ·Vᵀ`.
    ///
    /// # Errors
    /// * [`LinalgError::Empty`] if `a` has zero rows or columns.
    /// * [`LinalgError::NoConvergence`] if the sweep cap is exhausted
    ///   (non-finite input is the only practical cause).
    pub fn new(a: &Matrix) -> Result<Self> {
        if a.rows() == 0 || a.cols() == 0 {
            return Err(LinalgError::Empty);
        }
        if a.rows() < a.cols() {
            // Decompose Aᵀ = U'Σ Vᵀ', then A = V' Σ U'ᵀ.
            let t = Self::new(&a.transpose())?;
            return Ok(Svd {
                u: t.v,
                singular_values: t.singular_values,
                v: t.u,
            });
        }

        let m = a.rows();
        let n = a.cols();
        let mut w = a.clone(); // becomes U·Σ (columns are σ_j u_j)
        let mut v = Matrix::identity(n);

        // Columns whose squared norm falls below this are numerically zero
        // (they arise from rank deficiency); rotating against them only
        // shuffles round-off noise and can cycle forever, so the sweep
        // skips them.
        let zero_floor = {
            let f = f64::EPSILON * a.frobenius_norm();
            f * f
        };

        let mut converged = false;
        let mut sweeps = 0;
        while sweeps < MAX_SWEEPS {
            sweeps += 1;
            let mut rotated = false;
            for p in 0..n {
                for q in (p + 1)..n {
                    rotated |= orthogonalize_pair(&mut w, &mut v, p, q, zero_floor);
                }
            }
            if !rotated {
                converged = true;
                break;
            }
        }
        if !converged {
            return Err(LinalgError::NoConvergence {
                algorithm: "one-sided jacobi svd",
                iterations: sweeps,
            });
        }

        // Singular values are the column norms of W; normalize to get U.
        let mut sigma: Vec<f64> = (0..n).map(|j| column_norm(&w, j)).collect();
        let mut u = Matrix::zeros(m, n);
        for j in 0..n {
            if sigma[j] > 0.0 {
                for i in 0..m {
                    u[(i, j)] = w[(i, j)] / sigma[j];
                }
            }
        }

        // Sort descending, permuting U and V columns along.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| {
            sigma[j]
                .partial_cmp(&sigma[i])
                .expect("finite singular values")
        });
        let u = Matrix::from_fn(m, n, |r, c| u[(r, order[c])]);
        let v = Matrix::from_fn(n, n, |r, c| v[(r, order[c])]);
        sigma = order.iter().map(|&i| sigma[i]).collect();

        Ok(Svd {
            u,
            singular_values: sigma,
            v,
        })
    }

    /// The left factor `U` (`m×n` when `m ≥ n`), orthonormal columns for
    /// every nonzero singular value.
    #[must_use]
    pub fn u(&self) -> &Matrix {
        &self.u
    }

    /// The singular values in descending order (all non-negative).
    #[must_use]
    pub fn singular_values(&self) -> &[f64] {
        &self.singular_values
    }

    /// The right factor `V` (square, orthogonal).
    #[must_use]
    pub fn v(&self) -> &Matrix {
        &self.v
    }

    /// The default tolerance separating "numerically zero" singular values
    /// from real ones: `max(m, n) · ε_machine · σ_max` (the LAPACK/NumPy
    /// convention).
    #[must_use]
    pub fn default_rank_tolerance(&self) -> f64 {
        let dim = self.u.rows().max(self.v.rows()) as f64;
        dim * f64::EPSILON * self.singular_values.first().copied().unwrap_or(0.0)
    }

    /// Numerical rank: the number of singular values above `tol`
    /// (default: [`Svd::default_rank_tolerance`]).
    #[must_use]
    pub fn rank(&self, tol: Option<f64>) -> usize {
        let tol = tol.unwrap_or_else(|| self.default_rank_tolerance());
        self.singular_values.iter().filter(|&&s| s > tol).count()
    }

    /// The 2-norm condition number `σ_max / σ_min`; `f64::INFINITY` when the
    /// matrix is rank-deficient.
    #[must_use]
    pub fn condition_number(&self) -> f64 {
        let max = self.singular_values.first().copied().unwrap_or(0.0);
        let min = self.singular_values.last().copied().unwrap_or(0.0);
        if min == 0.0 {
            f64::INFINITY
        } else {
            max / min
        }
    }

    /// The Moore–Penrose pseudo-inverse `A⁺ = V·Σ⁺·Uᵀ` (`n×m`), treating
    /// singular values at or below the default rank tolerance as zero.
    #[must_use]
    pub fn pseudo_inverse(&self) -> Matrix {
        let tol = self.default_rank_tolerance();
        let n = self.v.rows();
        let m = self.u.rows();
        let mut out = Matrix::zeros(n, m);
        for (k, &s) in self.singular_values.iter().enumerate() {
            if s <= tol {
                continue;
            }
            // out += (1/σ_k) · v_k u_kᵀ
            let vk: Vec<f64> = self.v.col(k).collect();
            let uk: Vec<f64> = self.u.col(k).collect();
            for r in 0..n {
                let w = vk[r] / s;
                for c in 0..m {
                    out[(r, c)] += w * uk[c];
                }
            }
        }
        out
    }

    /// Minimum-norm least-squares solution of `A·x ≈ b`: among all `x`
    /// minimising `‖Ax − b‖₂`, returns the one with the smallest `‖x‖₂`.
    /// Well-defined for any rank, which is why the Section 6.2 trimming
    /// pipeline and the baselines use it on possibly singular systems.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] if `b`'s length differs from the row
    /// count of the decomposed matrix.
    pub fn solve_min_norm(&self, b: &[f64]) -> Result<Vec<f64>> {
        let m = self.u.rows();
        let n = self.v.rows();
        if b.len() != m {
            return Err(LinalgError::ShapeMismatch {
                op: "svd solve",
                lhs: (m, n),
                rhs: (b.len(), 1),
            });
        }
        let tol = self.default_rank_tolerance();
        // x = V · Σ⁺ · Uᵀ b, accumulated one singular triplet at a time.
        let mut x = vec![0.0; n];
        for (k, &s) in self.singular_values.iter().enumerate() {
            if s <= tol {
                continue;
            }
            // Stream the columns — no per-k buffer allocations.
            let coeff = self.u.col(k).zip(b).map(|(u, &bi)| u * bi).sum::<f64>() / s;
            for (xi, v) in x.iter_mut().zip(self.v.col(k)) {
                *xi += coeff * v;
            }
        }
        Ok(x)
    }

    /// Reconstructs `U·Σ·Vᵀ` — used by the validation tests.
    #[must_use]
    pub fn reconstruct(&self) -> Matrix {
        let m = self.u.rows();
        let n = self.v.rows();
        let mut out = Matrix::zeros(m, n);
        for (k, &s) in self.singular_values.iter().enumerate() {
            let uk: Vec<f64> = self.u.col(k).collect();
            let vk: Vec<f64> = self.v.col(k).collect();
            for r in 0..m {
                let w = s * uk[r];
                for c in 0..n {
                    out[(r, c)] += w * vk[c];
                }
            }
        }
        out
    }
}

/// Minimum-norm least-squares solve in one call; prefer constructing [`Svd`]
/// once when solving against several right-hand sides.
///
/// # Errors
/// Propagates [`Svd::new`] / [`Svd::solve_min_norm`] failures.
pub fn lstsq_min_norm(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Svd::new(a)?.solve_min_norm(b)
}

fn column_norm(w: &Matrix, j: usize) -> f64 {
    let mut sum = 0.0;
    for i in 0..w.rows() {
        sum += w[(i, j)] * w[(i, j)];
    }
    sum.sqrt()
}

/// One step of the one-sided Jacobi sweep: rotate columns `p` and `q` of `w`
/// (and accumulate into `v`) so they become orthogonal. Returns whether a
/// rotation was applied. Columns with squared norm at or below `zero_floor`
/// count as zero and are never rotated.
fn orthogonalize_pair(w: &mut Matrix, v: &mut Matrix, p: usize, q: usize, zero_floor: f64) -> bool {
    let m = w.rows();
    let mut alpha = 0.0; // ‖w_p‖²
    let mut beta = 0.0; // ‖w_q‖²
    let mut gamma = 0.0; // w_pᵀ w_q
    for i in 0..m {
        let wip = w[(i, p)];
        let wiq = w[(i, q)];
        alpha += wip * wip;
        beta += wiq * wiq;
        gamma += wip * wiq;
    }
    if alpha <= zero_floor || beta <= zero_floor {
        return false;
    }
    if gamma.abs() <= JACOBI_REL_TOL * (alpha * beta).sqrt() {
        return false;
    }

    // Stable rotation computation (Golub & Van Loan §8.6.3 adapted to the
    // one-sided form): zeta = (β − α) / 2γ, t = sign(ζ)/(|ζ| + √(1+ζ²)).
    let zeta = (beta - alpha) / (2.0 * gamma);
    let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
    let c = 1.0 / (1.0 + t * t).sqrt();
    let s = c * t;

    for i in 0..m {
        let wip = w[(i, p)];
        let wiq = w[(i, q)];
        w[(i, p)] = c * wip - s * wiq;
        w[(i, q)] = s * wip + c * wiq;
    }
    let n = v.rows();
    for i in 0..n {
        let vip = v[(i, p)];
        let viq = v[(i, q)];
        v[(i, p)] = c * vip - s * viq;
        v[(i, q)] = s * vip + c * viq;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vecops;

    fn assert_orthonormal_columns(m: &Matrix, tol: f64) {
        let gram = m.transpose().matmul(m).unwrap();
        assert!(
            gram.approx_eq(&Matrix::identity(m.cols()), tol),
            "columns not orthonormal"
        );
    }

    #[test]
    fn identity_has_unit_singular_values() {
        let svd = Svd::new(&Matrix::identity(3)).unwrap();
        assert!(vecops::approx_eq(
            svd.singular_values(),
            &[1.0, 1.0, 1.0],
            1e-14
        ));
        assert_eq!(svd.rank(None), 3);
        assert_eq!(svd.condition_number(), 1.0);
    }

    #[test]
    fn diagonal_matrix_singular_values_sorted_by_magnitude() {
        let svd = Svd::new(&Matrix::from_diagonal(&[2.0, -5.0, 3.0])).unwrap();
        assert!(vecops::approx_eq(
            svd.singular_values(),
            &[5.0, 3.0, 2.0],
            1e-13
        ));
    }

    #[test]
    fn known_2x2() {
        // A = [[3,0],[4,5]] has σ = (√45, √5) — a classic worked example.
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[4.0, 5.0]]).unwrap();
        let svd = Svd::new(&a).unwrap();
        assert!((svd.singular_values()[0] - 45.0_f64.sqrt()).abs() < 1e-12);
        assert!((svd.singular_values()[1] - 5.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_square() {
        let a =
            Matrix::from_rows(&[&[1.0, 2.0, 0.5], &[-1.0, 0.3, 2.2], &[0.0, -0.7, 1.1]]).unwrap();
        let svd = Svd::new(&a).unwrap();
        assert!(svd.reconstruct().approx_eq(&a, 1e-12));
        assert_orthonormal_columns(svd.u(), 1e-12);
        assert_orthonormal_columns(svd.v(), 1e-12);
    }

    #[test]
    fn reconstruction_tall_and_wide() {
        let tall = Matrix::from_fn(7, 3, |r, c| ((r * 3 + c * 5) % 7) as f64 - 3.0);
        let svd = Svd::new(&tall).unwrap();
        assert!(svd.reconstruct().approx_eq(&tall, 1e-12));
        assert_eq!(svd.u().shape(), (7, 3));
        assert_eq!(svd.v().shape(), (3, 3));

        let wide = tall.transpose();
        let svd = Svd::new(&wide).unwrap();
        assert!(svd.reconstruct().approx_eq(&wide, 1e-12));
        assert_eq!(svd.u().shape(), (3, 3));
        assert_eq!(svd.v().shape(), (7, 3));
    }

    #[test]
    fn singular_values_match_eigenvalues_of_gram_matrix() {
        let a = Matrix::from_fn(5, 4, |r, c| ((r + 2 * c) % 5) as f64 / 2.0 - 1.0);
        let svd = Svd::new(&a).unwrap();
        let gram = a.transpose().matmul(&a).unwrap();
        let eig = crate::SymmetricEigen::new(&gram).unwrap();
        for (s, &l) in svd.singular_values().iter().zip(eig.values()) {
            assert!((s * s - l.max(0.0)).abs() < 1e-10, "σ²={} λ={}", s * s, l);
        }
    }

    #[test]
    fn rank_deficient_detected() {
        // Rank 1: every row a multiple of (1, 2, 3).
        let a =
            Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0], &[-1.0, -2.0, -3.0]]).unwrap();
        let svd = Svd::new(&a).unwrap();
        assert_eq!(svd.rank(None), 1);
        assert_eq!(svd.condition_number(), f64::INFINITY);
        assert!(svd.reconstruct().approx_eq(&a, 1e-12));
    }

    #[test]
    fn pseudo_inverse_satisfies_moore_penrose_axioms() {
        // Rank-deficient 3×3 (rank 2).
        let a = Matrix::from_rows(&[&[1.0, 0.0, 1.0], &[0.0, 1.0, 1.0], &[1.0, 1.0, 2.0]]).unwrap();
        let pinv = Svd::new(&a).unwrap().pseudo_inverse();
        let apa = a.matmul(&pinv).unwrap().matmul(&a).unwrap();
        assert!(apa.approx_eq(&a, 1e-10), "A A⁺ A ≠ A");
        let pap = pinv.matmul(&a).unwrap().matmul(&pinv).unwrap();
        assert!(pap.approx_eq(&pinv, 1e-10), "A⁺ A A⁺ ≠ A⁺");
        let ap = a.matmul(&pinv).unwrap();
        assert!(ap.approx_eq(&ap.transpose(), 1e-10), "A A⁺ not symmetric");
        let pa = pinv.matmul(&a).unwrap();
        assert!(pa.approx_eq(&pa.transpose(), 1e-10), "A⁺ A not symmetric");
    }

    #[test]
    fn pseudo_inverse_of_invertible_matches_inverse() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[2.0, 3.0]]).unwrap();
        let pinv = Svd::new(&a).unwrap().pseudo_inverse();
        let inv = crate::Lu::new(&a).unwrap().inverse().unwrap();
        assert!(pinv.approx_eq(&inv, 1e-12));
    }

    #[test]
    fn min_norm_solve_matches_qr_on_full_rank() {
        let a = Matrix::from_fn(6, 3, |r, c| ((r * 2 + c) % 5) as f64 - 2.0);
        let b = [1.0, -0.5, 2.0, 0.0, 1.5, -1.0];
        let x_svd = Svd::new(&a).unwrap().solve_min_norm(&b).unwrap();
        let x_qr = crate::qr::lstsq(&a, &b).unwrap();
        assert!(vecops::approx_eq(&x_svd, &x_qr, 1e-10));
    }

    #[test]
    fn min_norm_solve_underdetermined_picks_smallest_solution() {
        // One equation, two unknowns: x + y = 2. Min-norm solution (1, 1).
        let a = Matrix::from_rows(&[&[1.0, 1.0]]).unwrap();
        let x = Svd::new(&a).unwrap().solve_min_norm(&[2.0]).unwrap();
        assert!(vecops::approx_eq(&x, &[1.0, 1.0], 1e-12));
    }

    #[test]
    fn min_norm_solve_singular_system_is_finite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        let x = Svd::new(&a).unwrap().solve_min_norm(&[1.0, 2.0]).unwrap();
        assert!(x.iter().all(|v| v.is_finite()));
        // Residual of the projected system must be ~0 (b is in the range).
        let r = vecops::sub(&a.matvec(&x).unwrap(), &[1.0, 2.0]);
        assert!(vecops::norm2(&r) < 1e-12);
    }

    #[test]
    fn zero_matrix_rank_zero() {
        let svd = Svd::new(&Matrix::zeros(3, 2)).unwrap();
        assert_eq!(svd.rank(None), 0);
        assert!(svd.singular_values().iter().all(|&s| s == 0.0));
        let x = svd.solve_min_norm(&[1.0, 1.0, 1.0]).unwrap();
        assert!(vecops::approx_eq(&x, &[0.0, 0.0], 0.0));
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(
            Svd::new(&Matrix::zeros(0, 0)),
            Err(LinalgError::Empty)
        ));
        assert!(matches!(
            Svd::new(&Matrix::zeros(3, 0)),
            Err(LinalgError::Empty)
        ));
    }

    #[test]
    fn solve_rejects_wrong_rhs_length() {
        let svd = Svd::new(&Matrix::identity(2)).unwrap();
        assert!(matches!(
            svd.solve_min_norm(&[1.0, 2.0, 3.0]),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn single_column_matrix() {
        let a = Matrix::from_rows(&[&[3.0], &[4.0]]).unwrap();
        let svd = Svd::new(&a).unwrap();
        assert!((svd.singular_values()[0] - 5.0).abs() < 1e-12);
        assert!(svd.reconstruct().approx_eq(&a, 1e-12));
    }

    #[test]
    fn converges_on_rank_deficient_with_duplicate_columns() {
        // Regression test: this 14×14 matrix has exactly duplicated columns
        // (mod-13 periodicity), producing numerically zero columns mid-sweep.
        // Without the zero-column floor the sweep cycles on round-off noise
        // and never converges.
        let d = 14;
        let m = Matrix::from_fn(d, d, |r, c| (((r * 31 + c * 17) % 13) as f64 - 6.0) / 6.0);
        let svd = Svd::new(&m).expect("must converge");
        assert!(
            svd.rank(None) < d,
            "matrix is rank deficient by construction"
        );
        assert!(svd.reconstruct().approx_eq(&m, 1e-10));
    }

    #[test]
    fn lstsq_min_norm_free_function() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]).unwrap();
        let x = lstsq_min_norm(&a, &[2.0, 8.0]).unwrap();
        assert!(vecops::approx_eq(&x, &[1.0, 2.0], 1e-12));
    }
}
