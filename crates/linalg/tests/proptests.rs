//! Property-based tests for the linear-algebra substrate.
//!
//! These exercise the algebraic laws the rest of the workspace silently
//! relies on: factor-reconstruct round-trips, solver correctness against
//! residuals, orthonormality of eigenbases, and norm inequalities.

use fm_linalg::{qr, vecops, Cholesky, Lu, Matrix, Svd, SymmetricEigen, TridiagonalEigen};
use proptest::prelude::*;

const DIM_RANGE: std::ops::Range<usize> = 1..7;

fn finite_entry() -> impl Strategy<Value = f64> {
    // Moderate magnitudes keep condition numbers testable.
    -10.0..10.0
}

fn square_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(finite_entry(), n * n)
        .prop_map(move |data| Matrix::from_vec(n, n, data).expect("sized data"))
}

fn symmetric_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    square_matrix(n).prop_map(|mut m| {
        m.symmetrize().expect("square");
        m
    })
}

/// SPD by construction: `AᵀA + I`.
fn spd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    square_matrix(n).prop_map(|a| {
        let mut g = a.transpose().matmul(&a).expect("square");
        g.add_diagonal(1.0);
        g.symmetrize().expect("square");
        g
    })
}

fn vector(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(finite_entry(), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involution(n in DIM_RANGE, m in DIM_RANGE) {
        let mat = Matrix::from_fn(n, m, |r, c| (r * 31 + c * 7) as f64);
        prop_assert!(mat.transpose().transpose().approx_eq(&mat, 0.0));
    }

    #[test]
    fn matmul_associative((a, b, c) in (2..5usize).prop_flat_map(|n| {
        (square_matrix(n), square_matrix(n), square_matrix(n))
    })) {
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        // Tolerance scales with magnitudes involved.
        let tol = 1e-9 * (1.0 + left.max_abs().max(right.max_abs()));
        prop_assert!(left.approx_eq(&right, tol));
    }

    #[test]
    fn matvec_agrees_with_matmul(m in (1..6usize).prop_flat_map(square_matrix), seed in 0u64..1000) {
        let n = m.rows();
        let x: Vec<f64> = (0..n).map(|i| ((seed as usize + i * 13) % 17) as f64 - 8.0).collect();
        let xm = Matrix::from_vec(n, 1, x.clone()).unwrap();
        let via_matmul = m.matmul(&xm).unwrap();
        let via_matvec = m.matvec(&x).unwrap();
        prop_assert!(vecops::approx_eq(&via_matvec, &via_matmul.col(0).collect::<Vec<f64>>(), 1e-9));
    }

    #[test]
    fn cauchy_schwarz(x in vector(5), y in vector(5)) {
        let lhs = vecops::dot(&x, &y).abs();
        let rhs = vecops::norm2(&x) * vecops::norm2(&y);
        prop_assert!(lhs <= rhs + 1e-9);
    }

    #[test]
    fn triangle_inequality(x in vector(6), y in vector(6)) {
        let sum = vecops::add(&x, &y);
        prop_assert!(vecops::norm2(&sum) <= vecops::norm2(&x) + vecops::norm2(&y) + 1e-9);
    }

    #[test]
    fn norm_ordering(x in vector(6)) {
        // ‖x‖∞ ≤ ‖x‖₂ ≤ ‖x‖₁
        let (n1, n2, ninf) = (vecops::norm1(&x), vecops::norm2(&x), vecops::norm_inf(&x));
        prop_assert!(ninf <= n2 + 1e-9);
        prop_assert!(n2 <= n1 + 1e-9);
    }

    #[test]
    fn lu_solve_has_zero_residual(
        (a, b) in (2..6usize).prop_flat_map(|n| (square_matrix(n), vector(n)))
    ) {
        // Skip singular draws; Lu reports them.
        if let Ok(lu) = Lu::new(&a) {
            let x = lu.solve(&b).unwrap();
            let ax = a.matvec(&x).unwrap();
            let scale = 1.0 + vecops::norm_inf(&b) + a.max_abs() * vecops::norm_inf(&x);
            prop_assert!(vecops::dist2(&ax, &b) <= 1e-7 * scale);
        }
    }

    #[test]
    fn lu_determinant_multiplicative(
        (a, b) in (2..5usize).prop_flat_map(|n| (square_matrix(n), square_matrix(n)))
    ) {
        if let (Ok(lua), Ok(lub)) = (Lu::new(&a), Lu::new(&b)) {
            let ab = a.matmul(&b).unwrap();
            if let Ok(luab) = Lu::new(&ab) {
                let lhs = luab.determinant();
                let rhs = lua.determinant() * lub.determinant();
                prop_assert!((lhs - rhs).abs() <= 1e-6 * (1.0 + lhs.abs().max(rhs.abs())));
            }
        }
    }

    #[test]
    fn cholesky_reconstructs(m in (1..6usize).prop_flat_map(spd_matrix)) {
        let chol = Cholesky::new(&m).expect("SPD by construction");
        let l = chol.l();
        let llt = l.matmul(&l.transpose()).unwrap();
        prop_assert!(llt.approx_eq(&m, 1e-7 * (1.0 + m.max_abs())));
    }

    #[test]
    fn cholesky_solve_matches_lu(
        (m, b) in (1..6usize).prop_flat_map(|n| (spd_matrix(n), vector(n)))
    ) {
        let xc = Cholesky::new(&m).unwrap().solve(&b).unwrap();
        let xl = Lu::new(&m).unwrap().solve(&b).unwrap();
        let tol = 1e-6 * (1.0 + vecops::norm_inf(&xl));
        prop_assert!(vecops::approx_eq(&xc, &xl, tol));
    }

    #[test]
    fn spd_quadratic_form_positive(
        (m, x) in (1..6usize).prop_flat_map(|n| (spd_matrix(n), vector(n)))
    ) {
        // xᵀMx ≥ ‖x‖² because M = AᵀA + I.
        let q = m.quadratic_form(&x).unwrap();
        let nx = vecops::dot(&x, &x);
        prop_assert!(q >= nx - 1e-7 * (1.0 + q.abs()));
    }

    #[test]
    fn eigen_reconstructs_symmetric(m in (1..6usize).prop_flat_map(symmetric_matrix)) {
        let e = SymmetricEigen::new(&m).expect("symmetric by construction");
        let tol = 1e-7 * (1.0 + m.max_abs());
        prop_assert!(e.reconstruct().approx_eq(&m, tol));
    }

    #[test]
    fn eigenbasis_orthonormal(m in (1..6usize).prop_flat_map(symmetric_matrix)) {
        let e = SymmetricEigen::new(&m).unwrap();
        let v = e.vectors();
        let vtv = v.transpose().matmul(v).unwrap();
        prop_assert!(vtv.approx_eq(&Matrix::identity(m.rows()), 1e-8));
    }

    #[test]
    fn eigenvalues_sorted_and_sum_to_trace(m in (1..6usize).prop_flat_map(symmetric_matrix)) {
        let e = SymmetricEigen::new(&m).unwrap();
        for w in e.values().windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        let sum: f64 = e.values().iter().sum();
        prop_assert!((sum - m.trace()).abs() <= 1e-7 * (1.0 + m.trace().abs()));
    }

    #[test]
    fn spd_matrices_have_positive_spectrum(m in (1..6usize).prop_flat_map(spd_matrix)) {
        let e = SymmetricEigen::new(&m).unwrap();
        // M = AᵀA + I ⇒ every eigenvalue ≥ 1.
        prop_assert!(e.values().iter().all(|&v| v >= 1.0 - 1e-7));
    }

    #[test]
    fn qr_least_squares_residual_orthogonal(
        (a, b) in (2..5usize).prop_flat_map(|n| {
            (proptest::collection::vec(finite_entry(), (n + 3) * n), vector(n + 3))
                .prop_map(move |(data, b)| {
                    (Matrix::from_vec(n + 3, n, data).unwrap(), b)
                })
        })
    ) {
        if let Ok(x) = qr::lstsq(&a, &b) {
            // Residual must be orthogonal to every column of A.
            let ax = a.matvec(&x).unwrap();
            let r = vecops::sub(&b, &ax);
            let atr = a.matvec_transposed(&r).unwrap();
            let scale = 1.0 + a.max_abs() * vecops::norm_inf(&r);
            prop_assert!(vecops::norm_inf(&atr) <= 1e-6 * scale);
        }
    }

    #[test]
    fn rank1_update_matches_outer_product(x in vector(4), a in -3.0..3.0f64) {
        let mut m = Matrix::zeros(4, 4);
        m.rank1_update(a, &x).unwrap();
        let expected = Matrix::from_fn(4, 4, |r, c| a * x[r] * x[c]);
        prop_assert!(m.approx_eq(&expected, 1e-10));
    }

    #[test]
    fn svd_reconstructs_any_shape(
        (a, _) in ((1..6usize), (1..6usize)).prop_flat_map(|(r, c)| {
            (proptest::collection::vec(finite_entry(), r * c)
                .prop_map(move |d| Matrix::from_vec(r, c, d).unwrap()), Just(()))
        })
    ) {
        let svd = Svd::new(&a).expect("non-empty finite input");
        let tol = 1e-9 * (1.0 + a.max_abs());
        prop_assert!(svd.reconstruct().approx_eq(&a, tol));
    }

    #[test]
    fn svd_factors_orthonormal(m in (2..6usize).prop_flat_map(square_matrix)) {
        let svd = Svd::new(&m).unwrap();
        let n = m.cols();
        // V is always fully orthogonal; U's columns for nonzero σ are
        // orthonormal, so check UᵀU restricted to the numerical rank.
        let vtv = svd.v().transpose().matmul(svd.v()).unwrap();
        prop_assert!(vtv.approx_eq(&Matrix::identity(n), 1e-8));
        let utu = svd.u().transpose().matmul(svd.u()).unwrap();
        let r = svd.rank(None);
        for i in 0..r {
            for j in 0..r {
                let expect = if i == j { 1.0 } else { 0.0 };
                prop_assert!((utu[(i, j)] - expect).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn svd_values_sorted_nonnegative(m in (1..6usize).prop_flat_map(square_matrix)) {
        let svd = Svd::new(&m).unwrap();
        for w in svd.singular_values().windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        prop_assert!(svd.singular_values().iter().all(|&s| s >= 0.0));
        // σ_max bounds the operator norm witnessed on the standard basis.
        let smax = svd.singular_values()[0];
        for c in 0..m.cols() {
            prop_assert!(m.col(c).map(|v| v * v).sum::<f64>().sqrt() <= smax + 1e-8 * (1.0 + smax));
        }
    }

    #[test]
    fn svd_min_norm_residual_orthogonal_to_range(
        (a, b) in (2..5usize).prop_flat_map(|n| {
            (proptest::collection::vec(finite_entry(), (n + 2) * n), vector(n + 2))
                .prop_map(move |(data, b)| (Matrix::from_vec(n + 2, n, data).unwrap(), b))
        })
    ) {
        let x = Svd::new(&a).unwrap().solve_min_norm(&b).unwrap();
        let r = vecops::sub(&b, &a.matvec(&x).unwrap());
        let atr = a.matvec_transposed(&r).unwrap();
        let scale = 1.0 + a.max_abs() * vecops::norm_inf(&r);
        prop_assert!(vecops::norm_inf(&atr) <= 1e-6 * scale);
    }

    #[test]
    fn svd_pinv_idempotent_projector(m in (2..5usize).prop_flat_map(square_matrix)) {
        // P = A A⁺ must be an orthogonal projector: P² = P, Pᵀ = P.
        let pinv = Svd::new(&m).unwrap().pseudo_inverse();
        let p = m.matmul(&pinv).unwrap();
        let tol = 1e-6 * (1.0 + p.max_abs());
        prop_assert!(p.matmul(&p).unwrap().approx_eq(&p, tol));
        prop_assert!(p.approx_eq(&p.transpose(), tol));
    }

    #[test]
    fn svd_matches_eigen_on_spd(m in (1..6usize).prop_flat_map(spd_matrix)) {
        // For SPD input, singular values = eigenvalues.
        let svd = Svd::new(&m).unwrap();
        let eig = SymmetricEigen::new(&m).unwrap();
        let tol = 1e-7 * (1.0 + m.max_abs());
        prop_assert!(vecops::approx_eq(svd.singular_values(), eig.values(), tol));
    }

    #[test]
    fn tridiagonal_and_jacobi_eigensolvers_agree(
        m in (1..8usize).prop_flat_map(symmetric_matrix)
    ) {
        // The two engines must compute the same spectrum, and both bases
        // must reconstruct the input.
        let ql = TridiagonalEigen::new(&m).unwrap();
        let jac = SymmetricEigen::new(&m).unwrap();
        let tol = 1e-7 * (1.0 + m.max_abs());
        prop_assert!(vecops::approx_eq(ql.values(), jac.values(), tol));
        prop_assert!(ql.reconstruct().approx_eq(&m, tol));
        let v = ql.vectors();
        let vtv = v.transpose().matmul(v).unwrap();
        prop_assert!(vtv.approx_eq(&Matrix::identity(m.rows()), 1e-8));
    }
}
