//! `fm-serve-bench` — sustained multi-tenant serving throughput and
//! admission latency.
//!
//! Spins up a [`FitService`] over a fresh WAL, runs `tenants` concurrent
//! producer threads each submitting `fits` sequential linear-regression
//! fits of `rows × d` synthetic rows through the bounded block queue, and
//! measures:
//!
//! * **fits/sec** — settled releases per wall-clock second across all
//!   tenants (includes admission, WAL fsyncs, streaming, assembly, the
//!   mechanism, and commit);
//! * **admission latency p50/p99** — time spent in
//!   [`FitService::submit`], i.e. the refuse-before-scan CAS against the
//!   shared ε ledger plus the fsynced WAL `reserve`;
//! * **bit_identical** — one served release is compared against the
//!   equivalent direct `partial_fit` at the same seed (the service's
//!   core invariant; the run aborts on mismatch).
//!
//! ```text
//! cargo run --release -p fm-serve --bin fm-serve-bench
//! cargo run --release -p fm-serve --bin fm-serve-bench -- \
//!     --tenants 8 --fits 8 --rows 20000 --d 8 --out BENCH_serve.json
//! ```
//!
//! The record is appended to the `--out` JSON array (default
//! `BENCH_serve.json`), creating it when absent.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use fm_core::linreg::DpLinearRegression;
use fm_core::session::SharedPrivacySession;
use fm_data::stream::{InMemorySource, RowSource};
use fm_data::synth;
use fm_privacy::wal::CompactionPolicy;
use fm_serve::service::{FitOutcome, FitRequest, FitService, ServeConfig};

struct Args {
    tenants: usize,
    fits: usize,
    rows: usize,
    d: usize,
    queue_blocks: usize,
    block_rows: usize,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        tenants: 4,
        fits: 8,
        rows: 20_000,
        d: 8,
        queue_blocks: 4,
        block_rows: 1_024,
        out: "BENCH_serve.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--tenants" => args.tenants = parse(&value("--tenants")?)?,
            "--fits" => args.fits = parse(&value("--fits")?)?,
            "--rows" => args.rows = parse(&value("--rows")?)?,
            "--d" => args.d = parse(&value("--d")?)?,
            "--queue-blocks" => args.queue_blocks = parse(&value("--queue-blocks")?)?,
            "--block-rows" => args.block_rows = parse(&value("--block-rows")?)?,
            "--out" => args.out = value("--out")?,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.tenants == 0 || args.fits == 0 || args.rows == 0 || args.d == 0 {
        return Err("--tenants/--fits/--rows/--d must be positive".to_string());
    }
    Ok(args)
}

fn parse(s: &str) -> Result<usize, String> {
    s.parse::<usize>()
        .map_err(|e| format!("bad number {s}: {e}"))
}

/// Streams `data` through `sender` in `block_rows`-sized blocks.
fn feed(
    data: &fm_data::Dataset,
    block_rows: usize,
    sender: fm_data::queue::BlockSender,
) -> Result<(), String> {
    let mut source = InMemorySource::new(data);
    while let Some(block) = source.next_block(block_rows).map_err(|e| e.to_string())? {
        sender.send(block).map_err(|e| e.to_string())?;
    }
    sender.finish();
    Ok(())
}

fn percentile_us(sorted: &[Duration], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)].as_secs_f64() * 1e6
}

fn run(args: &Args) -> Result<String, String> {
    let wal = std::env::temp_dir().join(format!("fm_serve_bench_{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&wal);
    let (session, _) = SharedPrivacySession::with_wal(&wal, None).map_err(|e| e.to_string())?;
    let session = Arc::new(session);
    let service = Arc::new(FitService::new(
        Arc::clone(&session),
        ServeConfig::new()
            .workers(args.tenants)
            .queue_blocks(args.queue_blocks)
            .compaction(CompactionPolicy::default()),
    ));

    // Correctness gate first: a served fit must release the direct
    // partial_fit's exact bits at the same seed.
    let probe = {
        let mut r = StdRng::seed_from_u64(9_999);
        synth::linear_dataset(&mut r, args.rows.min(4_096), args.d, 0.1)
    };
    let est = DpLinearRegression::builder().epsilon(0.1).build();
    let (handle, sender) = service
        .submit(est, FitRequest::new("probe", "gate", args.d).seed(4242))
        .map_err(|e| e.to_string())?;
    feed(&probe, args.block_rows, sender)?;
    let served = match handle.wait().map_err(|e| e.to_string())? {
        FitOutcome::Released(model) => model,
        other => return Err(format!("probe fit did not release: {other:?}")),
    };
    let est = DpLinearRegression::builder().epsilon(0.1).build();
    let mut direct = est.partial_fit();
    direct
        .absorb(&mut InMemorySource::new(&probe))
        .map_err(|e| e.to_string())?;
    let mut rng = StdRng::seed_from_u64(4242);
    let reference = direct.finalize(&mut rng).map_err(|e| e.to_string())?;
    if served != reference {
        return Err("served release is not bit-identical to the direct fit".to_string());
    }

    // The measured phase: `tenants` concurrent producers, `fits` each.
    let started = Instant::now();
    let mut threads = Vec::new();
    for tenant in 0..args.tenants {
        let service = Arc::clone(&service);
        let (rows, d, fits, block_rows) = (args.rows, args.d, args.fits, args.block_rows);
        threads.push(std::thread::spawn(
            move || -> Result<Vec<Duration>, String> {
                let mut r = StdRng::seed_from_u64(1_000 + tenant as u64);
                let data = synth::linear_dataset(&mut r, rows, d, 0.1);
                let name = format!("tenant-{tenant}");
                let mut admissions = Vec::with_capacity(fits);
                for fit in 0..fits {
                    let est = DpLinearRegression::builder().epsilon(0.1).build();
                    let request = FitRequest::new(name.as_str(), format!("fit-{fit}"), d)
                        .seed((tenant * 1_000 + fit) as u64);
                    let t0 = Instant::now();
                    let (handle, sender) =
                        service.submit(est, request).map_err(|e| e.to_string())?;
                    admissions.push(t0.elapsed());
                    feed(&data, block_rows, sender)?;
                    match handle.wait().map_err(|e| e.to_string())? {
                        FitOutcome::Released(_) => {}
                        other => return Err(format!("fit did not release: {other:?}")),
                    }
                }
                Ok(admissions)
            },
        ));
    }
    let mut admissions = Vec::new();
    for thread in threads {
        admissions.extend(thread.join().map_err(|_| "tenant thread panicked")??);
    }
    let wall = started.elapsed().as_secs_f64();
    let total_fits = args.tenants * args.fits;
    admissions.sort();

    let stats = session.wal_stats().ok_or("session lost its WAL")?;
    let service = Arc::into_inner(service).ok_or("service still referenced")?;
    service.shutdown();
    let _ = std::fs::remove_file(&wal);

    let fits_per_sec = total_fits as f64 / wall;
    let p50 = percentile_us(&admissions, 0.50);
    let p99 = percentile_us(&admissions, 0.99);
    eprintln!(
        "{total_fits} fits ({} tenants x {}) in {wall:.2}s -> {fits_per_sec:.2} fits/sec; \
         admission p50 {p50:.0}us p99 {p99:.0}us; wal bytes {} after compaction",
        args.tenants, args.fits, stats.file_bytes,
    );
    Ok(format!(
        "{{\n  \"run\": \"pr7-serve\",\n  \"note\": \"multi-tenant FitService over a fresh WAL: \
         concurrent submit (CAS admission + fsynced reserve) -> bounded block queue -> \
         partial_fit on the 4096-row grid -> commit (+ compaction); admission latency is the \
         submit() call alone, fits/sec counts settled releases end-to-end; probe release \
         checked bit-identical to the direct partial_fit before measuring\",\n  \
         \"tenants\": {},\n  \"fits_per_tenant\": {},\n  \"rows\": {},\n  \"d\": {},\n  \
         \"queue_blocks\": {},\n  \"producer_block_rows\": {},\n  \"workers\": {},\n  \
         \"parallel_feature\": {},\n  \"results\": {{\"fits_per_sec\": {fits_per_sec:.2}, \
         \"admission_p50_us\": {p50:.1}, \"admission_p99_us\": {p99:.1}, \
         \"wal_bytes_after\": {}, \"bit_identical\": true}}\n}}",
        args.tenants,
        args.fits,
        args.rows,
        args.d,
        args.queue_blocks,
        args.block_rows,
        args.tenants,
        cfg!(feature = "parallel"),
        stats.file_bytes,
    ))
}

/// Appends `record` to the JSON array at `path`, creating it when absent.
fn append_record(path: &str, record: &str) -> Result<(), String> {
    let indented = record
        .lines()
        .map(|l| format!("  {l}"))
        .collect::<Vec<_>>()
        .join("\n");
    let body = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            let Some(head) = trimmed.strip_suffix(']') else {
                return Err(format!("{path} is not a JSON array"));
            };
            let head = head.trim_end().trim_end_matches(',');
            let sep = if head.ends_with('[') { "" } else { "," };
            format!("{head}{sep}\n{indented}\n]\n")
        }
        Err(_) => format!("[\n{indented}\n]\n"),
    };
    std::fs::write(path, body).map_err(|e| format!("cannot write {path}: {e}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("fm-serve-bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args).and_then(|record| append_record(&args.out, &record)) {
        Ok(()) => {
            eprintln!("appended run record to {}", args.out);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fm-serve-bench: {e}");
            ExitCode::FAILURE
        }
    }
}
