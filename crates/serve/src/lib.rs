//! `fm-serve` — a multi-tenant fitting service over the WAL-backed
//! privacy ledger.
//!
//! Everything below the service already exists in the workspace; this
//! crate is the long-lived process that wires it together:
//!
//! * **Admission** — [`service::FitService::submit`] reserves the fit's
//!   (ε, δ) against the process-wide
//!   [`fm_core::session::SharedPrivacySession`] *before* a single row
//!   moves (the paper's refuse-before-scan discipline, Section 3's
//!   budget precondition for Algorithm 1), with the reservation fsynced
//!   to the `fm-wal v1` log so a crash can never under-report spending.
//! * **Bounded ingestion** — each admitted fit gets a
//!   [`fm_data::queue::BlockSender`]/queue pair of configurable depth;
//!   the tenant streams [`fm_data::stream::RowBlock`]s and the worker
//!   drives them into `partial_fit` on the workspace's fixed 4096-row
//!   chunk grid. A full queue blocks (or, via
//!   [`fm_data::queue::BlockSender::try_send`], rejects) the producer —
//!   service memory stays bounded no matter how fast tenants push.
//! * **Graceful shutdown** — [`service::FitService::shutdown`] lets
//!   fully-fed fits finish and checkpoints the rest to `fm-checkpoint
//!   v1` snapshots, detaching their WAL reservations (still spent, never
//!   re-debited). [`service::FitService::resume`] — on the same process
//!   or a restart over the same log — finishes them **bit-identical** to
//!   the uninterrupted fit.
//! * **Log hygiene** — an optional
//!   [`fm_privacy::wal::CompactionPolicy`] lets workers compact the WAL
//!   after commits, and the session refuses to compact while any
//!   checkpointed reservation is dangling.
//!
//! The service invariant worth stating once, loudly: **queue depth,
//! producer block sizes, worker count, and shutdown timing never change
//! released coefficients.** A fit served here is bit-identical to the
//! equivalent direct `fit_stream` at the same seed, because the
//! accumulator re-chunks every transport onto the same grid and the
//! release consumes the RNG identically.
//!
//! ```no_run
//! use std::sync::Arc;
//! use fm_core::linreg::{DpLinearRegression, LinearObjective};
//! use fm_core::session::SharedPrivacySession;
//! use fm_data::stream::RowBlock;
//! use fm_serve::service::{FitOutcome, FitRequest, FitService, ServeConfig};
//!
//! let (session, _report) = SharedPrivacySession::with_wal("eps.wal", Some(1.0))?;
//! let service = FitService::new(Arc::new(session), ServeConfig::new());
//! let est = DpLinearRegression::builder().epsilon(0.5).build();
//! let (handle, sender) = service.submit(est, FitRequest::new("acme", "census", 2).seed(7))?;
//! sender.send(RowBlock::new(vec![0.1, 0.2, 0.3, 0.4], vec![1.0, 0.0], 2)?)?;
//! sender.finish();
//! if let FitOutcome::Released(model) = handle.wait()? {
//!     println!("{:?}", model);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod service;

pub use service::{
    FitOutcome, FitRequest, FitService, JobHandle, ServeConfig, ServeError, SuspendedFit,
};
