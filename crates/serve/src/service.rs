//! The fitting service: admission, worker pool, bounded block queues,
//! graceful checkpointing shutdown, and background WAL compaction.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;

use fm_core::estimator::{DpEstimator, FmEstimator, PartialFit, RegressionObjective};
use fm_core::session::{OwnedFitPermit, SharedPrivacySession};
use fm_core::FmError;
use fm_data::queue::{block_channel, BlockPoll, BlockSender, QueueSource};
use fm_privacy::wal::CompactionPolicy;

/// Result alias for service operations.
pub type Result<T> = std::result::Result<T, ServeError>;

/// Errors a service call can surface.
#[derive(Debug)]
pub enum ServeError {
    /// An error from the fitting pipeline or the privacy session —
    /// admission refusals ([`fm_privacy::PrivacyError::BudgetExhausted`]
    /// inside) arrive here *before* any data is scanned.
    Fm(FmError),
    /// The service has been shut down and accepts no new work. A fresh
    /// submission's reservation is aborted (refunded); a resumption's
    /// reservation is re-detached and stays resumable.
    Stopped,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Fm(e) => write!(f, "{e}"),
            ServeError::Stopped => write!(f, "service stopped: no new fits accepted"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Fm(e) => Some(e),
            ServeError::Stopped => None,
        }
    }
}

impl From<FmError> for ServeError {
    fn from(e: FmError) -> Self {
        ServeError::Fm(e)
    }
}

/// Service tuning knobs. The defaults favour correctness and the
/// bit-identity regime; only [`ServeConfig::chunk_rows`] can change
/// released coefficients (by regrouping floating-point sums), and its
/// default is exactly the grid every direct `fit_stream` uses.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    workers: usize,
    queue_blocks: usize,
    chunk_rows: usize,
    poll: Duration,
    compaction: Option<CompactionPolicy>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_blocks: 4,
            chunk_rows: fm_core::assembly::DEFAULT_CHUNK_ROWS,
            poll: Duration::from_millis(25),
            compaction: None,
        }
    }
}

impl ServeConfig {
    /// A config with the defaults: 2 workers, 4-block queues, the
    /// workspace-wide 4096-row chunk grid, no compaction.
    #[must_use]
    pub fn new() -> Self {
        ServeConfig::default()
    }

    /// Number of worker threads, i.e. the number of fits that make
    /// progress concurrently (min 1). Submissions beyond this wait in the
    /// job queue; their producers block once the bounded block queue
    /// fills.
    #[must_use]
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Depth of each job's bounded [`RowBlock`](fm_data::stream::RowBlock)
    /// queue, in blocks (min 1). This is the service's only buffering:
    /// with the queue full, [`BlockSender::send`] blocks and
    /// [`BlockSender::try_send`] rejects — memory stays bounded no matter
    /// how fast tenants produce.
    #[must_use]
    pub fn queue_blocks(mut self, n: usize) -> Self {
        self.queue_blocks = n.max(1);
        self
    }

    /// Accumulation chunk size (min 1). **Affects released bits**: a
    /// service fit is bit-identical to a direct
    /// `partial_fit().chunk_rows(n)` fit at the *same* `n` over the same
    /// rows and seed. The default is
    /// [`fm_core::assembly::DEFAULT_CHUNK_ROWS`], the grid `fit_stream`
    /// itself uses, so leave it alone to match direct fits.
    #[must_use]
    pub fn chunk_rows(mut self, n: usize) -> Self {
        self.chunk_rows = n.max(1);
        self
    }

    /// How long a worker waits on an empty queue before re-checking the
    /// stop flag. Bounds shutdown latency; no effect on results.
    #[must_use]
    pub fn poll(mut self, interval: Duration) -> Self {
        self.poll = interval;
        self
    }

    /// Enables background WAL compaction: after every committed release
    /// the worker offers [`SharedPrivacySession::maybe_compact_wal`] this
    /// policy. Compaction never runs while any reservation is dangling
    /// (checkpoint-detached or crash-recovered), and a compaction I/O
    /// failure is swallowed — the log stays valid and the next commit
    /// retries.
    #[must_use]
    pub fn compaction(mut self, policy: CompactionPolicy) -> Self {
        self.compaction = Some(policy);
        self
    }
}

/// One tenant's fit job: who is asking, what the ledger line should say,
/// the input dimensionality, and the release seed.
#[derive(Debug, Clone)]
pub struct FitRequest {
    tenant: String,
    label: String,
    d: usize,
    seed: u64,
}

impl FitRequest {
    /// A request for `tenant`, recorded under `label` in the WAL, whose
    /// producer will send `d`-dimensional rows. The privacy cost is not
    /// part of the request: it is read off the estimator's advertised
    /// (ε, δ) at submission, so a request can never under-state the cost
    /// of the fit it rides with.
    #[must_use]
    pub fn new(tenant: impl Into<String>, label: impl Into<String>, d: usize) -> Self {
        FitRequest {
            tenant: tenant.into(),
            label: label.into(),
            d,
            seed: 0,
        }
    }

    /// Seeds the release RNG. Fixing the seed pins the released
    /// coefficients bit-for-bit to the equivalent direct fit.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The tenant name.
    #[must_use]
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// The ledger label.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The raw input dimensionality (before any intercept augmentation).
    #[must_use]
    pub fn d(&self) -> usize {
        self.d
    }
}

/// A fit interrupted by a graceful shutdown: everything needed to finish
/// it later without re-scanning absorbed rows or re-debiting ε.
#[derive(Debug, Clone)]
pub struct SuspendedFit {
    /// The tenant that submitted the fit.
    pub tenant: String,
    /// The ledger label it runs under.
    pub label: String,
    /// `fm-checkpoint v1` snapshot of the accumulation state (embeds the
    /// reservation id).
    pub snapshot: String,
    /// The WAL reservation left open — ε already debited, never debited
    /// again on resume.
    pub reservation: u64,
    /// Rows absorbed before suspension; the producer resumes feeding from
    /// this offset.
    pub rows: usize,
    /// The raw input dimensionality.
    pub d: usize,
}

/// What became of a submitted fit.
#[derive(Debug)]
pub enum FitOutcome<M> {
    /// The fit ran to completion; ε is committed in the ledger.
    Released(M),
    /// A graceful shutdown checkpointed the fit mid-stream. ε stays
    /// debited (the scanned rows are real); hand the [`SuspendedFit`] to
    /// [`FitService::resume`] on a service over the same WAL.
    Suspended(SuspendedFit),
    /// Shut down before any row arrived: the reservation was aborted and
    /// the ε refunded.
    Cancelled,
}

/// The consumer side of a submitted fit: blocks until the worker settles
/// the job.
#[derive(Debug)]
pub struct JobHandle<M> {
    tenant: String,
    label: String,
    rx: mpsc::Receiver<Result<FitOutcome<M>>>,
}

impl<M> JobHandle<M> {
    /// The tenant this handle belongs to.
    #[must_use]
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// The ledger label of the fit.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Blocks until the fit settles.
    ///
    /// # Errors
    /// [`ServeError::Fm`] when the pipeline failed (the reservation was
    /// settled fail-closed: committed if any row was scanned, aborted
    /// otherwise); [`ServeError::Stopped`] when the worker vanished
    /// without reporting (process-level failure).
    pub fn wait(self) -> Result<FitOutcome<M>> {
        match self.rx.recv() {
            Ok(outcome) => outcome,
            Err(_) => Err(ServeError::Stopped),
        }
    }
}

/// Everything a worker needs besides the estimator, permit and queue.
struct JobCtx {
    session: Arc<SharedPrivacySession>,
    stop: Arc<AtomicBool>,
    suspended: Arc<Mutex<Vec<SuspendedFit>>>,
    compaction: Option<CompactionPolicy>,
    poll: Duration,
    chunk_rows: usize,
    tenant: String,
    label: String,
    d: usize,
    seed: u64,
}

type Job = Box<dyn FnOnce() + Send>;

/// A multi-tenant fitting service over a [`SharedPrivacySession`].
///
/// Lifecycle of one job: [`FitService::submit`] admits the request
/// against the shared ε ledger **before** any data moves (refuse happens
/// here, cheaply), hands back a [`BlockSender`] for the tenant to feed
/// and a [`JobHandle`] to collect the outcome; a pool worker drives the
/// bounded queue into `partial_fit` on the fixed chunk grid and settles
/// the reservation exactly once — commit on release or on any
/// failure-after-scan, abort only when no row was ever seen.
///
/// [`FitService::shutdown`] checkpoints in-flight fits (outcome
/// [`FitOutcome::Suspended`]) instead of discarding them;
/// [`FitService::resume`] re-attaches a suspended fit — on this service
/// or a restarted one over the same WAL — without re-debiting ε. A
/// service fit releases coefficients **bit-identical** to the equivalent
/// direct `fit_stream` at the same seed, regardless of producer block
/// sizes, queue depth, or worker timing.
pub struct FitService {
    session: Arc<SharedPrivacySession>,
    cfg: ServeConfig,
    stop: Arc<AtomicBool>,
    suspended: Arc<Mutex<Vec<SuspendedFit>>>,
    jobs: Mutex<Option<mpsc::Sender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl FitService {
    /// Starts the worker pool over `session`.
    #[must_use]
    pub fn new(session: Arc<SharedPrivacySession>, cfg: ServeConfig) -> Self {
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..cfg.workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || loop {
                    let job = rx.lock().unwrap_or_else(PoisonError::into_inner).recv();
                    match job {
                        Ok(job) => job(),
                        Err(_) => break,
                    }
                })
            })
            .collect();
        FitService {
            session,
            cfg,
            stop: Arc::new(AtomicBool::new(false)),
            suspended: Arc::new(Mutex::new(Vec::new())),
            jobs: Mutex::new(Some(tx)),
            workers: Mutex::new(workers),
        }
    }

    /// The shared session every fit debits against.
    #[must_use]
    pub fn session(&self) -> &Arc<SharedPrivacySession> {
        &self.session
    }

    /// Schedules an arbitrary closure on the service's worker pool — the
    /// hook that lets a long-running orchestration (e.g. an
    /// `fm-federated` coordinator collecting client uploads) run *inside*
    /// the service, sharing its threads, lifecycle, and
    /// [`SharedPrivacySession`] instead of spawning a thread of its own.
    /// The job runs to completion even if `shutdown` is called after it
    /// was queued; jobs queued after shutdown are refused.
    ///
    /// The closure gets no implicit session access — capture a clone of
    /// [`FitService::session`] if it needs to debit budgets, so every
    /// privacy-relevant admission still flows through the session's own
    /// accounting.
    ///
    /// # Errors
    /// [`ServeError::Stopped`] after shutdown, or when every worker died.
    pub fn spawn_job(&self, job: impl FnOnce() + Send + 'static) -> Result<()> {
        let jobs = self.jobs.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(jobs) = jobs.as_ref() else {
            return Err(ServeError::Stopped);
        };
        if jobs.send(Box::new(job)).is_err() {
            return Err(ServeError::Stopped);
        }
        Ok(())
    }

    /// Admits and schedules a fresh fit. The (ε, δ) admission — CAS
    /// against the shared cap plus the WAL `reserve` fsync — happens
    /// *here*, before a single row moves: an over-budget tenant is
    /// refused without scanning anything. A session built with
    /// [`SharedPrivacySession::admit_by_rdp`] admits against the
    /// moments-accountant (RDP-converted) ε instead of the naive Σε,
    /// which sustains far more small releases under the same cap.
    ///
    /// Returns the handle to wait on and the bounded sender the tenant
    /// feeds; drop or [`BlockSender::finish`] the sender to mark
    /// end-of-stream.
    ///
    /// # Errors
    /// [`ServeError::Fm`] when admission refuses (budget, validation,
    /// WAL I/O); [`ServeError::Stopped`] after shutdown (the fresh
    /// reservation is aborted and refunded).
    pub fn submit<O>(
        &self,
        estimator: FmEstimator<O>,
        request: FitRequest,
    ) -> Result<(JobHandle<O::Model>, BlockSender)>
    where
        O: RegressionObjective + Send + 'static,
        O::Model: Send + 'static,
    {
        let epsilon = DpEstimator::epsilon(&estimator).unwrap_or(0.0);
        let delta = DpEstimator::delta(&estimator).unwrap_or(0.0);
        let permit = self
            .session
            .begin_owned(&request.tenant, &request.label, epsilon, delta)?;
        self.enqueue(estimator, request, None, permit)
    }

    /// Re-admits a fit suspended by a checkpointing shutdown — on this
    /// service or a restarted one over the same WAL. The open reservation
    /// is re-attached, **never re-debited**; the producer feeds rows from
    /// `suspended.rows` onward and the final release is bit-identical to
    /// the uninterrupted fit at the same `seed`.
    ///
    /// # Errors
    /// [`ServeError::Fm`] when the reservation is unknown/already settled
    /// or the snapshot fails validation; [`ServeError::Stopped`] after
    /// shutdown (the reservation is re-detached and stays resumable).
    pub fn resume<O>(
        &self,
        estimator: FmEstimator<O>,
        suspended: SuspendedFit,
        seed: u64,
    ) -> Result<(JobHandle<O::Model>, BlockSender)>
    where
        O: RegressionObjective + Send + 'static,
        O::Model: Send + 'static,
    {
        let permit = self
            .session
            .resume_reservation_owned(suspended.reservation)?;
        let request = FitRequest::new(suspended.tenant, suspended.label, suspended.d).seed(seed);
        self.enqueue(estimator, request, Some(suspended.snapshot), permit)
    }

    /// Fits suspended so far (checkpointing shutdowns record here as well
    /// as in each job's outcome, for callers that dropped their handles).
    #[must_use]
    pub fn suspended(&self) -> Vec<SuspendedFit> {
        self.suspended
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Graceful shutdown: stops accepting work, lets every in-flight fit
    /// either finish (producer already done) or checkpoint + detach its
    /// reservation, joins the pool, and returns the suspended fits for
    /// the restarting process to [`FitService::resume`].
    pub fn shutdown(self) -> Vec<SuspendedFit> {
        self.halt();
        std::mem::take(
            &mut *self
                .suspended
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        )
    }

    /// Idempotent stop + join, shared by [`FitService::shutdown`] and
    /// `Drop`.
    fn halt(&self) {
        self.stop.store(true, Ordering::Release);
        *self.jobs.lock().unwrap_or_else(PoisonError::into_inner) = None;
        let workers =
            std::mem::take(&mut *self.workers.lock().unwrap_or_else(PoisonError::into_inner));
        for worker in workers {
            let _ = worker.join();
        }
    }

    fn enqueue<O>(
        &self,
        estimator: FmEstimator<O>,
        request: FitRequest,
        snapshot: Option<String>,
        permit: OwnedFitPermit,
    ) -> Result<(JobHandle<O::Model>, BlockSender)>
    where
        O: RegressionObjective + Send + 'static,
        O::Model: Send + 'static,
    {
        let jobs = self.jobs.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(jobs) = jobs.as_ref() else {
            // Refuse without scanning: a fresh reservation is refunded, a
            // resumed one goes back to dangling-resumable.
            if snapshot.is_some() {
                let _ = permit.detach();
            } else {
                let _ = permit.abort();
            }
            return Err(ServeError::Stopped);
        };
        let (sender, queue) = block_channel(request.d, self.cfg.queue_blocks)
            .map_err(|e| ServeError::Fm(FmError::Data(e)))?;
        let (tx, rx) = mpsc::channel();
        let ctx = JobCtx {
            session: Arc::clone(&self.session),
            stop: Arc::clone(&self.stop),
            suspended: Arc::clone(&self.suspended),
            compaction: self.cfg.compaction,
            poll: self.cfg.poll,
            chunk_rows: self.cfg.chunk_rows,
            tenant: request.tenant.clone(),
            label: request.label.clone(),
            d: request.d,
            seed: request.seed,
        };
        let job: Job = Box::new(move || {
            let outcome = drive(&estimator, snapshot, permit, queue, &ctx);
            let _ = tx.send(outcome);
        });
        if jobs.send(job).is_err() {
            // All workers died (sender alive ⇒ only possible via panics).
            // The returned job was dropped with the permit, which settled
            // fail-closed in its Drop.
            return Err(ServeError::Stopped);
        }
        Ok((
            JobHandle {
                tenant: request.tenant,
                label: request.label,
                rx,
            },
            sender,
        ))
    }
}

impl Drop for FitService {
    fn drop(&mut self) {
        self.halt();
    }
}

/// The worker loop for one fit: pump the bounded queue into the
/// accumulator, then settle the reservation exactly once.
fn drive<O>(
    estimator: &FmEstimator<O>,
    snapshot: Option<String>,
    permit: OwnedFitPermit,
    mut queue: QueueSource,
    ctx: &JobCtx,
) -> Result<FitOutcome<O::Model>>
where
    O: RegressionObjective,
{
    let mut partial = match &snapshot {
        None => estimator
            .partial_fit()
            .chunk_rows(ctx.chunk_rows)
            .with_reservation(permit.id()),
        Some(snapshot) => match estimator.resume_partial_fit(snapshot) {
            Ok(partial) if partial.reservation() == Some(permit.id()) => partial,
            Ok(_) => {
                // Mispaired snapshot/reservation: touch neither.
                let _ = permit.detach();
                return Err(ServeError::Fm(FmError::InvalidConfig {
                    name: "snapshot",
                    reason: "checkpoint does not embed the resumed reservation id".to_string(),
                }));
            }
            Err(e) => {
                // Unreadable snapshot: this run scanned nothing, so the
                // reservation stays open for a corrected resume.
                let _ = permit.detach();
                return Err(ServeError::Fm(e));
            }
        },
    };
    loop {
        if ctx.stop.load(Ordering::Acquire) {
            // Graceful path: absorb whatever the producer already queued…
            loop {
                match queue.poll_block(ctx.chunk_rows, Duration::ZERO) {
                    Ok(BlockPoll::Block(block)) => {
                        if let Err(e) = partial.push_block(&block) {
                            return settle_error(partial.rows(), permit, e);
                        }
                    }
                    // …then either the stream is complete (finish the
                    // release) or the producer is still live (checkpoint).
                    Ok(BlockPoll::Finished) => return finish(partial, permit, ctx),
                    Ok(BlockPoll::Pending) => {
                        queue.close();
                        return suspend_or_cancel(&partial, permit, ctx);
                    }
                    Err(e) => return settle_error(partial.rows(), permit, FmError::Data(e)),
                }
            }
        }
        match queue.poll_block(ctx.chunk_rows, ctx.poll) {
            Ok(BlockPoll::Block(block)) => {
                if let Err(e) = partial.push_block(&block) {
                    return settle_error(partial.rows(), permit, e);
                }
            }
            Ok(BlockPoll::Pending) => {}
            Ok(BlockPoll::Finished) => return finish(partial, permit, ctx),
            Err(e) => return settle_error(partial.rows(), permit, FmError::Data(e)),
        }
    }
}

/// End-of-stream: release, commit, and offer the WAL a compaction.
fn finish<O>(
    partial: PartialFit<'_, O>,
    permit: OwnedFitPermit,
    ctx: &JobCtx,
) -> Result<FitOutcome<O::Model>>
where
    O: RegressionObjective,
{
    let rows = partial.rows();
    if rows == 0 {
        // The producer finished without sending a row: nothing was
        // scanned, so the reservation is refundable.
        permit.abort()?;
        return Ok(FitOutcome::Cancelled);
    }
    let mut rng = StdRng::seed_from_u64(ctx.seed);
    match partial.finalize(&mut rng) {
        Ok(model) => {
            permit.commit()?;
            if let Some(policy) = &ctx.compaction {
                // Best-effort: a failed compaction leaves the log valid
                // (tmp-file swap) and the next commit retries.
                let _ = ctx.session.maybe_compact_wal(policy);
            }
            Ok(FitOutcome::Released(model))
        }
        Err(e) => settle_error(rows, permit, e),
    }
}

/// Checkpointing shutdown for a fit whose producer is still live.
fn suspend_or_cancel<O>(
    partial: &PartialFit<'_, O>,
    permit: OwnedFitPermit,
    ctx: &JobCtx,
) -> Result<FitOutcome<O::Model>>
where
    O: RegressionObjective,
{
    let rows = partial.rows();
    if rows == 0 {
        permit.abort()?;
        return Ok(FitOutcome::Cancelled);
    }
    let snapshot = match partial.checkpoint() {
        Ok(snapshot) => snapshot,
        Err(e) => return settle_error(rows, permit, e),
    };
    let reservation = permit.detach();
    let suspended = SuspendedFit {
        tenant: ctx.tenant.clone(),
        label: ctx.label.clone(),
        snapshot,
        reservation,
        rows,
        d: ctx.d,
    };
    ctx.suspended
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push(suspended.clone());
    Ok(FitOutcome::Suspended(suspended))
}

/// Settles the reservation fail-closed on a pipeline error: committed
/// once any row was scanned, aborted (refunded) otherwise.
fn settle_error<T>(rows: usize, permit: OwnedFitPermit, error: FmError) -> Result<T> {
    let _ = if rows == 0 {
        permit.abort()
    } else {
        permit.commit()
    };
    Err(ServeError::Fm(error))
}
