//! The paper's preprocessing (footnote 1 and Definitions 1–2).
//!
//! *Features:* each attribute `X_j` with domain `[α_j, β_j]` is mapped by
//! `x_ij ← (x_ij − α_j) / ((β_j − α_j)·√d)`, which puts every coordinate in
//! `[0, 1/√d]` and therefore guarantees `‖x_i‖₂ ≤ 1` — the assumption all
//! of the paper's sensitivity bounds (`Δ = 2(d+1)²`, `Δ = d²/4 + 3d`) rest
//! on.
//!
//! *Labels:* linear regression assumes `Y ∈ [−1, 1]` (Definition 1), so the
//! label domain `[α_y, β_y]` is mapped affinely onto `[−1, 1]`; predictions
//! can be mapped back for reporting in original units. Logistic regression
//! assumes `Y ∈ {0, 1}` (Definition 2); Section 7 derives the label by
//! thresholding Annual Income, which [`Normalizer::binarize_labels`]
//! reproduces.
//!
//! Bounds come from the [`Schema`] (the declared attribute domains), *not*
//! from the data: a data-dependent map would itself leak information and
//! break the ε-DP guarantee of downstream mechanisms.

use fm_linalg::Matrix;

use crate::dataset::Dataset;
use crate::schema::Schema;
use crate::{DataError, Result};

/// A fitted feature/label normalizer.
#[derive(Debug, Clone)]
pub struct Normalizer {
    /// Per-feature `(α_j, β_j)` domain bounds.
    feature_bounds: Vec<(f64, f64)>,
    /// Label domain `(α_y, β_y)` for the linear-regression map.
    label_bounds: (f64, f64),
}

impl Normalizer {
    /// Builds a normalizer from a schema: every attribute except `label` is
    /// treated as a feature (in schema order), `label` supplies the label
    /// bounds.
    ///
    /// # Errors
    /// * [`DataError::UnknownAttribute`] if `label` is absent.
    /// * [`DataError::InvalidParameter`] for degenerate domains
    ///   (`β_j ≤ α_j`).
    pub fn from_schema(schema: &Schema, label: &str) -> Result<Self> {
        let label_attr = schema.attribute(label)?;
        let label_bounds = label_attr.kind.bounds();
        let mut feature_bounds = Vec::with_capacity(schema.len().saturating_sub(1));
        for attr in schema.attributes() {
            if attr.name == label {
                continue;
            }
            let (lo, hi) = attr.kind.bounds();
            if hi <= lo {
                return Err(DataError::InvalidParameter {
                    name: "schema",
                    reason: format!("degenerate domain for `{}`: [{lo}, {hi}]", attr.name),
                });
            }
            feature_bounds.push((lo, hi));
        }
        if label_bounds.1 <= label_bounds.0 {
            return Err(DataError::InvalidParameter {
                name: "schema",
                reason: format!(
                    "degenerate label domain [{}, {}]",
                    label_bounds.0, label_bounds.1
                ),
            });
        }
        Ok(Normalizer {
            feature_bounds,
            label_bounds,
        })
    }

    /// Builds a normalizer with explicit per-feature and label bounds.
    ///
    /// # Errors
    /// [`DataError::InvalidParameter`] for degenerate bounds.
    pub fn from_bounds(feature_bounds: Vec<(f64, f64)>, label_bounds: (f64, f64)) -> Result<Self> {
        if feature_bounds.iter().any(|&(lo, hi)| hi <= lo) || label_bounds.1 <= label_bounds.0 {
            return Err(DataError::InvalidParameter {
                name: "bounds",
                reason: "every domain must satisfy max > min".to_string(),
            });
        }
        Ok(Normalizer {
            feature_bounds,
            label_bounds,
        })
    }

    /// Number of features `d` this normalizer expects.
    #[must_use]
    pub fn d(&self) -> usize {
        self.feature_bounds.len()
    }

    /// Applies the footnote-1 feature map and the `[−1, 1]` label map,
    /// producing a dataset satisfying Definition 1's contract. Values are
    /// clamped to their declared domains first, so a stray out-of-domain
    /// record cannot break the sensitivity analysis.
    ///
    /// # Errors
    /// [`DataError::InvalidParameter`] when `raw.d()` differs from the
    /// normalizer's feature count.
    pub fn normalize_linear(&self, raw: &Dataset) -> Result<Dataset> {
        let x = self.normalize_features(raw)?;
        let (lo, hi) = self.label_bounds;
        let y = raw
            .y()
            .iter()
            .map(|&v| {
                let clamped = v.clamp(lo, hi);
                2.0 * (clamped - lo) / (hi - lo) - 1.0
            })
            .collect();
        Dataset::with_names(x, y, raw.feature_names().to_vec())
    }

    /// Applies the feature map and thresholds labels into `{0, 1}` at
    /// `threshold` (in raw label units), producing Definition 2's contract.
    ///
    /// # Errors
    /// [`DataError::InvalidParameter`] on feature-count mismatch.
    pub fn normalize_logistic(&self, raw: &Dataset, threshold: f64) -> Result<Dataset> {
        let x = self.normalize_features(raw)?;
        let y = raw
            .y()
            .iter()
            .map(|&v| if v > threshold { 1.0 } else { 0.0 })
            .collect();
        Dataset::with_names(x, y, raw.feature_names().to_vec())
    }

    /// Binarizes a raw label vector at `threshold` without touching features.
    #[must_use]
    pub fn binarize_labels(y: &[f64], threshold: f64) -> Vec<f64> {
        y.iter()
            .map(|&v| if v > threshold { 1.0 } else { 0.0 })
            .collect()
    }

    /// Maps a normalized label prediction back to raw units (inverse of the
    /// linear-regression label map).
    #[must_use]
    pub fn denormalize_label(&self, y_norm: f64) -> f64 {
        let (lo, hi) = self.label_bounds;
        (y_norm + 1.0) / 2.0 * (hi - lo) + lo
    }

    /// Maps a raw label into the normalized `[−1, 1]` scale.
    #[must_use]
    pub fn normalize_label(&self, y_raw: f64) -> f64 {
        let (lo, hi) = self.label_bounds;
        2.0 * (y_raw.clamp(lo, hi) - lo) / (hi - lo) - 1.0
    }

    /// Applies the footnote-1 feature map to a single raw row, appending
    /// the `d` normalized coordinates to `out` — the per-row form streaming
    /// ingestion uses so a CSV never has to be materialized before
    /// normalization. Values are clamped to their declared domains first,
    /// exactly as [`Normalizer::normalize_linear`] does; the arithmetic is
    /// identical operation for operation, so a streamed row is
    /// **bit-identical** to the same row of the matrix path.
    ///
    /// # Errors
    /// [`DataError::InvalidParameter`] when `raw.len()` differs from the
    /// normalizer's feature count.
    pub fn normalize_features_row(&self, raw: &[f64], out: &mut Vec<f64>) -> Result<()> {
        let d = self.d();
        if raw.len() != d {
            return Err(DataError::InvalidParameter {
                name: "row",
                reason: format!("row has {} features, normalizer expects {d}", raw.len()),
            });
        }
        let sqrt_d = (d as f64).sqrt();
        out.reserve(d);
        for (&v, &(lo, hi)) in raw.iter().zip(&self.feature_bounds) {
            out.push((v.clamp(lo, hi) - lo) / ((hi - lo) * sqrt_d));
        }
        Ok(())
    }

    fn normalize_features(&self, raw: &Dataset) -> Result<Matrix> {
        let d = self.d();
        if raw.d() != d {
            return Err(DataError::InvalidParameter {
                name: "dataset",
                reason: format!("dataset has {} features, normalizer expects {d}", raw.d()),
            });
        }
        let sqrt_d = (d as f64).sqrt();
        Ok(Matrix::from_fn(raw.n(), d, |r, c| {
            let (lo, hi) = self.feature_bounds[c];
            let v = raw.x()[(r, c)].clamp(lo, hi);
            (v - lo) / ((hi - lo) * sqrt_d)
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttributeKind;

    fn schema() -> Schema {
        Schema::new()
            .with("age", AttributeKind::Integer { min: 0, max: 100 })
            .with("hours", AttributeKind::Integer { min: 0, max: 50 })
            .with(
                "income",
                AttributeKind::Continuous {
                    min: 0.0,
                    max: 1000.0,
                },
            )
    }

    fn raw() -> Dataset {
        let x = Matrix::from_rows(&[&[50.0, 25.0], &[100.0, 0.0], &[0.0, 50.0]]).unwrap();
        Dataset::with_names(
            x,
            vec![500.0, 1000.0, 0.0],
            vec!["age".into(), "hours".into()],
        )
        .unwrap()
    }

    #[test]
    fn from_schema_excludes_label() {
        let n = Normalizer::from_schema(&schema(), "income").unwrap();
        assert_eq!(n.d(), 2);
    }

    #[test]
    fn from_schema_unknown_label() {
        assert!(Normalizer::from_schema(&schema(), "nope").is_err());
    }

    #[test]
    fn degenerate_domains_rejected() {
        let bad = Schema::new()
            .with("x", AttributeKind::Continuous { min: 1.0, max: 1.0 })
            .with("income", AttributeKind::Continuous { min: 0.0, max: 1.0 });
        assert!(Normalizer::from_schema(&bad, "income").is_err());
        assert!(Normalizer::from_bounds(vec![(0.0, 0.0)], (0.0, 1.0)).is_err());
        assert!(Normalizer::from_bounds(vec![(0.0, 1.0)], (1.0, 1.0)).is_err());
    }

    #[test]
    fn footnote1_map_is_exact() {
        let n = Normalizer::from_schema(&schema(), "income").unwrap();
        let norm = n.normalize_linear(&raw()).unwrap();
        let sqrt2 = 2.0_f64.sqrt();
        // Row 0: age 50/100 → 0.5/√2; hours 25/50 → 0.5/√2.
        assert!((norm.x()[(0, 0)] - 0.5 / sqrt2).abs() < 1e-12);
        assert!((norm.x()[(0, 1)] - 0.5 / sqrt2).abs() < 1e-12);
        // Row 1: age at max → 1/√2, hours at min → 0.
        assert!((norm.x()[(1, 0)] - 1.0 / sqrt2).abs() < 1e-12);
        assert_eq!(norm.x()[(1, 1)], 0.0);
    }

    #[test]
    fn unit_sphere_guarantee_holds_at_extremes() {
        let n = Normalizer::from_schema(&schema(), "income").unwrap();
        // Every feature at its max → ‖x‖₂ = 1 exactly.
        let x = Matrix::from_rows(&[&[100.0, 50.0]]).unwrap();
        let ds = Dataset::with_names(x, vec![1000.0], vec!["age".into(), "hours".into()]).unwrap();
        let norm = n.normalize_linear(&ds).unwrap();
        assert!((norm.max_feature_norm() - 1.0).abs() < 1e-12);
        norm.check_normalized_linear().unwrap();
    }

    #[test]
    fn label_map_to_unit_interval() {
        let n = Normalizer::from_schema(&schema(), "income").unwrap();
        let norm = n.normalize_linear(&raw()).unwrap();
        assert_eq!(norm.y(), &[0.0, 1.0, -1.0]);
        norm.check_normalized_linear().unwrap();
    }

    #[test]
    fn label_roundtrip() {
        let n = Normalizer::from_schema(&schema(), "income").unwrap();
        for &v in &[0.0, 123.0, 999.0, 1000.0] {
            let back = n.denormalize_label(n.normalize_label(v));
            assert!((back - v).abs() < 1e-9, "roundtrip failed at {v}");
        }
    }

    #[test]
    fn out_of_domain_values_are_clamped() {
        let n = Normalizer::from_schema(&schema(), "income").unwrap();
        let x = Matrix::from_rows(&[&[150.0, -10.0]]).unwrap();
        let ds = Dataset::with_names(x, vec![2000.0], vec!["age".into(), "hours".into()]).unwrap();
        let norm = n.normalize_linear(&ds).unwrap();
        // Clamped to domain edges: still normalized.
        norm.check_normalized_linear().unwrap();
        assert_eq!(norm.y(), &[1.0]);
    }

    #[test]
    fn logistic_thresholding() {
        let n = Normalizer::from_schema(&schema(), "income").unwrap();
        let norm = n.normalize_logistic(&raw(), 400.0).unwrap();
        assert_eq!(norm.y(), &[1.0, 1.0, 0.0]);
        norm.check_normalized_logistic().unwrap();
    }

    #[test]
    fn binarize_labels_static_helper() {
        assert_eq!(
            Normalizer::binarize_labels(&[1.0, 5.0, 3.0], 3.0),
            vec![0.0, 1.0, 0.0]
        );
    }

    #[test]
    fn feature_count_mismatch_rejected() {
        let n = Normalizer::from_bounds(vec![(0.0, 1.0)], (0.0, 1.0)).unwrap();
        assert!(n.normalize_linear(&raw()).is_err());
    }
}
