//! Bounded, backpressured block channels: the queue-fed [`RowSource`]
//! serving workloads push tenant rows through.
//!
//! [`block_channel`] splits a fit's transport into two halves connected by
//! a bounded FIFO of [`RowBlock`]s:
//!
//! * a [`BlockSender`] the producer (an ingestion front, a tenant RPC
//!   handler) pushes blocks into — [`BlockSender::send`] **blocks** when
//!   the queue is full (backpressure), [`BlockSender::try_send`] **rejects**
//!   instead, handing the block back; either way, queued memory is capped
//!   at `depth_blocks` blocks and never grows without bound;
//! * a [`QueueSource`] the consumer (a serve worker driving `partial_fit`)
//!   drains — a plain [`RowSource`], so everything downstream of it is the
//!   standard streaming fit pipeline.
//!
//! Because `fm-core`'s accumulator re-chunks every stream onto its fixed
//! chunk grid, *how* rows were batched into queue blocks — and any timing
//! of the producer/consumer interleaving — can never perturb released
//! coefficients: a fit fed through a `block_channel` is bit-identical to
//! the same rows fed directly to `fit_stream`.
//!
//! End-of-stream is the sender hangup: dropping the last [`BlockSender`]
//! clone (or calling [`BlockSender::finish`]) makes the source return
//! `None` after the queue drains. A producer-side failure is forwarded
//! with [`BlockSender::fail`] and surfaces as the consumer's next read
//! error, exactly like a transport error from any other source. Dropping
//! the [`QueueSource`] hangs up the other way: blocked senders wake
//! immediately and get their block back.

use std::sync::mpsc::{SyncSender, TrySendError};
use std::time::Duration;

use crate::stream::{BlockVisitor, ChannelConsumer, Refill, RowBlock, RowSource};
use crate::{DataError, Result};

/// Creates a bounded block channel of dimensionality `d` holding at most
/// `depth_blocks` blocks (clamped to ≥ 1): returns the producer and
/// consumer halves. See the [module docs](self).
///
/// # Errors
/// [`DataError::InvalidParameter`] when `d` is zero.
pub fn block_channel(d: usize, depth_blocks: usize) -> Result<(BlockSender, QueueSource)> {
    if d == 0 {
        return Err(DataError::InvalidParameter {
            name: "d",
            reason: "block channel dimensionality must be at least 1".to_string(),
        });
    }
    let (tx, rx) = std::sync::mpsc::sync_channel(depth_blocks.max(1));
    Ok((
        BlockSender { tx, d },
        QueueSource {
            feed: ChannelConsumer::new(d, None, rx),
        },
    ))
}

/// Why [`BlockSender::try_send`] handed a block back instead of queuing it.
#[derive(Debug)]
pub enum SendRejected {
    /// The queue is at capacity. Retry later (or fall back to the blocking
    /// [`BlockSender::send`]); the block is returned untouched.
    Full(RowBlock),
    /// The consumer hung up; no more rows will ever be accepted. The block
    /// is returned so the producer can account for it.
    Closed(RowBlock),
    /// The block's dimensionality does not match the channel's.
    Invalid(DataError),
}

/// The producer half of a [`block_channel`]: pushes [`RowBlock`]s into the
/// bounded queue.
///
/// Cloneable for multi-producer ingestion; the stream ends only when
/// **every** clone has been dropped (or [`BlockSender::finish`]ed).
#[derive(Debug, Clone)]
pub struct BlockSender {
    tx: SyncSender<Result<RowBlock>>,
    d: usize,
}

impl BlockSender {
    /// Dimensionality every sent block must have.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.d
    }

    fn check(&self, block: &RowBlock) -> Result<()> {
        if block.d() != self.d {
            return Err(DataError::InvalidParameter {
                name: "block",
                reason: format!(
                    "block dimensionality {} does not match channel dimensionality {}",
                    block.d(),
                    self.d
                ),
            });
        }
        Ok(())
    }

    /// Queues `block`, **blocking** while the queue is full — the
    /// backpressure path: a producer faster than the fit worker is slowed
    /// to the worker's rate instead of growing memory without bound.
    ///
    /// # Errors
    /// [`DataError::InvalidParameter`] on a dimensionality mismatch;
    /// [`DataError::ChannelClosed`] when the consumer hung up (the fit was
    /// cancelled or failed — the rows were *not* consumed).
    pub fn send(&self, block: RowBlock) -> Result<()> {
        self.check(&block)?;
        self.tx
            .send(Ok(block))
            .map_err(|_| DataError::ChannelClosed {
                detail: "consumer dropped while rows were still being sent".to_string(),
            })
    }

    /// Queues `block` without blocking: on a full queue the block is
    /// handed straight back as [`SendRejected::Full`] — the rejecting
    /// admission-control path.
    ///
    /// # Errors
    /// [`SendRejected`], carrying the block back where that makes sense.
    pub fn try_send(&self, block: RowBlock) -> std::result::Result<(), SendRejected> {
        if let Err(e) = self.check(&block) {
            return Err(SendRejected::Invalid(e));
        }
        match self.tx.try_send(Ok(block)) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(Ok(block))) => Err(SendRejected::Full(block)),
            Err(TrySendError::Disconnected(Ok(block))) => Err(SendRejected::Closed(block)),
            // We only ever try_send Ok(..) payloads.
            Err(TrySendError::Full(Err(_)) | TrySendError::Disconnected(Err(_))) => unreachable!(),
        }
    }

    /// Forwards a producer-side failure to the consumer, closing the
    /// channel: the consumer's next read returns `error`, failing the fit
    /// the same way a transport error from any other source would.
    pub fn fail(self, error: DataError) {
        let _ = self.tx.send(Err(error));
    }

    /// Ends the stream cleanly (equivalent to dropping the sender): once
    /// every clone is finished or dropped and the queue drains, the
    /// consumer sees end-of-stream.
    pub fn finish(self) {}
}

/// One bounded-wait poll outcome from [`QueueSource::poll_block`].
#[derive(Debug)]
pub enum BlockPoll {
    /// A block of at most the requested rows.
    Block(RowBlock),
    /// Nothing arrived within the wait; producers are still connected.
    /// The caller can check its shutdown flag and poll again.
    Pending,
    /// Every producer hung up and the queue is drained: end-of-stream.
    Finished,
}

/// The consumer half of a [`block_channel`]: a [`RowSource`] over whatever
/// the producers queue, in FIFO order.
///
/// The `RowSource` methods block until rows arrive or the stream ends —
/// correct for a dedicated fit, but a serve worker that must also react
/// to shutdown uses [`QueueSource::poll_block`], which bounds each wait.
///
/// Dropping a `QueueSource` mid-stream hangs up the channel: producers
/// blocked in [`BlockSender::send`] wake with an error immediately.
#[derive(Debug)]
pub struct QueueSource {
    feed: ChannelConsumer,
}

impl QueueSource {
    /// Hangs up the channel without consuming the source: producers
    /// blocked in [`BlockSender::send`] wake with an error immediately and
    /// later sends are rejected, while rows already received stay
    /// drainable. The cancellation path for a fit that stops early.
    pub fn close(&mut self) {
        self.feed.disconnect();
    }

    /// Waits at most `timeout` for the next block of at most
    /// `max_rows.max(1)` rows.
    ///
    /// # Errors
    /// An error forwarded by [`BlockSender::fail`]; after it, the source
    /// is closed.
    pub fn poll_block(&mut self, max_rows: usize, timeout: Duration) -> Result<BlockPoll> {
        let want = max_rows.max(1);
        if self.feed.has_pending() {
            return Ok(BlockPoll::Block(
                self.feed.serve(want).expect("pending block"),
            ));
        }
        match self.feed.refill_timeout(timeout)? {
            Refill::Ready => Ok(BlockPoll::Block(
                self.feed.serve(want).expect("refilled above"),
            )),
            Refill::TimedOut => Ok(BlockPoll::Pending),
            Refill::Finished => Ok(BlockPoll::Finished),
        }
    }
}

impl RowSource for QueueSource {
    fn dim(&self) -> usize {
        self.feed.dim()
    }

    fn hint_rows(&self) -> Option<usize> {
        self.feed.hint_rows()
    }

    fn next_block(&mut self, max_rows: usize) -> Result<Option<RowBlock>> {
        self.feed.next_block(max_rows)
    }

    fn for_each_block(&mut self, max_rows: usize, f: &mut BlockVisitor<'_>) -> Result<()> {
        self.feed.for_each_block(max_rows, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::InMemorySource;
    use crate::Dataset;
    use fm_linalg::Matrix;

    fn block(rows: usize, d: usize, seed: f64) -> RowBlock {
        let xs: Vec<f64> = (0..rows * d).map(|i| seed + i as f64 * 1e-3).collect();
        let ys: Vec<f64> = (0..rows).map(|i| seed - i as f64 * 1e-3).collect();
        RowBlock::new(xs, ys, d).unwrap()
    }

    #[test]
    fn round_trips_blocks_in_order_and_rechunks_to_the_consumer_cap() {
        let (tx, mut src) = block_channel(2, 4).unwrap();
        assert_eq!(tx.dim(), 2);
        assert_eq!(src.dim(), 2);
        tx.send(block(3, 2, 0.0)).unwrap();
        tx.send(block(5, 2, 10.0)).unwrap();
        tx.finish();
        let mut ys = Vec::new();
        while let Some(b) = src.next_block(2).unwrap() {
            assert!(b.rows() <= 2);
            ys.extend_from_slice(b.ys());
        }
        let mut expect = block(3, 2, 0.0).ys().to_vec();
        expect.extend_from_slice(block(5, 2, 10.0).ys());
        assert_eq!(ys, expect);
        assert!(src.next_block(2).unwrap().is_none(), "stays exhausted");
    }

    #[test]
    fn try_send_rejects_on_full_and_returns_the_block() {
        let (tx, mut src) = block_channel(1, 2).unwrap();
        tx.try_send(block(1, 1, 0.0)).unwrap();
        tx.try_send(block(1, 1, 1.0)).unwrap();
        // Queue depth is 2: the third block bounces back untouched.
        match tx.try_send(block(4, 1, 2.0)) {
            Err(SendRejected::Full(b)) => assert_eq!(b.rows(), 4),
            other => panic!("expected Full rejection, got {other:?}"),
        }
        // Draining one block frees a slot.
        let _ = src.next_block(8).unwrap().unwrap();
        tx.try_send(block(1, 1, 2.0)).unwrap();
        // Dropping the consumer turns rejection into Closed.
        drop(src);
        match tx.try_send(block(1, 1, 3.0)) {
            Err(SendRejected::Closed(_)) => {}
            other => panic!("expected Closed rejection, got {other:?}"),
        }
    }

    #[test]
    fn blocking_send_applies_backpressure_then_unblocks() {
        let (tx, mut src) = block_channel(1, 1).unwrap();
        tx.send(block(1, 1, 0.0)).unwrap();
        let producer = std::thread::spawn(move || {
            // Queue is full: this blocks until the consumer drains a slot.
            tx.send(block(1, 1, 1.0)).unwrap();
            tx.send(block(1, 1, 2.0)).unwrap();
        });
        let mut seen = 0usize;
        while let Some(b) = src.next_block(4).unwrap() {
            seen += b.rows();
        }
        producer.join().unwrap();
        assert_eq!(seen, 3);
    }

    #[test]
    fn dropping_the_consumer_unblocks_and_errors_a_blocked_sender() {
        let (tx, src) = block_channel(1, 1).unwrap();
        tx.send(block(1, 1, 0.0)).unwrap();
        let producer = std::thread::spawn(move || tx.send(block(1, 1, 1.0)));
        // Give the producer time to block on the full queue, then hang up.
        std::thread::sleep(Duration::from_millis(20));
        drop(src);
        assert!(matches!(
            producer.join().unwrap(),
            Err(DataError::ChannelClosed { .. })
        ));
    }

    #[test]
    fn fail_surfaces_as_the_consumer_read_error() {
        let (tx, mut src) = block_channel(1, 2).unwrap();
        tx.send(block(1, 1, 0.0)).unwrap();
        tx.fail(DataError::Parse {
            line: 7,
            detail: "bad row".to_string(),
        });
        // The queued block still arrives first, then the error.
        assert!(src.next_block(8).unwrap().is_some());
        assert!(matches!(
            src.next_block(8),
            Err(DataError::Parse { line: 7, .. })
        ));
    }

    #[test]
    fn poll_block_times_out_while_producers_live_and_finishes_on_hangup() {
        let (tx, mut src) = block_channel(1, 2).unwrap();
        assert!(matches!(
            src.poll_block(8, Duration::from_millis(5)).unwrap(),
            BlockPoll::Pending
        ));
        tx.send(block(2, 1, 0.0)).unwrap();
        match src.poll_block(1, Duration::from_millis(100)).unwrap() {
            BlockPoll::Block(b) => assert_eq!(b.rows(), 1),
            other => panic!("expected a block, got {other:?}"),
        }
        drop(tx);
        // The pending remainder drains before end-of-stream.
        assert!(matches!(
            src.poll_block(8, Duration::from_millis(5)).unwrap(),
            BlockPoll::Block(_)
        ));
        assert!(matches!(
            src.poll_block(8, Duration::from_millis(5)).unwrap(),
            BlockPoll::Finished
        ));
    }

    #[test]
    fn dimension_mismatches_are_refused_on_both_paths() {
        assert!(block_channel(0, 1).is_err());
        let (tx, _src) = block_channel(3, 1).unwrap();
        assert!(matches!(
            tx.send(block(1, 2, 0.0)),
            Err(DataError::InvalidParameter { .. })
        ));
        assert!(matches!(
            tx.try_send(block(1, 2, 0.0)),
            Err(SendRejected::Invalid(_))
        ));
    }

    #[test]
    fn multi_producer_clones_keep_the_stream_open_until_all_finish() {
        let (tx, mut src) = block_channel(1, 4).unwrap();
        let tx2 = tx.clone();
        tx.send(block(1, 1, 0.0)).unwrap();
        tx.finish();
        // tx2 still holds the channel open.
        tx2.send(block(1, 1, 1.0)).unwrap();
        assert!(matches!(
            src.poll_block(8, Duration::from_millis(5)).unwrap(),
            BlockPoll::Block(_)
        ));
        assert!(matches!(
            src.poll_block(8, Duration::from_millis(5)).unwrap(),
            BlockPoll::Block(_)
        ));
        assert!(matches!(
            src.poll_block(8, Duration::from_millis(5)).unwrap(),
            BlockPoll::Pending
        ));
        tx2.finish();
        assert!(matches!(
            src.poll_block(8, Duration::from_millis(5)).unwrap(),
            BlockPoll::Finished
        ));
    }

    #[test]
    fn close_rejects_later_sends_but_keeps_received_rows_drainable() {
        let (tx, mut src) = block_channel(1, 4).unwrap();
        tx.send(block(2, 1, 0.0)).unwrap();
        // Let the queued block reach the consumer before hanging up.
        match src.poll_block(1, Duration::from_millis(100)).unwrap() {
            BlockPoll::Block(b) => assert_eq!(b.rows(), 1),
            other => panic!("expected a block, got {other:?}"),
        }
        src.close();
        assert!(matches!(
            tx.send(block(1, 1, 1.0)),
            Err(DataError::ChannelClosed { .. })
        ));
        // The already-received remainder still drains, then end-of-stream.
        assert!(matches!(src.next_block(8).unwrap(), Some(b) if b.rows() == 1));
        assert!(src.next_block(8).unwrap().is_none());
    }

    #[test]
    fn queue_fed_rows_materialize_identically_to_the_direct_source() {
        let x = Matrix::from_rows(&[&[0.1, 0.2], &[0.3, 0.4], &[0.5, 0.6], &[0.0, -0.1]]).unwrap();
        let data = Dataset::new(x, vec![1.0, 0.0, 1.0, -0.5]).unwrap();
        let (tx, mut queued) = block_channel(2, 2).unwrap();
        let via_queue = std::thread::scope(|s| {
            let mut direct = InMemorySource::new(&data);
            s.spawn(move || {
                // Odd block sizes on purpose: re-chunking is the consumer's
                // job and must not change the logical row stream.
                while let Some(b) = direct.next_block(3).unwrap() {
                    tx.send(b).unwrap();
                }
            });
            crate::stream::materialize(&mut queued).unwrap()
        });
        assert_eq!(via_queue.x().as_slice(), data.x().as_slice());
        assert_eq!(via_queue.y(), data.y());
    }
}
