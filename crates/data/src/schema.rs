//! Attribute metadata: names and value domains.
//!
//! Domains matter for two reasons. First, the paper's normalization
//! (footnote 1) maps each attribute by its domain bounds `[α_j, β_j]` —
//! using *domain* bounds rather than observed min/max keeps the map
//! data-independent, which the privacy analysis requires. Second, the DPME
//! and Filter-Priority baselines build histograms over the attribute
//! domains, so they need cardinalities and bounds up front.

use crate::{DataError, Result};

/// The kind and domain of a single attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum AttributeKind {
    /// Real-valued in `[min, max]`.
    Continuous {
        /// Domain lower bound `α_j`.
        min: f64,
        /// Domain upper bound `β_j`.
        max: f64,
    },
    /// Integer-valued in `[min, max]` (stored as `f64` in datasets).
    Integer {
        /// Domain lower bound.
        min: i64,
        /// Domain upper bound.
        max: i64,
    },
    /// Binary `{0, 1}`.
    Binary,
}

impl AttributeKind {
    /// Domain bounds as floats `(α_j, β_j)`.
    #[must_use]
    pub fn bounds(&self) -> (f64, f64) {
        match *self {
            AttributeKind::Continuous { min, max } => (min, max),
            AttributeKind::Integer { min, max } => (min as f64, max as f64),
            AttributeKind::Binary => (0.0, 1.0),
        }
    }

    /// `true` when `v` lies inside the domain (integers are not checked for
    /// integrality — census codes arrive as floats).
    #[must_use]
    pub fn contains(&self, v: f64) -> bool {
        let (lo, hi) = self.bounds();
        (lo..=hi).contains(&v)
    }

    /// Number of distinct values for discrete kinds; `None` for continuous.
    #[must_use]
    pub fn cardinality(&self) -> Option<usize> {
        match *self {
            AttributeKind::Continuous { .. } => None,
            AttributeKind::Integer { min, max } => Some((max - min + 1).max(0) as usize),
            AttributeKind::Binary => Some(2),
        }
    }
}

/// A named attribute with its domain.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribute {
    /// Attribute name.
    pub name: String,
    /// Kind and domain.
    pub kind: AttributeKind,
}

/// An ordered collection of attributes describing a dataset's columns.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schema {
    attributes: Vec<Attribute>,
}

impl Schema {
    /// Creates an empty schema.
    #[must_use]
    pub fn new() -> Self {
        Schema::default()
    }

    /// Appends an attribute (builder style).
    #[must_use]
    pub fn with(mut self, name: &str, kind: AttributeKind) -> Self {
        self.attributes.push(Attribute {
            name: name.to_string(),
            kind,
        });
        self
    }

    /// Number of attributes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// `true` when the schema has no attributes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// The attributes in column order.
    #[must_use]
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Looks up an attribute by name.
    ///
    /// # Errors
    /// [`DataError::UnknownAttribute`] when absent.
    pub fn attribute(&self, name: &str) -> Result<&Attribute> {
        self.attributes
            .iter()
            .find(|a| a.name == name)
            .ok_or_else(|| DataError::UnknownAttribute {
                name: name.to_string(),
            })
    }

    /// Column index of an attribute.
    ///
    /// # Errors
    /// [`DataError::UnknownAttribute`] when absent.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.attributes
            .iter()
            .position(|a| a.name == name)
            .ok_or_else(|| DataError::UnknownAttribute {
                name: name.to_string(),
            })
    }

    /// Attribute names in column order.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        self.attributes.iter().map(|a| a.name.clone()).collect()
    }

    /// A new schema restricted to (and reordered by) `names`.
    ///
    /// # Errors
    /// [`DataError::UnknownAttribute`] for any unmatched name.
    pub fn project(&self, names: &[&str]) -> Result<Schema> {
        let mut out = Schema::new();
        for &n in names {
            let a = self.attribute(n)?;
            out.attributes.push(a.clone());
        }
        Ok(out)
    }

    /// Validates that `row` (one value per attribute) lies inside every
    /// attribute domain.
    ///
    /// # Errors
    /// [`DataError::OutOfDomain`] naming the first violation;
    /// [`DataError::LengthMismatch`] on arity mismatch.
    pub fn validate_row(&self, row: &[f64]) -> Result<()> {
        if row.len() != self.len() {
            return Err(DataError::LengthMismatch {
                rows: row.len(),
                labels: self.len(),
            });
        }
        for (a, &v) in self.attributes.iter().zip(row) {
            if !a.kind.contains(v) {
                return Err(DataError::OutOfDomain {
                    attribute: a.name.clone(),
                    value: v,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new()
            .with("age", AttributeKind::Integer { min: 16, max: 95 })
            .with("gender", AttributeKind::Binary)
            .with(
                "income",
                AttributeKind::Continuous {
                    min: 0.0,
                    max: 500_000.0,
                },
            )
    }

    #[test]
    fn bounds_and_cardinality() {
        assert_eq!(AttributeKind::Binary.bounds(), (0.0, 1.0));
        assert_eq!(AttributeKind::Binary.cardinality(), Some(2));
        let age = AttributeKind::Integer { min: 16, max: 95 };
        assert_eq!(age.bounds(), (16.0, 95.0));
        assert_eq!(age.cardinality(), Some(80));
        let inc = AttributeKind::Continuous { min: 0.0, max: 1.0 };
        assert_eq!(inc.cardinality(), None);
    }

    #[test]
    fn contains_checks_bounds() {
        let age = AttributeKind::Integer { min: 16, max: 95 };
        assert!(age.contains(16.0));
        assert!(age.contains(95.0));
        assert!(!age.contains(15.9));
        assert!(!age.contains(96.0));
    }

    #[test]
    fn lookup_and_index() {
        let s = schema();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.index_of("gender").unwrap(), 1);
        assert!(s.attribute("income").is_ok());
        assert!(matches!(
            s.attribute("nope"),
            Err(DataError::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn names_in_order() {
        assert_eq!(schema().names(), vec!["age", "gender", "income"]);
    }

    #[test]
    fn project_reorders() {
        let s = schema().project(&["income", "age"]).unwrap();
        assert_eq!(s.names(), vec!["income", "age"]);
        assert!(schema().project(&["missing"]).is_err());
    }

    #[test]
    fn validate_row_checks_domains() {
        let s = schema();
        s.validate_row(&[30.0, 1.0, 50_000.0]).unwrap();
        assert!(matches!(
            s.validate_row(&[10.0, 1.0, 50_000.0]),
            Err(DataError::OutOfDomain { .. })
        ));
        assert!(matches!(
            s.validate_row(&[30.0, 1.0]),
            Err(DataError::LengthMismatch { .. })
        ));
    }
}
