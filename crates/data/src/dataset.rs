//! The [`Dataset`] type: an `n × d` feature matrix with labels.

use fm_linalg::{vecops, Matrix};

use crate::{DataError, Result};

/// Slack allowed on the `‖x‖₂ ≤ 1` check; normalization is exact up to
/// floating-point rounding.
const NORM_TOL: f64 = 1e-9;

/// A regression dataset `D = {t_i = (x_i, y_i)}` (paper Section 3).
///
/// `x` is `n × d` (one row per tuple), `y` has length `n`. Feature names
/// are carried for experiment reporting and attribute-subset selection;
/// they are optional semantics, not part of equality.
#[derive(Debug)]
pub struct Dataset {
    x: Matrix,
    y: Vec<f64>,
    feature_names: Vec<String>,
    /// Lazily-built column-major view of `x` (the `d × n` transpose),
    /// shared by every fit on this dataset — see [`Dataset::columnar`].
    xt: std::sync::OnceLock<Matrix>,
    /// How many coefficient-assembly passes this dataset has served —
    /// the reuse signal behind [`Dataset::columnar_on_reuse`].
    scans: std::sync::atomic::AtomicU32,
    /// Lazily-built intercept augmentation (`x' = (x/√2, 1/√2)`), shared by
    /// every intercept fit on this dataset — see
    /// [`Dataset::augmented_for_intercept_cached`]. Boxed so the type can
    /// refer to itself.
    aug: std::sync::OnceLock<Box<Dataset>>,
}

impl Clone for Dataset {
    fn clone(&self) -> Self {
        Dataset {
            x: self.x.clone(),
            y: self.y.clone(),
            feature_names: self.feature_names.clone(),
            xt: self.xt.clone(),
            scans: std::sync::atomic::AtomicU32::new(
                self.scans.load(std::sync::atomic::Ordering::Relaxed),
            ),
            aug: self.aug.clone(),
        }
    }
}

impl Dataset {
    /// Creates a dataset, validating that shapes line up.
    ///
    /// # Errors
    /// * [`DataError::LengthMismatch`] when `x.rows() != y.len()`.
    /// * [`DataError::EmptyDataset`] for zero rows or zero columns.
    pub fn new(x: Matrix, y: Vec<f64>) -> Result<Self> {
        if x.rows() != y.len() {
            return Err(DataError::LengthMismatch {
                rows: x.rows(),
                labels: y.len(),
            });
        }
        if x.rows() == 0 || x.cols() == 0 {
            return Err(DataError::EmptyDataset);
        }
        let feature_names = (0..x.cols()).map(|j| format!("x{j}")).collect();
        Ok(Dataset {
            x,
            y,
            feature_names,
            xt: std::sync::OnceLock::new(),
            scans: std::sync::atomic::AtomicU32::new(0),
            aug: std::sync::OnceLock::new(),
        })
    }

    /// Creates a dataset with explicit feature names.
    ///
    /// # Errors
    /// As [`Dataset::new`], plus [`DataError::InvalidParameter`] when the
    /// name count differs from the column count.
    pub fn with_names(x: Matrix, y: Vec<f64>, names: Vec<String>) -> Result<Self> {
        if names.len() != x.cols() {
            return Err(DataError::InvalidParameter {
                name: "names",
                reason: format!("{} names for {} columns", names.len(), x.cols()),
            });
        }
        let mut ds = Dataset::new(x, y)?;
        ds.feature_names = names;
        Ok(ds)
    }

    /// Number of tuples `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.y.len()
    }

    /// Number of features `d`.
    #[must_use]
    pub fn d(&self) -> usize {
        self.x.cols()
    }

    /// The feature matrix.
    #[must_use]
    pub fn x(&self) -> &Matrix {
        &self.x
    }

    /// The label vector.
    #[must_use]
    pub fn y(&self) -> &[f64] {
        &self.y
    }

    /// The cached column-major view of the feature block: the `d × n`
    /// transpose of [`Dataset::x`], built on first use and reused by every
    /// subsequent call — row `j` of the returned matrix is feature column
    /// `j`, stored contiguously.
    ///
    /// This is what lets repeated fits on the same dataset (the paper's 50
    /// repeats × 5 folds protocol, ε-sweeps, error-vs-budget averaging)
    /// amortize the transpose that coefficient assembly otherwise re-does
    /// per call: the Gram kernels (`XᵀX`, `Xᵀy`, `Σx`) read these
    /// contiguous columns directly instead of packing row-major chunks
    /// into column panels every time. The view costs one extra `n·d` block
    /// of memory and is only materialised when something asks for it.
    #[must_use]
    pub fn columnar(&self) -> &Matrix {
        self.xt.get_or_init(|| self.x.transpose())
    }

    /// The columnar view, but only once this dataset is demonstrably
    /// *reused*: returns the cache when it is already built, or builds it
    /// from the second assembly pass onward; the very first pass over a
    /// fresh dataset gets `None`.
    ///
    /// This is the policy coefficient assembly consults. A one-shot fit
    /// (a CV fold's training split, an intercept-augmented copy) never
    /// pays the `n·d` transpose allocation; repeat workloads — the
    /// paper's 50-repeats protocol on the same split, ε-sweeps, bench
    /// loops — amortize it automatically from the second fit on. Since
    /// the columnar and row-major kernels are bit-identical, which branch
    /// a given pass takes can never perturb assembled coefficients.
    #[must_use]
    pub fn columnar_on_reuse(&self) -> Option<&Matrix> {
        if let Some(xt) = self.xt.get() {
            return Some(xt);
        }
        if self
            .scans
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            > 0
        {
            Some(self.columnar())
        } else {
            None
        }
    }

    /// Feature names, in column order.
    #[must_use]
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// The `i`-th tuple `(x_i, y_i)`. Panics on out-of-bounds `i` (mirrors
    /// slice indexing).
    #[must_use]
    pub fn tuple(&self, i: usize) -> (&[f64], f64) {
        (self.x.row(i), self.y[i])
    }

    /// Iterates over `(x_i, y_i)` pairs.
    pub fn tuples(&self) -> impl Iterator<Item = (&[f64], f64)> + '_ {
        (0..self.n()).map(move |i| self.tuple(i))
    }

    /// Builds a new dataset from the rows at `indices` (duplicates allowed —
    /// this is what bootstap-style samplers need).
    ///
    /// # Errors
    /// [`DataError::InvalidParameter`] if any index is out of range;
    /// [`DataError::EmptyDataset`] for an empty selection.
    pub fn subset(&self, indices: &[usize]) -> Result<Dataset> {
        if indices.is_empty() {
            return Err(DataError::EmptyDataset);
        }
        if let Some(&bad) = indices.iter().find(|&&i| i >= self.n()) {
            return Err(DataError::InvalidParameter {
                name: "indices",
                reason: format!("row {bad} out of range for n = {}", self.n()),
            });
        }
        let d = self.d();
        let mut data = Vec::with_capacity(indices.len() * d);
        let mut y = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(self.x.row(i));
            y.push(self.y[i]);
        }
        let x = Matrix::from_vec(indices.len(), d, data)?;
        Dataset::with_names(x, y, self.feature_names.clone())
    }

    /// Builds a new dataset keeping only the named feature columns, in the
    /// order given — the paper's attribute-subset experiments (Figure 4).
    ///
    /// # Errors
    /// [`DataError::UnknownAttribute`] for an unmatched name.
    pub fn select_features(&self, names: &[&str]) -> Result<Dataset> {
        let cols: Vec<usize> = names
            .iter()
            .map(|&want| {
                self.feature_names
                    .iter()
                    .position(|have| have == want)
                    .ok_or_else(|| DataError::UnknownAttribute {
                        name: want.to_string(),
                    })
            })
            .collect::<Result<_>>()?;
        if cols.is_empty() {
            return Err(DataError::EmptyDataset);
        }
        let n = self.n();
        let x = Matrix::from_fn(n, cols.len(), |r, c| self.x[(r, cols[c])]);
        Dataset::with_names(
            x,
            self.y.clone(),
            names.iter().map(|s| s.to_string()).collect(),
        )
    }

    /// Verifies the paper's linear-regression input contract:
    /// `‖x_i‖₂ ≤ 1` and `y_i ∈ [−1, 1]` (Definition 1).
    ///
    /// # Errors
    /// [`DataError::NotNormalized`] naming the first violating tuple.
    pub fn check_normalized_linear(&self) -> Result<()> {
        check_rows_normalized_linear(self.x.as_slice(), &self.y, self.d())
    }

    /// Verifies the logistic-regression input contract: `‖x_i‖₂ ≤ 1` and
    /// `y_i ∈ {0, 1}` (Definition 2).
    ///
    /// # Errors
    /// [`DataError::NotNormalized`] naming the first violating tuple.
    pub fn check_normalized_logistic(&self) -> Result<()> {
        check_rows_normalized_logistic(self.x.as_slice(), &self.y, self.d())
    }

    /// Verifies the count-regression (Poisson) input contract:
    /// `‖x_i‖₂ ≤ 1` and `y_i ∈ [0, y_max]` — the bounded-label condition DP
    /// Poisson regression needs for a finite, data-independent sensitivity.
    ///
    /// # Errors
    /// [`DataError::NotNormalized`] naming the first violating tuple, or
    /// [`DataError::InvalidParameter`] for a non-positive/non-finite cap.
    pub fn check_normalized_counts(&self, y_max: f64) -> Result<()> {
        check_rows_normalized_counts(self.x.as_slice(), &self.y, self.d(), y_max)
    }

    /// The maximum `‖x_i‖₂` over all tuples (diagnostics).
    #[must_use]
    pub fn max_feature_norm(&self) -> f64 {
        self.tuples()
            .map(|(x, _)| vecops::norm2(x))
            .fold(0.0, f64::max)
    }

    /// The intercept-model reduction of the paper's footnote 2: maps each
    /// row to `x' = (x/√2, 1/√2)`, so that fitting a plain `d+1`-dimensional
    /// model on the result is equivalent to fitting
    /// `argmin_{ω, b} Σ f(y_i, x_iᵀω + b)` on the original data.
    ///
    /// The `1/√2` scaling keeps the normalized-domain contract intact:
    /// `‖x'‖₂² = ‖x‖₂²/2 + 1/2 ≤ 1` whenever `‖x‖₂ ≤ 1`, so the augmented
    /// dataset is directly consumable by the Functional Mechanism with the
    /// standard sensitivity bound at dimension `d+1`. The fitted augmented
    /// weights `ω'` map back as `ω_j = ω'_j/√2` and `b = ω'_d/√2` (the
    /// regression front-ends do this automatically).
    #[must_use]
    pub fn augment_for_intercept(&self) -> Dataset {
        let inv_sqrt2 = std::f64::consts::FRAC_1_SQRT_2;
        let d = self.d();
        let x = Matrix::from_fn(self.n(), d + 1, |r, c| {
            if c < d {
                self.x[(r, c)] * inv_sqrt2
            } else {
                inv_sqrt2
            }
        });
        let mut names = self.feature_names.clone();
        names.push("(intercept)".to_string());
        Dataset::with_names(x, self.y.clone(), names)
            .expect("augmented shapes are valid by construction")
    }

    /// The cached intercept augmentation of this dataset, built on first
    /// use and shared by every subsequent intercept fit.
    ///
    /// Semantically identical to [`Dataset::augment_for_intercept`] (same
    /// elementwise `x·(1/√2)` arithmetic, so fitted coefficients are
    /// bit-identical either way); the difference is amortization. Because
    /// one augmented `Dataset` instance now serves *all* intercept fits on
    /// this data, its scan counter accumulates across fits and its own
    /// columnar cache ([`Dataset::columnar_on_reuse`]) unlocks from the
    /// second intercept fit onward — including fits entering through the
    /// streaming entry points, which previously re-augmented per call and
    /// therefore never left the row-major visitor rate.
    #[must_use]
    pub fn augmented_for_intercept_cached(&self) -> &Dataset {
        self.aug
            .get_or_init(|| Box::new(self.augment_for_intercept()))
    }
}

/// The squared norm bound the row checks compare against. Validation is
/// on the hot streaming path (every absorbed block runs it before the
/// Gram kernels), so the per-row check compares **squared** norms — no
/// per-row `sqrt` — against this constant;
/// `‖x‖₂ ≤ 1 + NORM_TOL  ⟺  ‖x‖₂² ≤ (1 + NORM_TOL)²` exactly, for any
/// non-negative finite value. The `sqrt` is only taken on the error path,
/// to report the offending norm in the units the contract states.
const NORM_SQ_MAX: f64 = (1.0 + NORM_TOL) * (1.0 + NORM_TOL);

/// Squared row norm with two independent accumulators, halving the
/// floating-point dependency chain the plain `dot(x, x)` would serialise
/// on — validation arithmetic only, never part of released coefficients.
#[inline]
fn sq_norm(x: &[f64]) -> f64 {
    let mut a0 = 0.0_f64;
    let mut a1 = 0.0_f64;
    let mut chunks = x.chunks_exact(2);
    for c in &mut chunks {
        a0 += c[0] * c[0];
        a1 += c[1] * c[1];
    }
    if let [v] = chunks.remainder() {
        a0 += v * v;
    }
    a0 + a1
}

/// The branchless bulk scan behind the three contract checks: counts
/// violating rows (norm or label) without any per-row branch, so the
/// common all-clean case pipelines across rows. NaNs count as violations
/// (every comparison with them is false) — which is exactly why the check
/// is the negated `<=` rather than a `>` or a `partial_cmp`.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
#[inline]
fn count_violations(xs: &[f64], ys: &[f64], d: usize, y_ok: impl Fn(f64) -> bool) -> usize {
    let mut bad = 0usize;
    for (x, &y) in xs.chunks_exact(d).zip(ys) {
        bad += usize::from(!(sq_norm(x) <= NORM_SQ_MAX)) + usize::from(!y_ok(y));
    }
    bad
}

/// The cold path: re-scans to name the first violating tuple (the scan is
/// deterministic, so a counted violation is always found).
#[allow(clippy::neg_cmp_op_on_partial_ord)] // negated `<=` so NaN fails
fn locate_violation(
    xs: &[f64],
    ys: &[f64],
    d: usize,
    y_ok: impl Fn(f64) -> bool,
    y_err: impl Fn(usize, f64) -> DataError,
) -> DataError {
    for (i, (x, &y)) in xs.chunks_exact(d).zip(ys).enumerate() {
        let norm_sq = sq_norm(x);
        if !(norm_sq <= NORM_SQ_MAX) {
            return DataError::NotNormalized {
                detail: format!("‖x_{i}‖₂ = {} > 1", norm_sq.sqrt()),
            };
        }
        if !y_ok(y) {
            return y_err(i, y);
        }
    }
    unreachable!("a counted contract violation must be locatable")
}

/// Verifies the linear-regression contract (`‖x_i‖₂ ≤ 1`, `y_i ∈ [−1, 1]`,
/// Definition 1) over a row-major `k × d` block — the per-block form
/// streaming ingestion validates without materializing a [`Dataset`].
/// Tuple indices in error messages are block-local.
///
/// # Errors
/// [`DataError::NotNormalized`] naming the first violating tuple.
pub fn check_rows_normalized_linear(xs: &[f64], ys: &[f64], d: usize) -> Result<()> {
    debug_assert_eq!(xs.len(), ys.len() * d.max(1), "block shape mismatch");
    let y_ok = |y: f64| (-1.0 - NORM_TOL..=1.0 + NORM_TOL).contains(&y);
    if count_violations(xs, ys, d, y_ok) == 0 {
        return Ok(());
    }
    Err(locate_violation(xs, ys, d, y_ok, |i, y| {
        DataError::NotNormalized {
            detail: format!("y_{i} = {y} outside [−1, 1]"),
        }
    }))
}

/// Verifies the logistic-regression contract (`‖x_i‖₂ ≤ 1`, `y_i ∈ {0, 1}`,
/// Definition 2) over a row-major block; see
/// [`check_rows_normalized_linear`].
///
/// # Errors
/// [`DataError::NotNormalized`] naming the first violating tuple.
pub fn check_rows_normalized_logistic(xs: &[f64], ys: &[f64], d: usize) -> Result<()> {
    debug_assert_eq!(xs.len(), ys.len() * d.max(1), "block shape mismatch");
    let y_ok = |y: f64| y == 0.0 || y == 1.0;
    if count_violations(xs, ys, d, y_ok) == 0 {
        return Ok(());
    }
    Err(locate_violation(xs, ys, d, y_ok, |i, y| {
        DataError::NotNormalized {
            detail: format!("y_{i} = {y} not in {{0, 1}}"),
        }
    }))
}

/// Verifies the bounded-count contract (`‖x_i‖₂ ≤ 1`, `y_i ∈ [0, y_max]`)
/// over a row-major block; see [`check_rows_normalized_linear`].
///
/// # Errors
/// [`DataError::NotNormalized`] naming the first violating tuple, or
/// [`DataError::InvalidParameter`] for a non-positive/non-finite cap.
pub fn check_rows_normalized_counts(xs: &[f64], ys: &[f64], d: usize, y_max: f64) -> Result<()> {
    if !y_max.is_finite() || y_max <= 0.0 {
        return Err(DataError::InvalidParameter {
            name: "y_max",
            reason: format!("{y_max} must be finite and > 0"),
        });
    }
    debug_assert_eq!(xs.len(), ys.len() * d.max(1), "block shape mismatch");
    let y_ok = |y: f64| (0.0..=y_max + NORM_TOL).contains(&y);
    if count_violations(xs, ys, d, y_ok) == 0 {
        return Ok(());
    }
    Err(locate_violation(xs, ys, d, y_ok, |i, y| {
        DataError::NotNormalized {
            detail: format!("y_{i} = {y} outside [0, {y_max}]"),
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        let x = Matrix::from_rows(&[&[0.1, 0.2], &[0.3, 0.4], &[0.5, 0.6]]).unwrap();
        Dataset::new(x, vec![1.0, 0.0, 1.0]).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let ds = small();
        assert_eq!(ds.n(), 3);
        assert_eq!(ds.d(), 2);
        assert_eq!(ds.tuple(1), (&[0.3, 0.4][..], 0.0));
        assert_eq!(ds.feature_names(), &["x0".to_string(), "x1".to_string()]);
        assert_eq!(ds.tuples().count(), 3);
    }

    #[test]
    fn validation_errors() {
        let x = Matrix::from_rows(&[&[1.0]]).unwrap();
        assert!(matches!(
            Dataset::new(x.clone(), vec![1.0, 2.0]),
            Err(DataError::LengthMismatch { .. })
        ));
        assert!(matches!(
            Dataset::new(Matrix::zeros(0, 2), vec![]),
            Err(DataError::EmptyDataset)
        ));
        assert!(Dataset::with_names(x, vec![1.0], vec!["a".into(), "b".into()]).is_err());
    }

    #[test]
    fn subset_selects_rows() {
        let ds = small();
        let sub = ds.subset(&[2, 0]).unwrap();
        assert_eq!(sub.n(), 2);
        assert_eq!(sub.tuple(0), (&[0.5, 0.6][..], 1.0));
        assert_eq!(sub.tuple(1), (&[0.1, 0.2][..], 1.0));
        // Duplicates are allowed.
        assert_eq!(ds.subset(&[1, 1, 1]).unwrap().n(), 3);
        // Bad index rejected.
        assert!(ds.subset(&[3]).is_err());
        assert!(matches!(ds.subset(&[]), Err(DataError::EmptyDataset)));
    }

    #[test]
    fn select_features_reorders_columns() {
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]).unwrap();
        let ds =
            Dataset::with_names(x, vec![0.5], vec!["a".into(), "b".into(), "c".into()]).unwrap();
        let sel = ds.select_features(&["c", "a"]).unwrap();
        assert_eq!(sel.d(), 2);
        assert_eq!(sel.tuple(0).0, &[3.0, 1.0]);
        assert_eq!(sel.feature_names(), &["c".to_string(), "a".to_string()]);
        assert!(matches!(
            ds.select_features(&["nope"]),
            Err(DataError::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn linear_normalization_contract() {
        let ds = small();
        ds.check_normalized_linear().unwrap();

        let big_x = Matrix::from_rows(&[&[3.0, 4.0]]).unwrap();
        let bad = Dataset::new(big_x, vec![0.0]).unwrap();
        assert!(matches!(
            bad.check_normalized_linear(),
            Err(DataError::NotNormalized { .. })
        ));

        let ok_x = Matrix::from_rows(&[&[0.5, 0.5]]).unwrap();
        let bad_y = Dataset::new(ok_x, vec![2.0]).unwrap();
        assert!(bad_y.check_normalized_linear().is_err());
    }

    #[test]
    fn logistic_normalization_contract() {
        let ds = small();
        ds.check_normalized_logistic().unwrap();

        let x = Matrix::from_rows(&[&[0.5, 0.5]]).unwrap();
        let bad = Dataset::new(x, vec![0.5]).unwrap();
        assert!(matches!(
            bad.check_normalized_logistic(),
            Err(DataError::NotNormalized { .. })
        ));
    }

    #[test]
    fn columnar_view_is_exact_transpose_and_cached() {
        let ds = small();
        let xt = ds.columnar();
        assert_eq!(xt.rows(), ds.d());
        assert_eq!(xt.cols(), ds.n());
        for r in 0..ds.n() {
            for c in 0..ds.d() {
                assert_eq!(xt[(c, r)], ds.x()[(r, c)], "bit-exact transpose");
            }
        }
        // Repeated calls return the same cached allocation, not a rebuild.
        assert!(std::ptr::eq(ds.columnar(), xt));
    }

    #[test]
    fn columnar_on_reuse_waits_for_a_second_pass() {
        let ds = small();
        // First pass: no cache yet — the one-shot case stays row-major.
        assert!(ds.columnar_on_reuse().is_none());
        // Second pass: the reuse signal fires and the cache materialises.
        let xt = ds.columnar_on_reuse().expect("built on reuse");
        assert_eq!(xt.rows(), ds.d());
        // Once built, every pass gets the same cached view.
        assert!(std::ptr::eq(ds.columnar_on_reuse().unwrap(), xt));
        // An explicitly warmed dataset serves the view from pass one.
        let warm = small();
        let _ = warm.columnar();
        assert!(warm.columnar_on_reuse().is_some());
        // A clone carries the warmed cache along.
        assert!(warm.clone().columnar_on_reuse().is_some());
    }

    #[test]
    fn max_feature_norm_reports_worst_row() {
        let x = Matrix::from_rows(&[&[0.0, 0.1], &[0.6, 0.8]]).unwrap();
        let ds = Dataset::new(x, vec![0.0, 0.0]).unwrap();
        assert!((ds.max_feature_norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn counts_normalization_contract() {
        let x = Matrix::from_rows(&[&[0.5, 0.5], &[0.1, 0.0]]).unwrap();
        let ds = Dataset::new(x, vec![3.0, 0.0]).unwrap();
        ds.check_normalized_counts(8.0).unwrap();
        // Over the cap.
        assert!(ds.check_normalized_counts(2.0).is_err());
        // Negative counts rejected.
        let x2 = Matrix::from_rows(&[&[0.1, 0.1]]).unwrap();
        let neg = Dataset::new(x2, vec![-1.0]).unwrap();
        assert!(matches!(
            neg.check_normalized_counts(8.0),
            Err(DataError::NotNormalized { .. })
        ));
        // Bad cap rejected.
        assert!(matches!(
            ds.check_normalized_counts(0.0),
            Err(DataError::InvalidParameter { .. })
        ));
        assert!(ds.check_normalized_counts(f64::INFINITY).is_err());
    }

    #[test]
    fn augment_for_intercept_preserves_contract() {
        // Worst case: a unit-norm row must stay inside the ball.
        let x = Matrix::from_rows(&[&[0.6, 0.8], &[0.0, 0.0]]).unwrap();
        let ds = Dataset::new(x, vec![1.0, 0.0]).unwrap();
        let aug = ds.augment_for_intercept();
        assert_eq!(aug.d(), 3);
        assert_eq!(aug.n(), 2);
        aug.check_normalized_logistic().unwrap();
        assert!((aug.max_feature_norm() - 1.0).abs() < 1e-12);
        // The appended coordinate is constant 1/√2.
        let c = std::f64::consts::FRAC_1_SQRT_2;
        assert!((aug.tuple(0).0[2] - c).abs() < 1e-15);
        assert!((aug.tuple(1).0[2] - c).abs() < 1e-15);
        // Labels and names carried through.
        assert_eq!(aug.y(), ds.y());
        assert_eq!(aug.feature_names()[2], "(intercept)");
    }

    #[test]
    fn augmented_cache_is_shared_and_matches_fresh_augmentation() {
        let x = Matrix::from_rows(&[&[0.6, 0.8], &[0.0, 0.0]]).unwrap();
        let ds = Dataset::new(x, vec![1.0, 0.0]).unwrap();
        let a1: *const Dataset = ds.augmented_for_intercept_cached();
        let a2: *const Dataset = ds.augmented_for_intercept_cached();
        assert_eq!(a1, a2, "cache must hand out one shared instance");
        let cached = ds.augmented_for_intercept_cached();
        let fresh = ds.augment_for_intercept();
        assert_eq!(cached.x().as_slice(), fresh.x().as_slice());
        assert_eq!(cached.y(), fresh.y());
        assert_eq!(cached.feature_names(), fresh.feature_names());
        // The shared instance accumulates scans, so its columnar kernel
        // unlocks on reuse; a fresh augmentation never would.
        assert!(cached.columnar_on_reuse().is_none());
        assert!(cached.columnar_on_reuse().is_some());
    }

    #[test]
    fn augment_is_prediction_equivalent() {
        // x'ᵀω' with ω' = √2·(ω, b) equals xᵀω + b.
        let x = Matrix::from_rows(&[&[0.3, -0.2]]).unwrap();
        let ds = Dataset::new(x, vec![0.0]).unwrap();
        let aug = ds.augment_for_intercept();
        let (omega, b) = (vec![0.7, -0.4], 0.25);
        let mut omega_aug: Vec<f64> = omega.iter().map(|w| w * std::f64::consts::SQRT_2).collect();
        omega_aug.push(b * std::f64::consts::SQRT_2);
        let lhs = vecops::dot(aug.tuple(0).0, &omega_aug);
        let rhs = vecops::dot(ds.tuple(0).0, &omega) + b;
        assert!((lhs - rhs).abs() < 1e-12);
    }
}
