//! Synthetic census generation — the substitute for the paper's IPUMS
//! US (370,000 rows) and Brazil (190,000 rows) extracts.
//!
//! The paper's experiments (Section 7) regress **Annual Income** on the 13
//! remaining census attributes (Marital Status one-hot expanded into
//! *Is Single* / *Is Married*, giving 14 attributes total). The IPUMS
//! microdata cannot be redistributed, so this module generates datasets
//! with:
//!
//! * the same attribute list, domains and encodings;
//! * realistic marginals (ages, education years, work hours) and
//!   cross-correlations (income depends on education/hours/age/…, car
//!   ownership and dwelling ownership depend on income, marriage depends on
//!   age);
//! * a ground-truth income process that is *mostly* linear with additive
//!   noise plus a mild quadratic age term — so linear regression has signal
//!   but a non-zero irreducible error, exactly the regime the paper's
//!   figures show;
//! * two profiles, [`CensusProfile::us`] and [`CensusProfile::brazil`],
//!   differing in scale, education distribution and noise level (the paper
//!   consistently measures higher MSE on Brazil).
//!
//! Everything is driven by a caller-supplied seeded RNG, so experiments are
//! reproducible. See DESIGN.md §4 for why this substitution preserves the
//! paper's comparisons.

use rand::Rng;

use fm_linalg::Matrix;
use fm_privacy::gaussian;

use crate::dataset::Dataset;
use crate::schema::{AttributeKind, Schema};
use crate::{DataError, Result};

/// Name of the regression target attribute.
pub const LABEL: &str = "AnnualIncome";

/// The 13 predictor attributes, in canonical column order. The first
/// entries of this list form the paper's dimensionality subsets — see
/// [`attribute_subset`].
pub const FEATURES: [&str; 13] = [
    "Age",
    "Gender",
    "Education",
    "FamilySize",
    "Nativity",
    "DwellingOwnership",
    "NumAutomobiles",
    "IsSingle",
    "IsMarried",
    "NumChildren",
    "Disability",
    "WorkingHours",
    "YearsResiding",
];

/// Country-specific generation parameters.
#[derive(Debug, Clone)]
pub struct CensusProfile {
    /// Human-readable name ("US", "Brazil").
    pub name: &'static str,
    /// Cardinality of the full dataset in the paper.
    pub default_rows: usize,
    /// Mean years of education.
    pub edu_mean: f64,
    /// Probability of native birth.
    pub native_rate: f64,
    /// Income floor (currency units).
    pub base_income: f64,
    /// σ of the mean-one log-normal income shock (income inequality).
    pub lognorm_sigma: f64,
    /// Income domain cap.
    pub income_cap: f64,
    /// Per-year-of-education income coefficient.
    pub coef_education: f64,
    /// Per-weekly-hour income coefficient.
    pub coef_hours: f64,
}

impl CensusProfile {
    /// The profile standing in for IPUMS **US** (370k records).
    #[must_use]
    pub fn us() -> Self {
        CensusProfile {
            name: "US",
            default_rows: 370_000,
            edu_mean: 12.5,
            native_rate: 0.87,
            base_income: 8_000.0,
            lognorm_sigma: 0.50,
            income_cap: 450_000.0,
            coef_education: 3_200.0,
            coef_hours: 550.0,
        }
    }

    /// The profile standing in for IPUMS **Brazil** (190k records).
    ///
    /// Relative noise is higher and education lower, which (after
    /// normalization) yields the larger MSE range the paper reports for
    /// Brazil.
    #[must_use]
    pub fn brazil() -> Self {
        CensusProfile {
            name: "Brazil",
            default_rows: 190_000,
            edu_mean: 8.0,
            native_rate: 0.95,
            base_income: 2_000.0,
            lognorm_sigma: 0.65,
            income_cap: 130_000.0,
            coef_education: 1_400.0,
            coef_hours: 260.0,
        }
    }

    /// An income threshold near the median, used to binarize the label for
    /// logistic regression (Section 7 maps incomes above a predefined
    /// threshold to 1).
    #[must_use]
    pub fn income_threshold(&self) -> f64 {
        // Roughly the median of the generated income distribution: the
        // typical conditional mean times the log-normal median factor
        // exp(−σ²/2).
        let typical =
            self.base_income + self.coef_education * self.edu_mean + self.coef_hours * 26.0;
        typical * (-0.5 * self.lognorm_sigma * self.lognorm_sigma).exp()
    }
}

/// The full 14-attribute schema (13 predictors + [`LABEL`]).
#[must_use]
pub fn schema(profile: &CensusProfile) -> Schema {
    Schema::new()
        .with("Age", AttributeKind::Integer { min: 16, max: 95 })
        .with("Gender", AttributeKind::Binary)
        .with("Education", AttributeKind::Integer { min: 0, max: 17 })
        .with("FamilySize", AttributeKind::Integer { min: 1, max: 15 })
        .with("Nativity", AttributeKind::Binary)
        .with("DwellingOwnership", AttributeKind::Binary)
        .with("NumAutomobiles", AttributeKind::Integer { min: 0, max: 6 })
        .with("IsSingle", AttributeKind::Binary)
        .with("IsMarried", AttributeKind::Binary)
        .with("NumChildren", AttributeKind::Integer { min: 0, max: 10 })
        .with("Disability", AttributeKind::Binary)
        .with("WorkingHours", AttributeKind::Integer { min: 0, max: 99 })
        .with("YearsResiding", AttributeKind::Integer { min: 0, max: 60 })
        .with(
            LABEL,
            AttributeKind::Continuous {
                min: 0.0,
                max: profile.income_cap,
            },
        )
}

/// The predictor names for a paper "dimensionality" of 5, 8, 11 or 14
/// attributes (Table 2). Dimensionality counts include the label, so the
/// returned slices have 4, 7, 10 and 13 predictors respectively, matching
/// Section 7's three attribute subsets plus the full set.
///
/// # Errors
/// [`DataError::InvalidParameter`] for any other dimensionality.
pub fn attribute_subset(dimensionality: usize) -> Result<&'static [&'static str]> {
    match dimensionality {
        // Age, Gender, Education, Family Size (+ income).
        5 => Ok(&FEATURES[..4]),
        // + Nativity, Ownership of Dwelling, Number of Automobiles.
        8 => Ok(&FEATURES[..7]),
        // + Is Single, Is Married, Number of Children.
        11 => Ok(&FEATURES[..10]),
        // + Disability, Working Hours, Years Residing: everything.
        14 => Ok(&FEATURES[..13]),
        other => Err(DataError::InvalidParameter {
            name: "dimensionality",
            reason: format!("{other} not in {{5, 8, 11, 14}}"),
        }),
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

/// Generates `n` census records under `profile`.
///
/// Returns the raw (un-normalized) dataset with `x` holding the 13
/// predictors in [`FEATURES`] order and `y` holding raw Annual Income.
///
/// # Errors
/// [`DataError::InvalidParameter`] when `n == 0`.
pub fn generate(profile: &CensusProfile, n: usize, rng: &mut impl Rng) -> Result<Dataset> {
    if n == 0 {
        return Err(DataError::InvalidParameter {
            name: "n",
            reason: "at least one record required".to_string(),
        });
    }
    let d = FEATURES.len();
    let mut data = Vec::with_capacity(n * d);
    let mut incomes = Vec::with_capacity(n);

    for _ in 0..n {
        let rec = generate_record(profile, rng);
        data.extend_from_slice(&rec.features);
        incomes.push(rec.income);
    }
    let x = Matrix::from_vec(n, d, data)?;
    Dataset::with_names(x, incomes, FEATURES.iter().map(|s| s.to_string()).collect())
}

struct Record {
    features: [f64; 13],
    income: f64,
}

fn generate_record(profile: &CensusProfile, rng: &mut impl Rng) -> Record {
    // Age: truncated normal around 42.
    let age = gaussian::normal(rng, 42.0, 15.0).clamp(16.0, 95.0).round();

    let gender = f64::from(rng.gen_bool(0.5));

    // Marital status: three-way, age-dependent, then one-hot expanded the
    // way Section 7 describes (divorced/widowed ⇒ both flags false).
    let p_married = 0.75 * sigmoid((age - 28.0) / 6.0);
    let p_div_wid = 0.25 * sigmoid((age - 50.0) / 12.0);
    let u: f64 = rng.gen();
    let (is_single, is_married) = if u < p_married {
        (0.0, 1.0)
    } else if u < p_married + p_div_wid {
        (0.0, 0.0)
    } else {
        (1.0, 0.0)
    };

    // Education: country-specific mean, slightly higher for younger cohorts.
    let cohort_bonus = if age < 40.0 { 1.0 } else { 0.0 };
    let education = gaussian::normal(rng, profile.edu_mean + cohort_bonus, 3.2)
        .clamp(0.0, 17.0)
        .round();

    // Disability: rises with age.
    let disability = f64::from(rng.gen_bool((0.02 + 0.30 * sigmoid((age - 65.0) / 8.0)).min(1.0)));

    let nativity = f64::from(rng.gen_bool(profile.native_rate));

    // Working hours: zero for non-participants (more likely if disabled or
    // past retirement age), otherwise ≈ 40h.
    let p_not_working = (0.10 + 0.45 * disability + 0.50 * sigmoid((age - 67.0) / 4.0)).min(0.95);
    let hours = if rng.gen_bool(p_not_working) {
        0.0
    } else {
        gaussian::normal(rng, 40.0, 11.0).clamp(1.0, 99.0).round()
    };

    // Years residing at the current location: bounded by adult years.
    let max_residing = (age - 16.0).clamp(0.0, 60.0);
    let years_residing = (rng.gen::<f64>() * (max_residing + 1.0)).floor().min(60.0);

    // Family size / children: married couples run larger.
    let fam_mean = if is_married == 1.0 { 3.4 } else { 1.7 };
    let family_size = gaussian::normal(rng, fam_mean, 1.4)
        .clamp(1.0, 15.0)
        .round();
    let kid_mean = if is_married == 1.0 { 1.3 } else { 0.3 };
    let num_children = gaussian::normal(rng, kid_mean, 1.0)
        .clamp(0.0, (family_size - 1.0).max(0.0))
        .min(10.0)
        .round();

    // Ground-truth income process: a linear conditional mean with mild age
    // curvature, scaled by mean-one *log-normal* multiplicative noise —
    // census incomes are right-skewed, and that skew is what defeats
    // coarse-histogram synthesis (DPME/FP) while leaving the best linear
    // predictor (what FM estimates) unchanged: E[income | x] stays linear.
    let age_adult = age - 18.0;
    let linear_mean = (profile.base_income
        + profile.coef_education * education
        + profile.coef_hours * hours
        + 320.0 * age_adult
        - 3.4 * age_adult * age_adult
        + 0.08 * profile.base_income * is_married
        - 0.25 * profile.coef_education * 4.0 * disability
        + 0.05 * profile.coef_education * 4.0 * nativity
        - 0.06 * profile.coef_education * 4.0 * gender)
        .max(0.0);
    let sigma = profile.lognorm_sigma;
    let shock = (gaussian::normal(rng, 0.0, sigma) - 0.5 * sigma * sigma).exp();
    let income = (linear_mean * shock).clamp(0.0, profile.income_cap);

    // Wealth proxies derived from income.
    let income_frac = income / profile.income_cap;
    let num_autos = (gaussian::normal(rng, 4.5 * income_frac + 0.6, 0.8))
        .clamp(0.0, 6.0)
        .round();
    let dwelling = f64::from(
        rng.gen_bool((0.15 + 0.45 * sigmoid((age - 32.0) / 9.0) + 0.35 * income_frac).min(0.97)),
    );

    Record {
        features: [
            age,
            gender,
            education,
            family_size,
            nativity,
            dwelling,
            num_autos,
            is_single,
            is_married,
            num_children,
            disability,
            hours,
            years_residing,
        ],
        income,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(1234)
    }

    #[test]
    fn profiles_differ() {
        let us = CensusProfile::us();
        let br = CensusProfile::brazil();
        assert_eq!(us.default_rows, 370_000);
        assert_eq!(br.default_rows, 190_000);
        assert!(us.income_cap > br.income_cap);
        assert!(us.edu_mean > br.edu_mean);
    }

    #[test]
    fn schema_has_14_attributes() {
        let s = schema(&CensusProfile::us());
        assert_eq!(s.len(), 14);
        assert!(s.attribute(LABEL).is_ok());
        for f in FEATURES {
            assert!(s.attribute(f).is_ok(), "missing {f}");
        }
    }

    #[test]
    fn attribute_subsets_match_paper() {
        assert_eq!(attribute_subset(5).unwrap().len(), 4);
        assert_eq!(attribute_subset(8).unwrap().len(), 7);
        assert_eq!(attribute_subset(11).unwrap().len(), 10);
        assert_eq!(attribute_subset(14).unwrap().len(), 13);
        assert!(attribute_subset(6).is_err());
        // Subsets are nested.
        let s8 = attribute_subset(8).unwrap();
        let s5 = attribute_subset(5).unwrap();
        assert_eq!(&s8[..4], s5);
    }

    #[test]
    fn generated_rows_respect_schema_domains() {
        let profile = CensusProfile::us();
        let s = schema(&profile);
        let ds = generate(&profile, 500, &mut rng()).unwrap();
        assert_eq!(ds.n(), 500);
        assert_eq!(ds.d(), 13);
        for (x, y) in ds.tuples() {
            let mut row: Vec<f64> = x.to_vec();
            row.push(y);
            s.validate_row(&row).expect("row in domain");
        }
    }

    #[test]
    fn one_hot_marital_flags_are_exclusive() {
        let ds = generate(&CensusProfile::us(), 2_000, &mut rng()).unwrap();
        let is_single = 7;
        let is_married = 8;
        for (x, _) in ds.tuples() {
            assert!(x[is_single] + x[is_married] <= 1.0, "both flags set");
        }
        // All three statuses occur in a large sample.
        let singles: f64 = ds.tuples().map(|(x, _)| x[is_single]).sum();
        let marrieds: f64 = ds.tuples().map(|(x, _)| x[is_married]).sum();
        assert!(singles > 0.0 && marrieds > 0.0);
        assert!(singles + marrieds < ds.n() as f64, "divorced/widowed exist");
    }

    #[test]
    fn income_correlates_with_education() {
        let ds = generate(&CensusProfile::us(), 20_000, &mut rng()).unwrap();
        let edu: Vec<f64> = ds.tuples().map(|(x, _)| x[2]).collect();
        let inc: Vec<f64> = ds.y().to_vec();
        let corr = correlation(&edu, &inc);
        assert!(corr > 0.2, "education-income correlation {corr} too weak");
    }

    #[test]
    fn income_correlates_with_hours() {
        let ds = generate(&CensusProfile::us(), 20_000, &mut rng()).unwrap();
        let hours: Vec<f64> = ds.tuples().map(|(x, _)| x[11]).collect();
        let corr = correlation(&hours, ds.y());
        assert!(corr > 0.15, "hours-income correlation {corr} too weak");
    }

    #[test]
    fn threshold_splits_reasonably() {
        let profile = CensusProfile::us();
        let ds = generate(&profile, 20_000, &mut rng()).unwrap();
        let t = profile.income_threshold();
        let above = ds.y().iter().filter(|&&v| v > t).count() as f64 / ds.n() as f64;
        assert!(
            (0.2..=0.8).contains(&above),
            "threshold splits {above} of records"
        );
    }

    #[test]
    fn reproducible_generation() {
        let a = generate(&CensusProfile::brazil(), 100, &mut rng()).unwrap();
        let b = generate(&CensusProfile::brazil(), 100, &mut rng()).unwrap();
        assert_eq!(a.y(), b.y());
        assert_eq!(a.x().as_slice(), b.x().as_slice());
    }

    #[test]
    fn zero_rows_rejected() {
        assert!(generate(&CensusProfile::us(), 0, &mut rng()).is_err());
    }

    fn correlation(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len() as f64;
        let ma = a.iter().sum::<f64>() / n;
        let mb = b.iter().sum::<f64>() / n;
        let cov: f64 = a
            .iter()
            .zip(b)
            .map(|(x, y)| (x - ma) * (y - mb))
            .sum::<f64>()
            / n;
        let va: f64 = a.iter().map(|x| (x - ma) * (x - ma)).sum::<f64>() / n;
        let vb: f64 = b.iter().map(|y| (y - mb) * (y - mb)).sum::<f64>() / n;
        cov / (va.sqrt() * vb.sqrt())
    }
}
