//! The paper's two accuracy measures (Section 7), plus common companions.
//!
//! * Linear regression: **mean squared error**
//!   `(1/n)·Σ (y_i − x_iᵀω)²` on held-out data.
//! * Logistic regression: **misclassification rate** — the fraction of
//!   tuples whose predicted class (`P(y=1|x) > 0.5`) differs from the label.

/// Mean squared error between predictions and targets.
///
/// Returns `0.0` for empty input (a convention the CV harness relies on
/// never hitting; fold construction guarantees non-empty test sets).
#[must_use]
pub fn mse(predictions: &[f64], targets: &[f64]) -> f64 {
    debug_assert_eq!(predictions.len(), targets.len(), "mse: length mismatch");
    if predictions.is_empty() {
        return 0.0;
    }
    predictions
        .iter()
        .zip(targets)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / predictions.len() as f64
}

/// Mean absolute error.
#[must_use]
pub fn mae(predictions: &[f64], targets: &[f64]) -> f64 {
    debug_assert_eq!(predictions.len(), targets.len(), "mae: length mismatch");
    if predictions.is_empty() {
        return 0.0;
    }
    predictions
        .iter()
        .zip(targets)
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / predictions.len() as f64
}

/// Coefficient of determination `R²` (1 − SS_res/SS_tot); `0.0` when the
/// targets are constant (SS_tot = 0) and the residual is non-zero.
#[must_use]
pub fn r_squared(predictions: &[f64], targets: &[f64]) -> f64 {
    debug_assert_eq!(predictions.len(), targets.len(), "r²: length mismatch");
    if targets.is_empty() {
        return 0.0;
    }
    let mean = targets.iter().sum::<f64>() / targets.len() as f64;
    let ss_tot: f64 = targets.iter().map(|t| (t - mean) * (t - mean)).sum();
    let ss_res: f64 = predictions
        .iter()
        .zip(targets)
        .map(|(p, t)| (p - t) * (p - t))
        .sum();
    if ss_tot == 0.0 {
        return if ss_res == 0.0 { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

/// Fraction of probability predictions whose induced class
/// (`p > 0.5` ⇒ class 1) differs from the `{0, 1}` label.
#[must_use]
pub fn misclassification_rate(probabilities: &[f64], labels: &[f64]) -> f64 {
    debug_assert_eq!(
        probabilities.len(),
        labels.len(),
        "misclassification: length mismatch"
    );
    if probabilities.is_empty() {
        return 0.0;
    }
    let wrong = probabilities
        .iter()
        .zip(labels)
        .filter(|(p, l)| f64::from(**p > 0.5) != **l)
        .count();
    wrong as f64 / probabilities.len() as f64
}

/// Classification accuracy (`1 − misclassification_rate`).
#[must_use]
pub fn accuracy(probabilities: &[f64], labels: &[f64]) -> f64 {
    1.0 - misclassification_rate(probabilities, labels)
}

/// Mean and sample standard deviation of a score series — the aggregate the
/// experiment harness reports over CV repeats.
#[must_use]
pub fn mean_and_std(scores: &[f64]) -> (f64, f64) {
    (
        fm_linalg::vecops::mean(scores),
        fm_linalg::vecops::variance(scores).sqrt(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_known_values() {
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert_eq!(mse(&[0.0, 0.0], &[3.0, 4.0]), 12.5);
        assert_eq!(mse(&[], &[]), 0.0);
    }

    #[test]
    fn mae_known_values() {
        assert_eq!(mae(&[0.0, 0.0], &[3.0, -4.0]), 3.5);
        assert_eq!(mae(&[], &[]), 0.0);
    }

    #[test]
    fn r_squared_perfect_and_mean_predictor() {
        let targets = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(r_squared(&targets, &targets), 1.0);
        let mean_preds = [2.5; 4];
        assert!((r_squared(&mean_preds, &targets)).abs() < 1e-12);
    }

    #[test]
    fn r_squared_constant_targets() {
        assert_eq!(r_squared(&[2.0, 2.0], &[2.0, 2.0]), 1.0);
        assert_eq!(r_squared(&[1.0, 3.0], &[2.0, 2.0]), 0.0);
        assert_eq!(r_squared(&[], &[]), 0.0);
    }

    #[test]
    fn misclassification_basics() {
        // p > 0.5 ⇒ predicted 1.
        let probs = [0.9, 0.2, 0.6, 0.4];
        let labels = [1.0, 0.0, 0.0, 1.0];
        assert_eq!(misclassification_rate(&probs, &labels), 0.5);
        assert_eq!(accuracy(&probs, &labels), 0.5);
        assert_eq!(misclassification_rate(&[], &[]), 0.0);
    }

    #[test]
    fn boundary_probability_is_class_zero() {
        // The paper predicts 1 only when σ(xᵀω) > 0.5 strictly.
        assert_eq!(misclassification_rate(&[0.5], &[0.0]), 0.0);
        assert_eq!(misclassification_rate(&[0.5], &[1.0]), 1.0);
    }

    #[test]
    fn mean_and_std_aggregation() {
        let (m, s) = mean_and_std(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12);
        let (m1, s1) = mean_and_std(&[5.0]);
        assert_eq!((m1, s1), (5.0, 0.0));
    }
}
