//! Minimal synthetic generators with known ground truth.
//!
//! Unlike [`crate::census`] (which mimics a messy real-world table), these
//! produce datasets *already in the paper's normalized domain* — features on
//! the unit sphere, labels in `[−1, 1]` or `{0, 1}` — from a known
//! parameter vector `ω*`. They back unit tests, examples, and the
//! convergence experiments for Theorem 2 (output of Algorithm 1 approaches
//! the true minimiser as `n → ∞`).

use rand::Rng;

use fm_linalg::{vecops, Matrix};
use fm_privacy::gaussian;

use crate::dataset::Dataset;

/// Draws a feature vector uniformly from the `d`-dimensional ball of radius
/// `radius` (Muller's method: normalized Gaussian direction × scaled radius).
pub fn sample_in_ball(rng: &mut impl Rng, d: usize, radius: f64) -> Vec<f64> {
    let mut x = vec![0.0; d];
    gaussian::standard_normal_into(rng, &mut x);
    let norm = vecops::norm2(&x);
    if norm == 0.0 {
        return x; // measure-zero: origin is fine
    }
    // r ~ radius · U^{1/d} gives uniform volume density.
    let r = radius * rng.gen::<f64>().powf(1.0 / d as f64);
    vecops::scale(r / norm, &mut x);
    x
}

/// A ground-truth parameter vector with entries in `[−1/√d, 1/√d]`
/// (bounded so that `|xᵀω*| ≤ 1`, keeping clean labels in `[−1, 1]`).
pub fn ground_truth_weights(rng: &mut impl Rng, d: usize) -> Vec<f64> {
    let bound = 1.0 / (d as f64).sqrt();
    (0..d).map(|_| rng.gen_range(-bound..bound)).collect()
}

/// Generates a linear-regression dataset `y = xᵀω* + N(0, noise_std)`,
/// clamped to `[−1, 1]`, with `x` uniform in the unit ball.
///
/// The returned dataset satisfies Definition 1's contract exactly.
pub fn linear_dataset(rng: &mut impl Rng, n: usize, d: usize, noise_std: f64) -> Dataset {
    let w = ground_truth_weights(rng, d);
    linear_dataset_with_weights(rng, n, &w, noise_std)
}

/// As [`linear_dataset`] but with caller-supplied ground truth `ω*`.
pub fn linear_dataset_with_weights(
    rng: &mut impl Rng,
    n: usize,
    w: &[f64],
    noise_std: f64,
) -> Dataset {
    let d = w.len();
    let mut data = Vec::with_capacity(n * d);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let x = sample_in_ball(rng, d, 1.0);
        let label = (vecops::dot(&x, w) + gaussian::normal(rng, 0.0, noise_std)).clamp(-1.0, 1.0);
        data.extend_from_slice(&x);
        y.push(label);
    }
    let x = Matrix::from_vec(n, d, data).expect("sized data");
    Dataset::new(x, y).expect("non-empty by construction")
}

/// Replaces each label of `data` independently with `value` with
/// probability `frac` — the label-contamination model behind the
/// robust-regression tests and examples (sensor saturation / data-entry
/// junk: in-contract, feature-independent outliers). `value` should lie
/// in the task's label range so the contaminated dataset still satisfies
/// the normalized-domain contract.
pub fn inject_label_outliers(rng: &mut impl Rng, data: &Dataset, frac: f64, value: f64) -> Dataset {
    let y: Vec<f64> = data
        .y()
        .iter()
        .map(|&y| if rng.gen_bool(frac) { value } else { y })
        .collect();
    Dataset::new(data.x().clone(), y).expect("shape preserved")
}

/// Generates a logistic-regression dataset: `P(y = 1 | x) = σ(s·xᵀω*)`
/// with `x` uniform in the unit ball and `s` a steepness factor (larger
/// `s` ⇒ more separable classes).
///
/// The returned dataset satisfies Definition 2's contract exactly.
pub fn logistic_dataset(rng: &mut impl Rng, n: usize, d: usize, steepness: f64) -> Dataset {
    let w = ground_truth_weights(rng, d);
    logistic_dataset_with_weights(rng, n, &w, steepness)
}

/// As [`logistic_dataset`] but with caller-supplied ground truth `ω*`.
pub fn logistic_dataset_with_weights(
    rng: &mut impl Rng,
    n: usize,
    w: &[f64],
    steepness: f64,
) -> Dataset {
    let d = w.len();
    let mut data = Vec::with_capacity(n * d);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let x = sample_in_ball(rng, d, 1.0);
        let p = 1.0 / (1.0 + (-steepness * vecops::dot(&x, w)).exp());
        let label = f64::from(rng.gen_bool(p.clamp(0.0, 1.0)));
        data.extend_from_slice(&x);
        y.push(label);
    }
    let x = Matrix::from_vec(n, d, data).expect("sized data");
    Dataset::new(x, y).expect("non-empty by construction")
}

/// Draws from a Poisson distribution with mean `rate` via Knuth's
/// multiplication method — exact, and O(rate) per draw, which is fine for
/// the small rates (`≤ e`) that normalized-domain Poisson regression
/// produces.
///
/// # Panics
/// Debug-asserts `rate` is finite and non-negative (generator-internal use).
pub fn sample_poisson(rng: &mut impl Rng, rate: f64) -> u64 {
    debug_assert!(rate.is_finite() && rate >= 0.0, "rate {rate}");
    if rate == 0.0 {
        return 0;
    }
    let limit = (-rate).exp();
    let mut k = 0u64;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= limit {
            return k;
        }
        k += 1;
    }
}

/// Generates a Poisson-regression dataset: `y ~ Poisson(exp(xᵀω*))` with
/// `x` uniform in the unit ball, counts clipped to `y_max` (the bounded-
/// label contract DP Poisson regression requires for finite sensitivity).
///
/// With `‖ω*‖ ≤ 1` the rates lie in `[1/e, e]`, so a cap of 8–10 clips
/// essentially nothing (P[Poisson(e) > 8] < 0.3%).
pub fn poisson_dataset(rng: &mut impl Rng, n: usize, d: usize, y_max: f64) -> Dataset {
    let w = ground_truth_weights(rng, d);
    poisson_dataset_with_weights(rng, n, &w, y_max)
}

/// As [`poisson_dataset`] but with caller-supplied ground truth `ω*`.
pub fn poisson_dataset_with_weights(
    rng: &mut impl Rng,
    n: usize,
    w: &[f64],
    y_max: f64,
) -> Dataset {
    let d = w.len();
    let mut data = Vec::with_capacity(n * d);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let x = sample_in_ball(rng, d, 1.0);
        let rate = vecops::dot(&x, w).exp();
        let count = (sample_poisson(rng, rate) as f64).min(y_max);
        data.extend_from_slice(&x);
        y.push(count);
    }
    let x = Matrix::from_vec(n, d, data).expect("sized data");
    Dataset::new(x, y).expect("non-empty by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(7)
    }

    #[test]
    fn ball_samples_stay_inside() {
        let mut r = rng();
        for _ in 0..500 {
            let x = sample_in_ball(&mut r, 5, 1.0);
            assert!(vecops::norm2(&x) <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn ball_samples_fill_the_volume() {
        // Mean radius of uniform-in-ball in d dims is d/(d+1).
        let mut r = rng();
        let d = 3;
        let n = 20_000;
        let mean_r: f64 = (0..n)
            .map(|_| vecops::norm2(&sample_in_ball(&mut r, d, 1.0)))
            .sum::<f64>()
            / n as f64;
        assert!((mean_r - 0.75).abs() < 0.01, "mean radius {mean_r}");
    }

    #[test]
    fn ground_truth_keeps_labels_bounded() {
        let mut r = rng();
        let w = ground_truth_weights(&mut r, 8);
        assert!(vecops::norm_inf(&w) <= 1.0 / (8.0_f64).sqrt());
    }

    #[test]
    fn linear_dataset_contract() {
        let mut r = rng();
        let ds = linear_dataset(&mut r, 300, 4, 0.05);
        assert_eq!(ds.n(), 300);
        assert_eq!(ds.d(), 4);
        ds.check_normalized_linear().unwrap();
    }

    #[test]
    fn noiseless_linear_dataset_is_exact() {
        let mut r = rng();
        let w = vec![0.2, -0.3];
        let ds = linear_dataset_with_weights(&mut r, 100, &w, 0.0);
        for (x, y) in ds.tuples() {
            assert!((vecops::dot(x, &w) - y).abs() < 1e-12);
        }
    }

    #[test]
    fn logistic_dataset_contract() {
        let mut r = rng();
        let ds = logistic_dataset(&mut r, 300, 4, 8.0);
        ds.check_normalized_logistic().unwrap();
        // Both classes should appear.
        let ones = ds.y().iter().filter(|&&v| v == 1.0).count();
        assert!(ones > 0 && ones < 300);
    }

    #[test]
    fn steeper_logistic_is_more_separable() {
        let mut r = rng();
        let w = vec![0.5, 0.5];
        // With huge steepness labels almost equal sign(xᵀω).
        let ds = logistic_dataset_with_weights(&mut r, 2_000, &w, 100.0);
        let agree = ds
            .tuples()
            .filter(|(x, y)| f64::from(vecops::dot(x, &w) > 0.0) == *y)
            .count() as f64
            / 2_000.0;
        assert!(agree > 0.95, "agreement {agree}");
    }

    #[test]
    fn reproducibility() {
        let a = linear_dataset(&mut rng(), 50, 3, 0.1);
        let b = linear_dataset(&mut rng(), 50, 3, 0.1);
        assert_eq!(a.y(), b.y());
    }

    #[test]
    fn poisson_sampler_matches_mean_and_variance() {
        let mut r = rng();
        let rate = 2.3;
        let n = 40_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| sample_poisson(&mut r, rate) as f64)
            .collect();
        let mean = vecops::mean(&samples);
        let var = vecops::variance(&samples);
        // Poisson: mean = variance = rate.
        assert!((mean - rate).abs() < 0.05, "mean {mean}");
        assert!((var - rate).abs() < 0.15, "variance {var}");
    }

    #[test]
    fn poisson_sampler_zero_rate() {
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(sample_poisson(&mut r, 0.0), 0);
        }
    }

    #[test]
    fn poisson_dataset_contract() {
        let mut r = rng();
        let ds = poisson_dataset(&mut r, 500, 3, 8.0);
        assert_eq!(ds.n(), 500);
        ds.check_normalized_counts(8.0).unwrap();
        // Counts are non-negative integers under the cap.
        for &y in ds.y() {
            assert!((0.0..=8.0).contains(&y) && y.fract() == 0.0);
        }
        // A healthy mix of zero and positive counts (rates ∈ [1/e, e]).
        let zeros = ds.y().iter().filter(|&&v| v == 0.0).count();
        assert!(zeros > 50 && zeros < 450, "zeros {zeros}");
    }

    #[test]
    fn poisson_dataset_mean_tracks_ground_truth_rate() {
        let mut r = rng();
        let w = vec![0.6, 0.0];
        let ds = poisson_dataset_with_weights(&mut r, 60_000, &w, 20.0);
        // E[y | x] = exp(0.6·x₀): check the aggregate over the positive-x₀
        // half vs the negative-x₀ half.
        let (mut hi_sum, mut hi_n, mut lo_sum, mut lo_n) = (0.0, 0usize, 0.0, 0usize);
        for (x, y) in ds.tuples() {
            if x[0] > 0.3 {
                hi_sum += y;
                hi_n += 1;
            } else if x[0] < -0.3 {
                lo_sum += y;
                lo_n += 1;
            }
        }
        let hi_mean = hi_sum / hi_n as f64;
        let lo_mean = lo_sum / lo_n as f64;
        assert!(hi_mean > lo_mean * 1.3, "hi {hi_mean} lo {lo_mean}");
    }
}
