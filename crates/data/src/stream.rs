//! Streaming row ingestion: [`RowSource`] and friends.
//!
//! The Functional Mechanism's only interaction with data is the one-pass
//! accumulation of polynomial coefficients (Algorithm 1) — a sum over
//! tuples that never needs the dataset in memory. This module provides the
//! ingestion surface that matches that shape: a [`RowSource`] yields the
//! logical dataset as a sequence of bounded [`RowBlock`]s, so a fit can
//! run out-of-core (CSV files larger than RAM via [`CsvStreamSource`]),
//! across shards ([`ShardedSource`], or shard-at-a-time through the
//! estimators' `partial_fit` API in `fm-core`), or over a plain
//! materialized [`Dataset`] ([`InMemorySource`]) — all through one trait.
//!
//! Sources are *transport*, not semantics: the chunking a source happens
//! to deliver never influences results. `fm-core`'s streaming accumulator
//! re-chunks every stream to its own fixed chunk size, so the released
//! coefficients are bit-identical for any block sizing or shard split (the
//! facade's `tests/streaming_equivalence.rs` pins this).

use std::fs::File;
use std::io::{BufRead, BufReader, Lines, Read};
use std::path::Path;

use fm_linalg::Matrix;

use crate::csv::parse_numeric_row;
use crate::dataset::Dataset;
use crate::normalize::Normalizer;
use crate::{DataError, Result};

/// A bounded, owned block of rows: the unit a [`RowSource`] yields.
///
/// `xs` is a row-major `rows × d` feature block, `ys` the matching labels.
/// Blocks are plain data — validation against an objective's normalized-
/// domain contract happens where they are consumed (see
/// `fm_data::dataset::check_rows_normalized_linear` and friends).
#[derive(Debug, Clone, PartialEq)]
pub struct RowBlock {
    xs: Vec<f64>,
    ys: Vec<f64>,
    d: usize,
}

impl RowBlock {
    /// Builds a block from a row-major feature buffer and labels.
    ///
    /// # Errors
    /// * [`DataError::InvalidParameter`] for `d = 0`.
    /// * [`DataError::LengthMismatch`] unless `xs.len() == ys.len()·d`.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>, d: usize) -> Result<Self> {
        if d == 0 {
            return Err(DataError::InvalidParameter {
                name: "d",
                reason: "a row block needs at least one feature column".to_string(),
            });
        }
        if xs.len() != ys.len() * d {
            return Err(DataError::LengthMismatch {
                rows: xs.len() / d,
                labels: ys.len(),
            });
        }
        Ok(RowBlock { xs, ys, d })
    }

    /// The row-major `rows × d` feature buffer.
    #[must_use]
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The labels, one per row.
    #[must_use]
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// The feature dimensionality `d`.
    #[must_use]
    pub fn d(&self) -> usize {
        self.d
    }

    /// Number of rows in this block.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.ys.len()
    }

    /// The footnote-2 intercept augmentation of this block: each row maps
    /// to `(x/√2, 1/√2)` at dimension `d + 1`, operation-for-operation the
    /// same arithmetic as [`Dataset::augment_for_intercept`], so a
    /// streamed fit with an intercept stays **bit-identical** to the
    /// in-memory one.
    #[must_use]
    pub fn augment_for_intercept(&self) -> RowBlock {
        let inv_sqrt2 = std::f64::consts::FRAC_1_SQRT_2;
        let d = self.d;
        let mut xs = Vec::with_capacity(self.rows() * (d + 1));
        for row in self.xs.chunks_exact(d) {
            for &v in row {
                xs.push(v * inv_sqrt2);
            }
            xs.push(inv_sqrt2);
        }
        RowBlock {
            xs,
            ys: self.ys.clone(),
            d: d + 1,
        }
    }
}

/// An iterator-of-chunks over a logical dataset: the streaming ingestion
/// trait every fit entry point can consume.
///
/// Contract for implementors:
///
/// * [`RowSource::next_block`] yields **at most** `max_rows` rows per call
///   (callers size their staging buffers by it — this is the out-of-core
///   memory cap), never an empty block, and `None` exactly once the
///   source is exhausted;
/// * every yielded block has dimensionality [`RowSource::dim`];
/// * the concatenation of all yielded blocks, in order, is the logical
///   dataset.
///
/// The trait is dyn-compatible: `&mut dyn RowSource` is what the
/// estimator-level `fit_stream` entry points accept.
pub trait RowSource {
    /// Feature dimensionality `d` of every block this source yields.
    fn dim(&self) -> usize;

    /// Exact number of rows still to come, when the source knows it
    /// (in-memory and sharded-in-memory sources do; a CSV stream does
    /// not). Purely advisory.
    fn hint_rows(&self) -> Option<usize> {
        None
    }

    /// Yields the next block of at most `max_rows.max(1)` rows, or `None`
    /// once exhausted.
    ///
    /// # Errors
    /// Transport errors — I/O, parse failures — as [`DataError`].
    fn next_block(&mut self, max_rows: usize) -> Result<Option<RowBlock>>;
}

impl<S: RowSource + ?Sized> RowSource for &mut S {
    fn dim(&self) -> usize {
        (**self).dim()
    }
    fn hint_rows(&self) -> Option<usize> {
        (**self).hint_rows()
    }
    fn next_block(&mut self, max_rows: usize) -> Result<Option<RowBlock>> {
        (**self).next_block(max_rows)
    }
}

impl<S: RowSource + ?Sized> RowSource for Box<S> {
    fn dim(&self) -> usize {
        (**self).dim()
    }
    fn hint_rows(&self) -> Option<usize> {
        (**self).hint_rows()
    }
    fn next_block(&mut self, max_rows: usize) -> Result<Option<RowBlock>> {
        (**self).next_block(max_rows)
    }
}

/// A [`RowSource`] over a materialized [`Dataset`]: the adapter that makes
/// `fit(&Dataset)` a special case of `fit_stream`.
#[derive(Debug)]
pub struct InMemorySource<'a> {
    data: &'a Dataset,
    pos: usize,
}

impl<'a> InMemorySource<'a> {
    /// Streams `data` from its first row.
    #[must_use]
    pub fn new(data: &'a Dataset) -> Self {
        InMemorySource { data, pos: 0 }
    }

    /// Rewinds to the first row (sources are single-pass; reuse needs an
    /// explicit reset).
    pub fn reset(&mut self) {
        self.pos = 0;
    }
}

impl RowSource for InMemorySource<'_> {
    fn dim(&self) -> usize {
        self.data.d()
    }

    fn hint_rows(&self) -> Option<usize> {
        Some(self.data.n() - self.pos)
    }

    fn next_block(&mut self, max_rows: usize) -> Result<Option<RowBlock>> {
        let n = self.data.n();
        if self.pos >= n {
            return Ok(None);
        }
        let d = self.data.d();
        let hi = (self.pos + max_rows.max(1)).min(n);
        let xs = self.data.x().as_slice()[self.pos * d..hi * d].to_vec();
        let ys = self.data.y()[self.pos..hi].to_vec();
        self.pos = hi;
        Ok(Some(RowBlock { xs, ys, d }))
    }
}

/// How [`CsvStreamSource`] maps the raw label column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LabelTransform {
    /// Pass the parsed label through unchanged.
    Raw,
    /// The Definition-1 affine map of the label domain onto `[−1, 1]`
    /// (requires a [`Normalizer`]).
    Linear,
    /// Threshold into `{0, 1}` at the given raw-unit cutoff (Definition 2).
    Binarize {
        /// Labels strictly above this raw value become `1.0`.
        threshold: f64,
    },
}

/// A [`RowSource`] that reads, normalizes and clamps rows straight out of
/// a numeric CSV (same dialect as [`crate::csv::read_dataset`]: one header
/// row, label last) **without materializing the file** — the out-of-core
/// entry point. Peak memory is one [`RowBlock`] of the caller's requested
/// size, whatever the file size.
///
/// With a [`Normalizer`] attached ([`CsvStreamSource::with_normalizer`]),
/// each row passes through the paper's footnote-1 feature map (clamp to
/// the declared domain, then scale into the `1/√d` box) and the chosen
/// [`LabelTransform`] as it is read — arithmetic identical to the
/// materialized [`Normalizer::normalize_linear`] path, so streamed and
/// in-memory pipelines release bit-identical coefficients.
#[derive(Debug)]
pub struct CsvStreamSource<R> {
    lines: Lines<BufReader<R>>,
    names: Vec<String>,
    d: usize,
    /// 1-based line number of the last line read (the header is line 1).
    line: usize,
    normalizer: Option<(Normalizer, LabelTransform)>,
}

impl CsvStreamSource<File> {
    /// Opens a CSV file for streaming.
    ///
    /// # Errors
    /// [`DataError::Io`] / [`DataError::Parse`] on open or header failure.
    pub fn open(path: &Path) -> Result<Self> {
        CsvStreamSource::from_reader(File::open(path)?)
    }
}

impl<R: Read> CsvStreamSource<R> {
    /// Streams CSV rows from any reader; the header row is consumed
    /// immediately to fix the dimensionality.
    ///
    /// # Errors
    /// [`DataError::Io`] / [`DataError::Parse`] on a missing or too-narrow
    /// header.
    pub fn from_reader(r: R) -> Result<Self> {
        let mut lines = BufReader::new(r).lines();
        let header = lines.next().ok_or(DataError::Parse {
            line: 1,
            detail: "empty file".to_string(),
        })??;
        let columns: Vec<String> = header.split(',').map(|s| s.trim().to_string()).collect();
        if columns.len() < 2 {
            return Err(DataError::Parse {
                line: 1,
                detail: "need at least one feature column and a label column".to_string(),
            });
        }
        let d = columns.len() - 1;
        Ok(CsvStreamSource {
            lines,
            names: columns[..d].to_vec(),
            d,
            line: 1,
            normalizer: None,
        })
    }

    /// Attaches per-row normalization: footnote-1 feature scaling plus the
    /// chosen label transform.
    ///
    /// # Errors
    /// [`DataError::InvalidParameter`] when the normalizer's feature count
    /// differs from the CSV's, or [`LabelTransform::Linear`] is requested —
    /// it needs the normalizer's label bounds, which are part of it, so
    /// this can only fail on the arity.
    pub fn with_normalizer(
        mut self,
        normalizer: Normalizer,
        label: LabelTransform,
    ) -> Result<Self> {
        if normalizer.d() != self.d {
            return Err(DataError::InvalidParameter {
                name: "normalizer",
                reason: format!(
                    "normalizer expects {} features, CSV has {}",
                    normalizer.d(),
                    self.d
                ),
            });
        }
        self.normalizer = Some((normalizer, label));
        Ok(self)
    }

    /// The feature names from the header, in column order.
    #[must_use]
    pub fn feature_names(&self) -> &[String] {
        &self.names
    }
}

impl<R: Read> RowSource for CsvStreamSource<R> {
    fn dim(&self) -> usize {
        self.d
    }

    fn next_block(&mut self, max_rows: usize) -> Result<Option<RowBlock>> {
        let want = max_rows.max(1);
        let d = self.d;
        let mut raw_row: Vec<f64> = Vec::with_capacity(d);
        let mut xs = Vec::with_capacity(want * d);
        let mut ys = Vec::with_capacity(want);
        while ys.len() < want {
            let Some(line) = self.lines.next() else { break };
            let line = line?;
            self.line += 1;
            if line.trim().is_empty() {
                continue;
            }
            raw_row.clear();
            let y_raw = parse_numeric_row(&line, d, self.line, &mut raw_row)?;
            match &self.normalizer {
                None => {
                    xs.extend_from_slice(&raw_row);
                    ys.push(y_raw);
                }
                Some((norm, label)) => {
                    norm.normalize_features_row(&raw_row, &mut xs)?;
                    ys.push(match *label {
                        LabelTransform::Raw => y_raw,
                        LabelTransform::Linear => norm.normalize_label(y_raw),
                        LabelTransform::Binarize { threshold } => {
                            if y_raw > threshold {
                                1.0
                            } else {
                                0.0
                            }
                        }
                    });
                }
            }
        }
        if ys.is_empty() {
            Ok(None)
        } else {
            Ok(Some(RowBlock { xs, ys, d }))
        }
    }
}

/// A [`RowSource`] that concatenates several sources of equal
/// dimensionality — disjoint shards presented as one logical dataset.
/// Blocks are drawn from the shards in order; shard boundaries are
/// invisible to the consumer (and, because `fm-core`'s accumulator
/// re-chunks anyway, can never perturb released coefficients).
#[derive(Debug)]
pub struct ShardedSource<S> {
    shards: Vec<S>,
    current: usize,
}

impl<S: RowSource> ShardedSource<S> {
    /// Concatenates `shards`.
    ///
    /// # Errors
    /// [`DataError::InvalidParameter`] for an empty shard list or
    /// mismatched dimensionalities.
    pub fn new(shards: Vec<S>) -> Result<Self> {
        let Some(first) = shards.first() else {
            return Err(DataError::InvalidParameter {
                name: "shards",
                reason: "need at least one shard".to_string(),
            });
        };
        let d = first.dim();
        if let Some(bad) = shards.iter().position(|s| s.dim() != d) {
            return Err(DataError::InvalidParameter {
                name: "shards",
                reason: format!(
                    "shard {bad} has dimensionality {}, shard 0 has {d}",
                    shards[bad].dim()
                ),
            });
        }
        Ok(ShardedSource { shards, current: 0 })
    }

    /// Number of shards.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }
}

impl<S: RowSource> RowSource for ShardedSource<S> {
    fn dim(&self) -> usize {
        self.shards[0].dim()
    }

    fn hint_rows(&self) -> Option<usize> {
        self.shards[self.current..]
            .iter()
            .map(RowSource::hint_rows)
            .sum()
    }

    fn next_block(&mut self, max_rows: usize) -> Result<Option<RowBlock>> {
        while self.current < self.shards.len() {
            if let Some(block) = self.shards[self.current].next_block(max_rows)? {
                return Ok(Some(block));
            }
            self.current += 1;
        }
        Ok(None)
    }
}

/// A [`RowSource`] adapter applying the footnote-2 intercept augmentation
/// to every block (dimensionality `d + 1`): what `fm-core`'s streaming fit
/// pipeline wraps a source in when `fit_intercept` is on.
#[derive(Debug)]
pub struct InterceptAugmentSource<S>(pub S);

impl<S: RowSource> RowSource for InterceptAugmentSource<S> {
    fn dim(&self) -> usize {
        self.0.dim() + 1
    }

    fn hint_rows(&self) -> Option<usize> {
        self.0.hint_rows()
    }

    fn next_block(&mut self, max_rows: usize) -> Result<Option<RowBlock>> {
        Ok(self
            .0
            .next_block(max_rows)?
            .map(|b| b.augment_for_intercept()))
    }
}

/// Rows per block [`materialize`] requests while draining a source.
const MATERIALIZE_BLOCK_ROWS: usize = 8_192;

/// Drains a source into a materialized [`Dataset`] (default feature
/// names) — the fallback estimators without a native streaming path use,
/// and the bridge back from the streaming world for anything that still
/// needs random access.
///
/// # Errors
/// Transport errors from the source; [`DataError::EmptyDataset`] when the
/// source yields no rows.
pub fn materialize<S: RowSource + ?Sized>(source: &mut S) -> Result<Dataset> {
    let d = source.dim();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    while let Some(block) = source.next_block(MATERIALIZE_BLOCK_ROWS)? {
        debug_assert_eq!(block.d(), d, "source yielded a block of foreign arity");
        xs.extend_from_slice(block.xs());
        ys.extend_from_slice(block.ys());
    }
    if ys.is_empty() {
        return Err(DataError::EmptyDataset);
    }
    let x = Matrix::from_vec(ys.len(), d, xs)?;
    Dataset::new(x, ys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttributeKind;
    use crate::Schema;

    fn small() -> Dataset {
        let x = Matrix::from_rows(&[
            &[0.1, 0.2],
            &[0.3, 0.4],
            &[0.5, 0.6],
            &[0.0, -0.1],
            &[0.2, -0.3],
        ])
        .unwrap();
        Dataset::new(x, vec![1.0, 0.0, 1.0, -0.5, 0.25]).unwrap()
    }

    #[test]
    fn row_block_validates_shapes() {
        assert!(RowBlock::new(vec![1.0, 2.0], vec![0.5], 2).is_ok());
        assert!(matches!(
            RowBlock::new(vec![1.0], vec![0.5], 2),
            Err(DataError::LengthMismatch { .. })
        ));
        assert!(RowBlock::new(vec![], vec![], 0).is_err());
    }

    #[test]
    fn in_memory_source_streams_every_row_in_order() {
        let data = small();
        for max_rows in [1usize, 2, 3, 5, 100] {
            let mut src = InMemorySource::new(&data);
            assert_eq!(src.dim(), 2);
            assert_eq!(src.hint_rows(), Some(5));
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            while let Some(b) = src.next_block(max_rows).unwrap() {
                assert!(b.rows() <= max_rows && b.rows() > 0);
                assert_eq!(b.d(), 2);
                xs.extend_from_slice(b.xs());
                ys.extend_from_slice(b.ys());
            }
            assert_eq!(xs, data.x().as_slice());
            assert_eq!(ys, data.y());
            assert_eq!(src.hint_rows(), Some(0));
            // Exhausted stays exhausted; reset rewinds.
            assert!(src.next_block(4).unwrap().is_none());
            src.reset();
            assert!(src.next_block(4).unwrap().is_some());
        }
    }

    #[test]
    fn materialize_roundtrips_in_memory() {
        let data = small();
        let back = materialize(&mut InMemorySource::new(&data)).unwrap();
        assert_eq!(back.x().as_slice(), data.x().as_slice());
        assert_eq!(back.y(), data.y());
        // Empty source is refused.
        let mut drained = InMemorySource::new(&data);
        while drained.next_block(64).unwrap().is_some() {}
        assert!(matches!(
            materialize(&mut drained),
            Err(DataError::EmptyDataset)
        ));
    }

    #[test]
    fn sharded_source_concatenates_in_order() {
        let data = small();
        let (a, b) = (
            data.subset(&[0, 1]).unwrap(),
            data.subset(&[2, 3, 4]).unwrap(),
        );
        let mut sharded =
            ShardedSource::new(vec![InMemorySource::new(&a), InMemorySource::new(&b)]).unwrap();
        assert_eq!(sharded.num_shards(), 2);
        assert_eq!(sharded.hint_rows(), Some(5));
        let merged = materialize(&mut sharded).unwrap();
        assert_eq!(merged.x().as_slice(), data.x().as_slice());
        assert_eq!(merged.y(), data.y());
    }

    #[test]
    fn sharded_source_rejects_bad_shards() {
        assert!(ShardedSource::<InMemorySource>::new(vec![]).is_err());
        let two = small();
        let one_col = two.select_features(&["x0"]).unwrap();
        assert!(ShardedSource::new(vec![
            InMemorySource::new(&two),
            InMemorySource::new(&one_col)
        ])
        .is_err());
    }

    #[test]
    fn boxed_dyn_sources_compose() {
        let data = small();
        let shards: Vec<Box<dyn RowSource>> = vec![
            Box::new(InMemorySource::new(&data)),
            Box::new(InMemorySource::new(&data)),
        ];
        let mut sharded = ShardedSource::new(shards).unwrap();
        assert_eq!(materialize(&mut sharded).unwrap().n(), 10);
    }

    #[test]
    fn intercept_augment_matches_dataset_augmentation_bitwise() {
        let data = small();
        let aug = data.augment_for_intercept();
        let mut src = InterceptAugmentSource(InMemorySource::new(&data));
        assert_eq!(src.dim(), 3);
        let streamed = materialize(&mut src).unwrap();
        for (a, b) in streamed.x().as_slice().iter().zip(aug.x().as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(streamed.y(), aug.y());
    }

    #[test]
    fn csv_stream_matches_materialized_reader() {
        let data = small();
        let mut buf = Vec::new();
        crate::csv::write_dataset_to(&data, &mut buf).unwrap();
        let mut src = CsvStreamSource::from_reader(&buf[..]).unwrap();
        assert_eq!(src.dim(), 2);
        assert_eq!(src.feature_names(), data.feature_names());
        let streamed = materialize(&mut src).unwrap();
        let direct = crate::csv::read_dataset_from(&buf[..]).unwrap();
        assert_eq!(streamed.x().as_slice(), direct.x().as_slice());
        assert_eq!(streamed.y(), direct.y());
    }

    #[test]
    fn csv_stream_reports_parse_errors_with_line_numbers() {
        let csv = b"a,b,label\n0.1,0.2,0.3\n\n0.1,broken,0.3\n";
        let mut src = CsvStreamSource::from_reader(&csv[..]).unwrap();
        // First block parses the good row; the bad one (file line 4) errors.
        let got = src.next_block(1).unwrap().unwrap();
        assert_eq!(got.rows(), 1);
        match src.next_block(1) {
            Err(DataError::Parse { line, .. }) => assert_eq!(line, 4),
            other => panic!("expected parse error, got {other:?}"),
        }
        // Header failures.
        assert!(CsvStreamSource::from_reader(&b""[..]).is_err());
        assert!(CsvStreamSource::from_reader(&b"only\n"[..]).is_err());
    }

    #[test]
    fn csv_stream_normalizes_rows_identically_to_the_matrix_path() {
        let schema = Schema::new()
            .with("age", AttributeKind::Integer { min: 0, max: 100 })
            .with("hours", AttributeKind::Integer { min: 0, max: 50 })
            .with(
                "income",
                AttributeKind::Continuous {
                    min: 0.0,
                    max: 1000.0,
                },
            );
        let norm = Normalizer::from_schema(&schema, "income").unwrap();
        let x = Matrix::from_rows(&[&[50.0, 25.0], &[150.0, -10.0], &[0.0, 50.0]]).unwrap();
        let raw = Dataset::with_names(
            x,
            vec![500.0, 2000.0, 0.0],
            vec!["age".into(), "hours".into()],
        )
        .unwrap();
        let mut buf = Vec::new();
        crate::csv::write_dataset_to(&raw, &mut buf).unwrap();

        // Linear label map.
        let mut src = CsvStreamSource::from_reader(&buf[..])
            .unwrap()
            .with_normalizer(norm.clone(), LabelTransform::Linear)
            .unwrap();
        let streamed = materialize(&mut src).unwrap();
        let reference = norm.normalize_linear(&raw).unwrap();
        for (a, b) in streamed.x().as_slice().iter().zip(reference.x().as_slice()) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "feature map must be bit-identical"
            );
        }
        assert_eq!(streamed.y(), reference.y());
        streamed.check_normalized_linear().unwrap();

        // Binarized label map.
        let mut src = CsvStreamSource::from_reader(&buf[..])
            .unwrap()
            .with_normalizer(norm.clone(), LabelTransform::Binarize { threshold: 400.0 })
            .unwrap();
        let streamed = materialize(&mut src).unwrap();
        let reference = norm.normalize_logistic(&raw, 400.0).unwrap();
        assert_eq!(streamed.y(), reference.y());

        // Arity mismatch refused up front.
        let narrow = Normalizer::from_bounds(vec![(0.0, 1.0)], (0.0, 1.0)).unwrap();
        assert!(CsvStreamSource::from_reader(&buf[..])
            .unwrap()
            .with_normalizer(narrow, LabelTransform::Raw)
            .is_err());
    }
}
