//! Streaming row ingestion: [`RowSource`] and friends.
//!
//! The Functional Mechanism's only interaction with data is the one-pass
//! accumulation of polynomial coefficients (Algorithm 1) — a sum over
//! tuples that never needs the dataset in memory. This module provides the
//! ingestion surface that matches that shape: a [`RowSource`] yields the
//! logical dataset as a sequence of bounded [`RowBlock`]s, so a fit can
//! run out-of-core (CSV files larger than RAM via [`CsvStreamSource`]),
//! across shards ([`ShardedSource`], or shard-at-a-time through the
//! estimators' `partial_fit` API in `fm-core`), or over a plain
//! materialized [`Dataset`] ([`InMemorySource`]) — all through one trait.
//!
//! Sources are *transport*, not semantics: the chunking a source happens
//! to deliver never influences results. `fm-core`'s streaming accumulator
//! re-chunks every stream to its own fixed chunk size, so the released
//! coefficients are bit-identical for any block sizing or shard split (the
//! facade's `tests/streaming_equivalence.rs` pins this).
//!
//! ## Zero-copy ingestion
//!
//! [`RowSource`] has two data paths:
//!
//! * [`RowSource::next_block`] yields **owned** [`RowBlock`]s — the
//!   simple, dyn-compatible pull API every source must implement;
//! * [`RowSource::for_each_block`] drains the source through a visitor
//!   that receives **borrowed** [`RowBlockRef`]s. The default wraps
//!   `next_block`, but sources with a stable backing store override it to
//!   hand out views with no per-block allocation or copy:
//!   [`InMemorySource`] lends slices of the backing [`Dataset`] directly,
//!   [`CsvStreamSource`] and [`InterceptAugmentSource`] parse/augment
//!   into buffers reused across blocks, and [`ShardedSource`] forwards
//!   each shard's own fast path.
//!
//! `fm-core`'s accumulators drain sources through the visitor, which is
//! what lets in-memory data fitted *through the streaming entry points*
//! (CV folds, `fit_in_session`, `fit_stream`) run at batched-kernel speed
//! instead of paying one block copy per chunk. Both paths feed the same
//! fixed re-chunking stage, so which one a source takes can never perturb
//! released coefficients.

use std::fs::File;
use std::io::{BufRead, BufReader, Lines, Read};
use std::path::Path;

use fm_linalg::Matrix;

use crate::csv::parse_numeric_row;
use crate::dataset::Dataset;
use crate::normalize::Normalizer;
use crate::{DataError, Result};

/// A bounded, owned block of rows: the unit a [`RowSource`] yields.
///
/// `xs` is a row-major `rows × d` feature block, `ys` the matching labels.
/// Blocks are plain data — validation against an objective's normalized-
/// domain contract happens where they are consumed (see
/// `fm_data::dataset::check_rows_normalized_linear` and friends).
#[derive(Debug, Clone, PartialEq)]
pub struct RowBlock {
    xs: Vec<f64>,
    ys: Vec<f64>,
    d: usize,
}

impl RowBlock {
    /// Builds a block from a row-major feature buffer and labels.
    ///
    /// # Errors
    /// * [`DataError::InvalidParameter`] for `d = 0`.
    /// * [`DataError::LengthMismatch`] unless `xs.len() == ys.len()·d`.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>, d: usize) -> Result<Self> {
        if d == 0 {
            return Err(DataError::InvalidParameter {
                name: "d",
                reason: "a row block needs at least one feature column".to_string(),
            });
        }
        if xs.len() != ys.len() * d {
            return Err(DataError::LengthMismatch {
                rows: xs.len() / d,
                labels: ys.len(),
            });
        }
        Ok(RowBlock { xs, ys, d })
    }

    /// The row-major `rows × d` feature buffer.
    #[must_use]
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The labels, one per row.
    #[must_use]
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// The feature dimensionality `d`.
    #[must_use]
    pub fn d(&self) -> usize {
        self.d
    }

    /// Number of rows in this block.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.ys.len()
    }

    /// A borrowed view of this block.
    #[must_use]
    pub fn as_ref(&self) -> RowBlockRef<'_> {
        RowBlockRef {
            xs: &self.xs,
            ys: &self.ys,
            d: self.d,
        }
    }

    /// The footnote-2 intercept augmentation of this block: each row maps
    /// to `(x/√2, 1/√2)` at dimension `d + 1`, operation-for-operation the
    /// same arithmetic as [`Dataset::augment_for_intercept`], so a
    /// streamed fit with an intercept stays **bit-identical** to the
    /// in-memory one.
    #[must_use]
    pub fn augment_for_intercept(&self) -> RowBlock {
        let inv_sqrt2 = std::f64::consts::FRAC_1_SQRT_2;
        let d = self.d;
        let mut xs = Vec::with_capacity(self.rows() * (d + 1));
        for row in self.xs.chunks_exact(d) {
            for &v in row {
                xs.push(v * inv_sqrt2);
            }
            xs.push(inv_sqrt2);
        }
        RowBlock {
            xs,
            ys: self.ys.clone(),
            d: d + 1,
        }
    }
}

/// A borrowed, row-major view of a block of rows — the zero-copy unit of
/// the [`RowSource::for_each_block`] visitor path. Same shape contract as
/// [`RowBlock`], but the buffers belong to the source (or its backing
/// store) and are only valid for the duration of one visit.
#[derive(Debug, Clone, Copy)]
pub struct RowBlockRef<'a> {
    xs: &'a [f64],
    ys: &'a [f64],
    d: usize,
}

impl<'a> RowBlockRef<'a> {
    /// Builds a borrowed block view over a row-major feature slice and
    /// matching labels.
    ///
    /// # Errors
    /// * [`DataError::InvalidParameter`] for `d = 0`.
    /// * [`DataError::LengthMismatch`] unless `xs.len() == ys.len()·d`.
    pub fn new(xs: &'a [f64], ys: &'a [f64], d: usize) -> Result<Self> {
        if d == 0 {
            return Err(DataError::InvalidParameter {
                name: "d",
                reason: "a row block needs at least one feature column".to_string(),
            });
        }
        if xs.len() != ys.len() * d {
            return Err(DataError::LengthMismatch {
                rows: xs.len() / d,
                labels: ys.len(),
            });
        }
        Ok(RowBlockRef { xs, ys, d })
    }

    /// The row-major `rows × d` feature slice.
    #[must_use]
    pub fn xs(&self) -> &'a [f64] {
        self.xs
    }

    /// The labels, one per row.
    #[must_use]
    pub fn ys(&self) -> &'a [f64] {
        self.ys
    }

    /// The feature dimensionality `d`.
    #[must_use]
    pub fn d(&self) -> usize {
        self.d
    }

    /// Number of rows in this view.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.ys.len()
    }

    /// Copies this view into an owned [`RowBlock`].
    #[must_use]
    pub fn to_owned(&self) -> RowBlock {
        RowBlock {
            xs: self.xs.to_vec(),
            ys: self.ys.to_vec(),
            d: self.d,
        }
    }
}

/// The visitor type [`RowSource::for_each_block`] drives: receives each
/// remaining block as a borrowed view; returning an error stops the drain.
pub type BlockVisitor<'v> = dyn FnMut(RowBlockRef<'_>) -> Result<()> + 'v;

/// An iterator-of-chunks over a logical dataset: the streaming ingestion
/// trait every fit entry point can consume.
///
/// Contract for implementors:
///
/// * [`RowSource::next_block`] yields **at most** `max_rows` rows per call
///   (callers size their staging buffers by it — this is the out-of-core
///   memory cap), never an empty block, and `None` exactly once the
///   source is exhausted;
/// * every yielded block has dimensionality [`RowSource::dim`];
/// * the concatenation of all yielded blocks, in order, is the logical
///   dataset;
/// * [`RowSource::for_each_block`], when overridden, must visit exactly
///   the rows `next_block` would have yielded, in the same order, under
///   the same `max_rows` cap — it is an alternative *transport*, never an
///   alternative semantics.
///
/// The trait is dyn-compatible: `&mut dyn RowSource` is what the
/// estimator-level `fit_stream` entry points accept.
pub trait RowSource {
    /// Feature dimensionality `d` of every block this source yields.
    fn dim(&self) -> usize;

    /// Exact number of rows still to come, when the source knows it
    /// (in-memory and sharded-in-memory sources do; a CSV stream does
    /// not). Purely advisory.
    fn hint_rows(&self) -> Option<usize> {
        None
    }

    /// Yields the next block of at most `max_rows.max(1)` rows, or `None`
    /// once exhausted.
    ///
    /// # Errors
    /// Transport errors — I/O, parse failures — as [`DataError`].
    fn next_block(&mut self, max_rows: usize) -> Result<Option<RowBlock>>;

    /// Hands over the **entire remaining** logical dataset as a borrowed,
    /// materialized [`Dataset`] — when this source is nothing but a
    /// fully-unconsumed in-memory dataset — marking the source exhausted
    /// in the same call. Consumers with a random-access fast path (cached
    /// columnar transposes, in-place chunking) use this to skip streaming
    /// transport altogether; since `fm-core`'s accumulator chunks the
    /// handed-over dataset on exactly the grid it would have re-chunked
    /// the stream to, results are **bit-identical** either way.
    ///
    /// The default returns `None` (stream normally). Only sources whose
    /// remaining rows *are* a materialized dataset may return it — and only
    /// while still at their first row. An adapter may satisfy that by
    /// materializing its transformation at handoff time
    /// ([`InterceptAugmentSource`] hands over the inner dataset's cached
    /// augmentation); adapters that cannot (shard concatenation) return
    /// `None` and stream.
    fn take_dataset(&mut self) -> Option<&Dataset> {
        None
    }

    /// Drains the remaining rows through `f` as **borrowed**
    /// [`RowBlockRef`]s of at most `max_rows.max(1)` rows each — the
    /// zero-copy fast path of the streaming pipeline.
    ///
    /// The default pulls owned blocks from [`RowSource::next_block`] and
    /// lends each one to `f`, so every implementor gets the visitor for
    /// free; sources backed by stable storage override it to skip the
    /// owned-block allocation entirely (see the module docs). After an
    /// `Ok(())` return the source is exhausted; if `f` returns an error
    /// the drain stops immediately and the error propagates (how many
    /// rows were consumed at that point is source-specific).
    ///
    /// # Errors
    /// Transport errors from the source, or the first error `f` returns.
    fn for_each_block(&mut self, max_rows: usize, f: &mut BlockVisitor<'_>) -> Result<()> {
        while let Some(block) = self.next_block(max_rows)? {
            f(block.as_ref())?;
        }
        Ok(())
    }
}

impl<S: RowSource + ?Sized> RowSource for &mut S {
    fn dim(&self) -> usize {
        (**self).dim()
    }
    fn hint_rows(&self) -> Option<usize> {
        (**self).hint_rows()
    }
    fn next_block(&mut self, max_rows: usize) -> Result<Option<RowBlock>> {
        (**self).next_block(max_rows)
    }
    fn for_each_block(&mut self, max_rows: usize, f: &mut BlockVisitor<'_>) -> Result<()> {
        (**self).for_each_block(max_rows, f)
    }
    fn take_dataset(&mut self) -> Option<&Dataset> {
        (**self).take_dataset()
    }
}

impl<S: RowSource + ?Sized> RowSource for Box<S> {
    fn dim(&self) -> usize {
        (**self).dim()
    }
    fn hint_rows(&self) -> Option<usize> {
        (**self).hint_rows()
    }
    fn next_block(&mut self, max_rows: usize) -> Result<Option<RowBlock>> {
        (**self).next_block(max_rows)
    }
    fn for_each_block(&mut self, max_rows: usize, f: &mut BlockVisitor<'_>) -> Result<()> {
        (**self).for_each_block(max_rows, f)
    }
    fn take_dataset(&mut self) -> Option<&Dataset> {
        (**self).take_dataset()
    }
}

/// A [`RowSource`] over a materialized [`Dataset`]: the adapter that makes
/// `fit(&Dataset)` a special case of `fit_stream`.
///
/// The visitor path ([`RowSource::for_each_block`]) lends slices of the
/// backing dataset directly — **zero copies, zero allocations** — so
/// in-memory data dispatched through the streaming entry points (CV
/// folds, `PrivacySession::fit_stream`, the bench harness) assembles at
/// the same rate as a direct `fit()`.
#[derive(Debug)]
pub struct InMemorySource<'a> {
    data: &'a Dataset,
    pos: usize,
}

impl<'a> InMemorySource<'a> {
    /// Streams `data` from its first row.
    #[must_use]
    pub fn new(data: &'a Dataset) -> Self {
        InMemorySource { data, pos: 0 }
    }

    /// Rewinds to the first row (sources are single-pass; reuse needs an
    /// explicit reset).
    pub fn reset(&mut self) {
        self.pos = 0;
    }
}

impl RowSource for InMemorySource<'_> {
    fn dim(&self) -> usize {
        self.data.d()
    }

    fn hint_rows(&self) -> Option<usize> {
        Some(self.data.n() - self.pos)
    }

    fn next_block(&mut self, max_rows: usize) -> Result<Option<RowBlock>> {
        let n = self.data.n();
        if self.pos >= n {
            return Ok(None);
        }
        let d = self.data.d();
        let hi = (self.pos + max_rows.max(1)).min(n);
        let xs = self.data.x().as_slice()[self.pos * d..hi * d].to_vec();
        let ys = self.data.y()[self.pos..hi].to_vec();
        self.pos = hi;
        Ok(Some(RowBlock { xs, ys, d }))
    }

    fn for_each_block(&mut self, max_rows: usize, f: &mut BlockVisitor<'_>) -> Result<()> {
        let n = self.data.n();
        let d = self.data.d();
        let step = max_rows.max(1);
        let xs = self.data.x().as_slice();
        let ys = self.data.y();
        while self.pos < n {
            let hi = (self.pos + step).min(n);
            let lo = self.pos;
            // Advance before the visit so an error from `f` leaves the
            // cursor past the rows it already saw.
            self.pos = hi;
            f(RowBlockRef {
                xs: &xs[lo * d..hi * d],
                ys: &ys[lo..hi],
                d,
            })?;
        }
        Ok(())
    }

    fn take_dataset(&mut self) -> Option<&Dataset> {
        if self.pos == 0 {
            self.pos = self.data.n();
            Some(self.data)
        } else {
            None
        }
    }
}

/// How [`CsvStreamSource`] maps the raw label column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LabelTransform {
    /// Pass the parsed label through unchanged.
    Raw,
    /// The Definition-1 affine map of the label domain onto `[−1, 1]`
    /// (requires a [`Normalizer`]).
    Linear,
    /// Threshold into `{0, 1}` at the given raw-unit cutoff (Definition 2).
    Binarize {
        /// Labels strictly above this raw value become `1.0`.
        threshold: f64,
    },
}

/// What a raw CSV field position contributes to the mapped row.
#[derive(Debug, Clone, Copy)]
enum ColumnRole {
    /// Feature column, landing at this output slot.
    Feature(usize),
    /// The label column.
    Label,
    /// Present in the file, not selected: skipped without parsing (so
    /// foreign CSVs may carry non-numeric columns alongside the data).
    Skip,
}

/// A header-driven column mapping (see
/// [`CsvStreamSource::select_columns`]): which raw field feeds which
/// output slot.
#[derive(Debug, Clone)]
struct ColumnMap {
    /// One role per raw CSV field position.
    roles: Vec<ColumnRole>,
}

impl ColumnMap {
    /// Parses one data line under this mapping: selected features land in
    /// `out` (resized to `d`, output order), the label is returned,
    /// unselected fields are skipped without parsing.
    fn parse_row(&self, line: &str, d: usize, lineno: usize, out: &mut Vec<f64>) -> Result<f64> {
        out.clear();
        out.resize(d, 0.0);
        let mut label = 0.0;
        let mut fields = 0usize;
        for v in line.split(',') {
            if fields == self.roles.len() {
                return Err(DataError::Parse {
                    line: lineno,
                    detail: format!(
                        "expected {} fields, found {}",
                        self.roles.len(),
                        line.split(',').count()
                    ),
                });
            }
            match self.roles[fields] {
                ColumnRole::Skip => {}
                role => match v.trim().parse::<f64>() {
                    Ok(parsed) => match role {
                        ColumnRole::Feature(slot) => out[slot] = parsed,
                        ColumnRole::Label => label = parsed,
                        ColumnRole::Skip => unreachable!("skip handled above"),
                    },
                    Err(_) => {
                        return Err(DataError::Parse {
                            line: lineno,
                            detail: format!("field {}: `{v}` is not a number", fields + 1),
                        });
                    }
                },
            }
            fields += 1;
        }
        if fields != self.roles.len() {
            return Err(DataError::Parse {
                line: lineno,
                detail: format!("expected {} fields, found {fields}", self.roles.len()),
            });
        }
        Ok(label)
    }
}

/// A [`RowSource`] that reads, normalizes and clamps rows straight out of
/// a numeric CSV (same dialect as [`crate::csv::read_dataset`]: one header
/// row, label last) **without materializing the file** — the out-of-core
/// entry point. Peak memory is one [`RowBlock`] of the caller's requested
/// size, whatever the file size; the visitor path
/// ([`RowSource::for_each_block`]) parses into buffers reused across
/// blocks, so a whole-file drain performs no per-block allocation.
///
/// Foreign CSVs whose columns are named but not laid out in the expected
/// order (or that carry extra columns) can be re-keyed by header name
/// with [`CsvStreamSource::select_columns`] — no rewrite pass needed.
///
/// With a [`Normalizer`] attached ([`CsvStreamSource::with_normalizer`]),
/// each row passes through the paper's footnote-1 feature map (clamp to
/// the declared domain, then scale into the `1/√d` box) and the chosen
/// [`LabelTransform`] as it is read — arithmetic identical to the
/// materialized [`Normalizer::normalize_linear`] path, so streamed and
/// in-memory pipelines release bit-identical coefficients.
///
/// Dirty files can degrade gracefully instead of failing on the first bad
/// row: see [`CsvStreamSource::with_row_error_policy`] and the
/// [`RowErrorPolicy`] docs for the Strict / SkipUpTo semantics and the
/// quarantine report.
#[derive(Debug)]
pub struct CsvStreamSource<R> {
    lines: Lines<BufReader<R>>,
    /// The full header, in file order (features *and* label columns).
    header: Vec<String>,
    /// Selected feature names, in output order.
    names: Vec<String>,
    d: usize,
    /// 1-based line number of the last line read (the header is line 1).
    line: usize,
    normalizer: Option<(Normalizer, LabelTransform)>,
    /// Header-driven column mapping; `None` = the default dialect (every
    /// column a feature in file order, label last).
    map: Option<ColumnMap>,
    /// Scratch reused across rows (raw parsed features of one row).
    raw_row: Vec<f64>,
    /// Block buffers reused across blocks by the visitor path.
    block_xs: Vec<f64>,
    block_ys: Vec<f64>,
    /// What to do with rows that fail to parse or normalize.
    policy: RowErrorPolicy,
    /// Rows skipped so far under [`RowErrorPolicy::SkipUpTo`].
    quarantine: Vec<QuarantinedRow>,
}

/// What a [`CsvStreamSource`] does with a row that fails to parse or
/// normalize (a *row error*: malformed field, wrong arity, non-finite
/// value). Transport failures — the underlying reader erroring out — are
/// never skippable; they abort the stream under every policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RowErrorPolicy {
    /// Fail the stream on the first bad row (the default).
    #[default]
    Strict,
    /// Skip up to `n` bad rows, recording each in the quarantine report
    /// ([`CsvStreamSource::quarantine`]); the `n + 1`-th bad row fails the
    /// stream. A bounded cap keeps a systematically-corrupt file from
    /// silently degrading into an empty (or heavily biased) dataset.
    SkipUpTo(usize),
}

/// One row skipped under [`RowErrorPolicy::SkipUpTo`], for the quarantine
/// report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedRow {
    /// 1-based line number of the skipped row (the header is line 1).
    pub line: usize,
    /// Why the row was rejected.
    pub reason: String,
}

/// Applies the row-error policy to one bad row: `Ok(())` means "skipped,
/// keep reading"; `Err` aborts the stream.
fn quarantine_row(
    policy: RowErrorPolicy,
    quarantine: &mut Vec<QuarantinedRow>,
    line: usize,
    err: DataError,
) -> Result<()> {
    match policy {
        RowErrorPolicy::Strict => Err(err),
        RowErrorPolicy::SkipUpTo(cap) => {
            if quarantine.len() < cap {
                quarantine.push(QuarantinedRow {
                    line,
                    reason: err.to_string(),
                });
                Ok(())
            } else {
                Err(DataError::Parse {
                    line,
                    detail: format!(
                        "row-error quarantine full ({cap} rows already skipped): {err}"
                    ),
                })
            }
        }
    }
}

impl CsvStreamSource<File> {
    /// Opens a CSV file for streaming.
    ///
    /// # Errors
    /// [`DataError::Io`] / [`DataError::Parse`] on open or header failure.
    pub fn open(path: &Path) -> Result<Self> {
        CsvStreamSource::from_reader(File::open(path)?)
    }
}

/// Reads one block of up to `want` rows into `xs`/`ys` (appending) — the
/// single row loop shared by the owned and borrowed block paths, so the
/// two can never drift on dialect, mapping or normalization details.
#[allow(clippy::too_many_arguments)]
fn read_csv_block<R: Read>(
    lines: &mut Lines<BufReader<R>>,
    line_no: &mut usize,
    d: usize,
    map: Option<&ColumnMap>,
    normalizer: Option<&(Normalizer, LabelTransform)>,
    raw_row: &mut Vec<f64>,
    want: usize,
    xs: &mut Vec<f64>,
    ys: &mut Vec<f64>,
    policy: RowErrorPolicy,
    quarantine: &mut Vec<QuarantinedRow>,
) -> Result<()> {
    while ys.len() < want {
        let Some(line) = lines.next() else { break };
        // Reader (transport) failures are never row errors: no policy
        // skips them.
        let line = line?;
        *line_no += 1;
        if line.trim().is_empty() {
            continue;
        }
        raw_row.clear();
        let y_raw = match map {
            None => parse_numeric_row(&line, d, *line_no, raw_row),
            Some(m) => m.parse_row(&line, d, *line_no, raw_row),
        };
        let y_raw = match y_raw {
            Ok(y) => y,
            Err(e) => {
                quarantine_row(policy, quarantine, *line_no, e)?;
                continue;
            }
        };
        match normalizer {
            None => {
                xs.extend_from_slice(raw_row);
                ys.push(y_raw);
            }
            Some((norm, label)) => {
                let xs_mark = xs.len();
                if let Err(e) = norm.normalize_features_row(raw_row, xs) {
                    xs.truncate(xs_mark);
                    quarantine_row(policy, quarantine, *line_no, e)?;
                    continue;
                }
                ys.push(match *label {
                    LabelTransform::Raw => y_raw,
                    LabelTransform::Linear => norm.normalize_label(y_raw),
                    LabelTransform::Binarize { threshold } => {
                        if y_raw > threshold {
                            1.0
                        } else {
                            0.0
                        }
                    }
                });
            }
        }
    }
    Ok(())
}

impl<R: Read> CsvStreamSource<R> {
    /// Streams CSV rows from any reader; the header row is consumed
    /// immediately to fix the dimensionality.
    ///
    /// # Errors
    /// [`DataError::Io`] / [`DataError::Parse`] on a missing or too-narrow
    /// header.
    pub fn from_reader(r: R) -> Result<Self> {
        let mut lines = BufReader::new(r).lines();
        let header = lines.next().ok_or(DataError::Parse {
            line: 1,
            detail: "empty file".to_string(),
        })??;
        let columns: Vec<String> = header.split(',').map(|s| s.trim().to_string()).collect();
        if columns.len() < 2 {
            return Err(DataError::Parse {
                line: 1,
                detail: "need at least one feature column and a label column".to_string(),
            });
        }
        let d = columns.len() - 1;
        Ok(CsvStreamSource {
            lines,
            names: columns[..d].to_vec(),
            header: columns,
            d,
            line: 1,
            normalizer: None,
            map: None,
            raw_row: Vec::new(),
            block_xs: Vec::new(),
            block_ys: Vec::new(),
            policy: RowErrorPolicy::Strict,
            quarantine: Vec::new(),
        })
    }

    /// Sets the [`RowErrorPolicy`] (default: [`RowErrorPolicy::Strict`]).
    ///
    /// Under [`RowErrorPolicy::SkipUpTo`], rows that fail to parse or
    /// normalize are dropped and recorded in the quarantine report instead
    /// of failing the stream; inspect them with
    /// [`CsvStreamSource::quarantine`] after the drain.
    #[must_use]
    pub fn with_row_error_policy(mut self, policy: RowErrorPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Rows skipped so far under [`RowErrorPolicy::SkipUpTo`], in file
    /// order. Empty under [`RowErrorPolicy::Strict`].
    #[must_use]
    pub fn quarantine(&self) -> &[QuarantinedRow] {
        &self.quarantine
    }

    /// Re-keys the stream by header name: the yielded rows carry exactly
    /// the named `features`, in the order given, labelled by the `label`
    /// column — wherever those columns sit in the file, and regardless of
    /// any extra columns (which are skipped without being parsed, so they
    /// may be non-numeric). This is what makes a foreign CSV ingestible
    /// without a rewrite pass.
    ///
    /// Must be called before any rows are read, and before
    /// [`CsvStreamSource::with_normalizer`] (the normalizer's arity is
    /// checked against the *selected* features).
    ///
    /// # Errors
    /// * [`DataError::UnknownAttribute`] when a requested column is not in
    ///   the header.
    /// * [`DataError::Parse`] when the header lists a requested column
    ///   more than once (the mapping would be ambiguous).
    /// * [`DataError::InvalidParameter`] for an empty feature list, a
    ///   feature requested twice, the label doubling as a feature, rows
    ///   already read, or a previously attached normalizer of foreign
    ///   arity.
    pub fn select_columns(mut self, features: &[&str], label: &str) -> Result<Self> {
        if self.line != 1 {
            return Err(DataError::InvalidParameter {
                name: "select_columns",
                reason: "columns must be selected before any rows are read".to_string(),
            });
        }
        if features.is_empty() {
            return Err(DataError::InvalidParameter {
                name: "features",
                reason: "need at least one feature column".to_string(),
            });
        }
        if let Some((i, dup)) = features
            .iter()
            .enumerate()
            .find(|&(i, name)| features[..i].contains(name))
            .map(|(i, name)| (i, *name))
        {
            return Err(DataError::InvalidParameter {
                name: "features",
                reason: format!("column `{dup}` requested twice (positions {i} and earlier)"),
            });
        }
        if features.contains(&label) {
            return Err(DataError::InvalidParameter {
                name: "label",
                reason: format!("`{label}` cannot be both a feature and the label"),
            });
        }
        let position_of = |want: &str| -> Result<usize> {
            let mut hits = self.header.iter().enumerate().filter(|(_, h)| *h == want);
            let Some((pos, _)) = hits.next() else {
                return Err(DataError::UnknownAttribute {
                    name: want.to_string(),
                });
            };
            if hits.next().is_some() {
                return Err(DataError::Parse {
                    line: 1,
                    detail: format!("header lists column `{want}` more than once"),
                });
            }
            Ok(pos)
        };
        let mut roles = vec![ColumnRole::Skip; self.header.len()];
        for (slot, name) in features.iter().enumerate() {
            roles[position_of(name)?] = ColumnRole::Feature(slot);
        }
        roles[position_of(label)?] = ColumnRole::Label;
        if let Some((norm, _)) = &self.normalizer {
            if norm.d() != features.len() {
                return Err(DataError::InvalidParameter {
                    name: "normalizer",
                    reason: format!(
                        "normalizer expects {} features, {} were selected",
                        norm.d(),
                        features.len()
                    ),
                });
            }
        }
        self.d = features.len();
        self.names = features.iter().map(|s| (*s).to_string()).collect();
        self.map = Some(ColumnMap { roles });
        Ok(self)
    }

    /// Attaches per-row normalization: footnote-1 feature scaling plus the
    /// chosen label transform.
    ///
    /// # Errors
    /// [`DataError::InvalidParameter`] when the normalizer's feature count
    /// differs from the CSV's, or [`LabelTransform::Linear`] is requested —
    /// it needs the normalizer's label bounds, which are part of it, so
    /// this can only fail on the arity.
    pub fn with_normalizer(
        mut self,
        normalizer: Normalizer,
        label: LabelTransform,
    ) -> Result<Self> {
        if normalizer.d() != self.d {
            return Err(DataError::InvalidParameter {
                name: "normalizer",
                reason: format!(
                    "normalizer expects {} features, CSV has {}",
                    normalizer.d(),
                    self.d
                ),
            });
        }
        self.normalizer = Some((normalizer, label));
        Ok(self)
    }

    /// The feature names this stream yields, in column (output) order.
    #[must_use]
    pub fn feature_names(&self) -> &[String] {
        &self.names
    }

    /// The full CSV header, in file order — what
    /// [`CsvStreamSource::select_columns`] selects from.
    #[must_use]
    pub fn header(&self) -> &[String] {
        &self.header
    }
}

impl<R: Read> RowSource for CsvStreamSource<R> {
    fn dim(&self) -> usize {
        self.d
    }

    fn next_block(&mut self, max_rows: usize) -> Result<Option<RowBlock>> {
        let want = max_rows.max(1);
        let d = self.d;
        let mut xs = Vec::with_capacity(want * d);
        let mut ys = Vec::with_capacity(want);
        read_csv_block(
            &mut self.lines,
            &mut self.line,
            d,
            self.map.as_ref(),
            self.normalizer.as_ref(),
            &mut self.raw_row,
            want,
            &mut xs,
            &mut ys,
            self.policy,
            &mut self.quarantine,
        )?;
        if ys.is_empty() {
            Ok(None)
        } else {
            Ok(Some(RowBlock { xs, ys, d }))
        }
    }

    fn for_each_block(&mut self, max_rows: usize, f: &mut BlockVisitor<'_>) -> Result<()> {
        let want = max_rows.max(1);
        loop {
            let CsvStreamSource {
                lines,
                line,
                d,
                normalizer,
                map,
                raw_row,
                block_xs,
                block_ys,
                policy,
                quarantine,
                ..
            } = self;
            block_xs.clear();
            block_ys.clear();
            read_csv_block(
                lines,
                line,
                *d,
                map.as_ref(),
                normalizer.as_ref(),
                raw_row,
                want,
                block_xs,
                block_ys,
                *policy,
                quarantine,
            )?;
            if block_ys.is_empty() {
                return Ok(());
            }
            f(RowBlockRef {
                xs: block_xs,
                ys: block_ys,
                d: *d,
            })?;
        }
    }
}

/// A [`RowSource`] that concatenates several sources of equal
/// dimensionality — disjoint shards presented as one logical dataset.
/// Blocks are drawn from the shards in order; shard boundaries are
/// invisible to the consumer (and, because `fm-core`'s accumulator
/// re-chunks anyway, can never perturb released coefficients). The
/// visitor path forwards each shard's own zero-copy fast path.
///
/// Errors raised while draining a shard — transport failures from the
/// shard itself *and* row-contract violations surfaced by the consumer's
/// visitor — come back wrapped in [`DataError::InShard`] carrying the
/// shard's label (default `shard-<index>`, overridable with
/// [`ShardedSource::with_labels`]) and the 0-based index of the failing
/// block within that shard, so a bad row in a hundred-shard ingest is
/// attributable at a glance.
#[derive(Debug)]
pub struct ShardedSource<S> {
    shards: Vec<S>,
    labels: Vec<String>,
    current: usize,
    /// Blocks already yielded by the current shard (resets per shard):
    /// the 0-based index of the *next* block, i.e. of a failing one.
    blocks_in_current: usize,
}

impl<S: RowSource> ShardedSource<S> {
    /// Concatenates `shards`, labelling them `shard-0`, `shard-1`, ….
    ///
    /// # Errors
    /// [`DataError::InvalidParameter`] for an empty shard list or
    /// mismatched dimensionalities.
    pub fn new(shards: Vec<S>) -> Result<Self> {
        let Some(first) = shards.first() else {
            return Err(DataError::InvalidParameter {
                name: "shards",
                reason: "need at least one shard".to_string(),
            });
        };
        let d = first.dim();
        if let Some(bad) = shards.iter().position(|s| s.dim() != d) {
            return Err(DataError::InvalidParameter {
                name: "shards",
                reason: format!(
                    "shard {bad} has dimensionality {}, shard 0 has {d}",
                    shards[bad].dim()
                ),
            });
        }
        let labels = (0..shards.len()).map(|i| format!("shard-{i}")).collect();
        Ok(ShardedSource {
            shards,
            labels,
            current: 0,
            blocks_in_current: 0,
        })
    }

    /// Replaces the default `shard-<index>` labels with caller-provided
    /// ones (e.g. file names), used in [`DataError::InShard`] errors.
    ///
    /// # Errors
    /// [`DataError::InvalidParameter`] when the label count differs from
    /// the shard count.
    pub fn with_labels(mut self, labels: Vec<String>) -> Result<Self> {
        if labels.len() != self.shards.len() {
            return Err(DataError::InvalidParameter {
                name: "labels",
                reason: format!("{} labels for {} shards", labels.len(), self.shards.len()),
            });
        }
        self.labels = labels;
        Ok(self)
    }

    /// The shard labels, in shard order.
    #[must_use]
    pub fn shard_labels(&self) -> &[String] {
        &self.labels
    }

    /// Number of shards.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Wraps an error raised by the current shard with its context.
    fn in_current_shard(&self, e: DataError) -> DataError {
        DataError::InShard {
            shard: self.labels[self.current].clone(),
            block: self.blocks_in_current,
            source: Box::new(e),
        }
    }
}

impl<S: RowSource> RowSource for ShardedSource<S> {
    fn dim(&self) -> usize {
        self.shards[0].dim()
    }

    fn hint_rows(&self) -> Option<usize> {
        self.shards[self.current..]
            .iter()
            .map(RowSource::hint_rows)
            .sum()
    }

    fn next_block(&mut self, max_rows: usize) -> Result<Option<RowBlock>> {
        while self.current < self.shards.len() {
            match self.shards[self.current].next_block(max_rows) {
                Ok(Some(block)) => {
                    self.blocks_in_current += 1;
                    return Ok(Some(block));
                }
                Ok(None) => {
                    self.current += 1;
                    self.blocks_in_current = 0;
                }
                Err(e) => return Err(self.in_current_shard(e)),
            }
        }
        Ok(None)
    }

    fn for_each_block(&mut self, max_rows: usize, f: &mut BlockVisitor<'_>) -> Result<()> {
        while self.current < self.shards.len() {
            let ShardedSource {
                shards,
                labels,
                current,
                blocks_in_current,
            } = self;
            let label = labels[*current].as_str();
            // Distinguishes visitor errors (wrapped in the closure, where
            // the failing block's index is known) from the shard's own
            // transport errors (wrapped after the fact).
            let mut wrapped_by_visitor = false;
            let result = shards[*current].for_each_block(max_rows, &mut |block| match f(block) {
                Ok(()) => {
                    *blocks_in_current += 1;
                    Ok(())
                }
                Err(e) => {
                    wrapped_by_visitor = true;
                    Err(DataError::InShard {
                        shard: label.to_string(),
                        block: *blocks_in_current,
                        source: Box::new(e),
                    })
                }
            });
            match result {
                Ok(()) => {
                    self.current += 1;
                    self.blocks_in_current = 0;
                }
                Err(e) if wrapped_by_visitor => return Err(e),
                Err(e) => return Err(self.in_current_shard(e)),
            }
        }
        Ok(())
    }
}

/// A [`RowSource`] adapter applying the footnote-2 intercept augmentation
/// to every block (dimensionality `d + 1`): what `fm-core`'s streaming fit
/// pipeline wraps a source in when `fit_intercept` is on. The visitor path
/// writes the augmented rows into a buffer reused across blocks, so the
/// adapter adds no per-block allocation on top of the inner source.
#[derive(Debug)]
pub struct InterceptAugmentSource<S> {
    inner: S,
    /// Augmented-feature scratch reused across blocks by the visitor path.
    scratch: Vec<f64>,
}

impl<S: RowSource> InterceptAugmentSource<S> {
    /// Wraps `inner`, augmenting every block it yields.
    #[must_use]
    pub fn new(inner: S) -> Self {
        InterceptAugmentSource {
            inner,
            scratch: Vec::new(),
        }
    }

    /// The wrapped source.
    #[must_use]
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: RowSource> RowSource for InterceptAugmentSource<S> {
    fn dim(&self) -> usize {
        self.inner.dim() + 1
    }

    fn hint_rows(&self) -> Option<usize> {
        self.inner.hint_rows()
    }

    fn next_block(&mut self, max_rows: usize) -> Result<Option<RowBlock>> {
        Ok(self
            .inner
            .next_block(max_rows)?
            .map(|b| b.augment_for_intercept()))
    }

    fn take_dataset(&mut self) -> Option<&Dataset> {
        // When the inner source can hand over its whole dataset, hand over
        // that dataset's *cached* augmentation instead of streaming: the
        // cache performs the same elementwise `x·(1/√2)` arithmetic as the
        // per-block path (bit-identical coefficients), lives as long as the
        // inner dataset, and — because one instance serves every intercept
        // fit on that data — accumulates the scan count that unlocks the
        // columnar assembly kernels from the second fit onward.
        self.inner
            .take_dataset()
            .map(Dataset::augmented_for_intercept_cached)
    }

    fn for_each_block(&mut self, max_rows: usize, f: &mut BlockVisitor<'_>) -> Result<()> {
        let InterceptAugmentSource { inner, scratch } = self;
        inner.for_each_block(max_rows, &mut |b| {
            // Same arithmetic, in the same order, as
            // `RowBlock::augment_for_intercept` — bit-identity with the
            // materialized `Dataset::augment_for_intercept` is part of the
            // streaming contract.
            let inv_sqrt2 = std::f64::consts::FRAC_1_SQRT_2;
            let d = b.d();
            scratch.clear();
            scratch.reserve(b.rows() * (d + 1));
            for row in b.xs().chunks_exact(d) {
                for &v in row {
                    scratch.push(v * inv_sqrt2);
                }
                scratch.push(inv_sqrt2);
            }
            f(RowBlockRef {
                xs: scratch,
                ys: b.ys(),
                d: d + 1,
            })
        })
    }
}

/// A [`RowSource`] adapter yielding at most the first `rows` rows of the
/// inner source, then reporting exhaustion — the inner source keeps its
/// position, so successive `TakeRows` wrappers around the same `&mut`
/// source cut one stream into consecutive bounded segments. That is how a
/// federated client feeds exactly its assigned row range of a shared
/// ingest stream into a partial fit without the stream knowing about the
/// shard plan.
///
/// Block boundaries are re-capped, never split retroactively: each pull
/// requests `min(max_rows, remaining)` rows, so the inner source is never
/// asked for a row beyond the budget and the concatenation of segments
/// replays the stream byte-for-byte.
#[derive(Debug)]
pub struct TakeRows<S> {
    inner: S,
    remaining: usize,
}

impl<S: RowSource> TakeRows<S> {
    /// Caps `inner` at its next `rows` rows.
    #[must_use]
    pub fn new(inner: S, rows: usize) -> Self {
        TakeRows {
            inner,
            remaining: rows,
        }
    }

    /// Rows still available under the cap.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// The wrapped source (wherever its cursor now stands).
    #[must_use]
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: RowSource> RowSource for TakeRows<S> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn hint_rows(&self) -> Option<usize> {
        self.inner.hint_rows().map(|h| h.min(self.remaining))
    }

    fn next_block(&mut self, max_rows: usize) -> Result<Option<RowBlock>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let cap = max_rows.max(1).min(self.remaining);
        match self.inner.next_block(cap)? {
            Some(block) => {
                self.remaining -= block.rows().min(self.remaining);
                Ok(Some(block))
            }
            None => {
                self.remaining = 0;
                Ok(None)
            }
        }
    }
}

/// A [`RowSource`] adapter that attributes every transport error of the
/// inner source to a named origin — wrapping it in [`DataError::InShard`]
/// with the origin's label and the 0-based index of the failing block,
/// exactly as [`ShardedSource`] does for its shards. A federated
/// coordinator wraps each client's ingest in one of these so a parse
/// failure three machines away still names the client and block at fault.
#[derive(Debug)]
pub struct ProvenancedSource<S> {
    inner: S,
    label: String,
    /// Blocks already yielded, i.e. the 0-based index of a failing one.
    blocks: usize,
}

impl<S: RowSource> ProvenancedSource<S> {
    /// Wraps `inner`, attributing its errors to `label`.
    #[must_use]
    pub fn new(inner: S, label: impl Into<String>) -> Self {
        ProvenancedSource {
            inner,
            label: label.into(),
            blocks: 0,
        }
    }

    /// The origin label used in error attribution.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The wrapped source.
    #[must_use]
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn attribute(&self, e: DataError) -> DataError {
        DataError::InShard {
            shard: self.label.clone(),
            block: self.blocks,
            source: Box::new(e),
        }
    }
}

impl<S: RowSource> RowSource for ProvenancedSource<S> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn hint_rows(&self) -> Option<usize> {
        self.inner.hint_rows()
    }

    fn next_block(&mut self, max_rows: usize) -> Result<Option<RowBlock>> {
        match self.inner.next_block(max_rows) {
            Ok(Some(block)) => {
                self.blocks += 1;
                Ok(Some(block))
            }
            Ok(None) => Ok(None),
            Err(e) => Err(self.attribute(e)),
        }
    }

    fn take_dataset(&mut self) -> Option<&Dataset> {
        // A fully-unconsumed in-memory inner source cannot fail mid-drain,
        // so handing it over loses no attribution.
        self.inner.take_dataset()
    }

    fn for_each_block(&mut self, max_rows: usize, f: &mut BlockVisitor<'_>) -> Result<()> {
        let ProvenancedSource {
            inner,
            label,
            blocks,
        } = self;
        // Visitor errors are wrapped inside the closure (where the failing
        // block's index is known); the source's own transport errors after
        // the fact — the `ShardedSource` idiom.
        let mut wrapped_by_visitor = false;
        let result = inner.for_each_block(max_rows, &mut |block| match f(block) {
            Ok(()) => {
                *blocks += 1;
                Ok(())
            }
            Err(e) => {
                wrapped_by_visitor = true;
                Err(DataError::InShard {
                    shard: label.clone(),
                    block: *blocks,
                    source: Box::new(e),
                })
            }
        });
        match result {
            Ok(()) => Ok(()),
            Err(e) if wrapped_by_visitor => Err(e),
            Err(e) => Err(self.attribute(e)),
        }
    }
}

/// Outcome of a bounded-wait receive on a [`ChannelConsumer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Refill {
    /// A block arrived and is now pending.
    Ready,
    /// Nothing arrived within the wait; the producer is still connected.
    TimedOut,
    /// The producer hung up cleanly; the stream is exhausted.
    Finished,
}

/// Consumer-side state shared by every channel-fed [`RowSource`] — the
/// prefetch adapters here and [`crate::queue::QueueSource`]: owns the
/// receiving end of a bounded block channel plus the partially-served
/// block, and re-slices arriving blocks to whatever cap the consumer
/// asks for. Producer-agnostic: it neither knows nor cares whether the
/// sender is a read-ahead worker thread or a tenant pushing rows.
#[derive(Debug)]
pub(crate) struct ChannelConsumer {
    d: usize,
    hint0: Option<usize>,
    served: usize,
    rx: Option<std::sync::mpsc::Receiver<Result<RowBlock>>>,
    /// The block currently being served, plus how many of its rows have
    /// already been yielded.
    pending: Option<(RowBlock, usize)>,
}

impl ChannelConsumer {
    pub(crate) fn new(
        d: usize,
        hint0: Option<usize>,
        rx: std::sync::mpsc::Receiver<Result<RowBlock>>,
    ) -> Self {
        ChannelConsumer {
            d,
            hint0,
            served: 0,
            rx: Some(rx),
            pending: None,
        }
    }

    pub(crate) fn dim(&self) -> usize {
        self.d
    }

    pub(crate) fn hint_rows(&self) -> Option<usize> {
        self.hint0.map(|h| h.saturating_sub(self.served))
    }

    pub(crate) fn has_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// Drops the receiver so a producer blocked on a full channel sees the
    /// hangup and can stop.
    pub(crate) fn disconnect(&mut self) {
        self.rx = None;
    }

    /// Receives the next block into `pending`, blocking; `Ok(false)` once
    /// the producer is done.
    pub(crate) fn refill(&mut self) -> Result<bool> {
        debug_assert!(self.pending.is_none(), "refill with a block pending");
        let Some(rx) = &self.rx else { return Ok(false) };
        match rx.recv() {
            Ok(Ok(block)) => {
                self.pending = Some((block, 0));
                Ok(true)
            }
            Ok(Err(e)) => {
                self.rx = None;
                Err(e)
            }
            Err(_) => {
                // Producer hung up. (An erroring producer sends its error
                // before hanging up, so a bare disconnect really is clean
                // exhaustion.)
                self.rx = None;
                Ok(false)
            }
        }
    }

    /// Like [`ChannelConsumer::refill`], but waits at most `timeout` —
    /// what a consumer that must stay responsive (checking a shutdown
    /// flag between blocks) polls with.
    pub(crate) fn refill_timeout(&mut self, timeout: std::time::Duration) -> Result<Refill> {
        debug_assert!(self.pending.is_none(), "refill with a block pending");
        let Some(rx) = &self.rx else {
            return Ok(Refill::Finished);
        };
        match rx.recv_timeout(timeout) {
            Ok(Ok(block)) => {
                self.pending = Some((block, 0));
                Ok(Refill::Ready)
            }
            Ok(Err(e)) => {
                self.rx = None;
                Err(e)
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => Ok(Refill::TimedOut),
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                self.rx = None;
                Ok(Refill::Finished)
            }
        }
    }

    /// Serves at most `want` rows from the pending block: whole-block
    /// handoff (no copy) when it fits, else a copied sub-range with the
    /// rest kept pending. `None` when nothing is pending.
    pub(crate) fn serve(&mut self, want: usize) -> Option<RowBlock> {
        let (block, offset) = self.pending.take()?;
        let remaining = block.rows() - offset;
        if offset == 0 && remaining <= want {
            self.served += remaining;
            return Some(block);
        }
        let take = want.min(remaining);
        let d = block.d();
        let sub = RowBlock {
            xs: block.xs()[offset * d..(offset + take) * d].to_vec(),
            ys: block.ys()[offset..offset + take].to_vec(),
            d,
        };
        if offset + take < block.rows() {
            self.pending = Some((block, offset + take));
        }
        self.served += take;
        Some(sub)
    }

    pub(crate) fn next_block(&mut self, max_rows: usize) -> Result<Option<RowBlock>> {
        let want = max_rows.max(1);
        if self.pending.is_none() && !self.refill()? {
            return Ok(None);
        }
        Ok(self.serve(want))
    }

    pub(crate) fn for_each_block(
        &mut self,
        max_rows: usize,
        f: &mut BlockVisitor<'_>,
    ) -> Result<()> {
        let want = max_rows.max(1);
        loop {
            if self.pending.is_none() && !self.refill()? {
                return Ok(());
            }
            let (block, offset) = self.pending.as_mut().expect("refilled above");
            let d = block.d();
            let lo = *offset;
            let take = want.min(block.rows() - lo);
            *offset += take;
            let done = *offset >= block.rows();
            let (block, _) = self.pending.as_ref().expect("still pending");
            let view = RowBlockRef {
                xs: &block.xs()[lo * d..(lo + take) * d],
                ys: &block.ys()[lo..lo + take],
                d,
            };
            f(view)?;
            self.served += take;
            if done {
                self.pending = None;
            }
        }
    }
}

#[cfg(feature = "parallel")]
pub use self::prefetch::{PrefetchSource, ScopedPrefetchSource};

#[cfg(feature = "parallel")]
mod prefetch {
    use std::sync::mpsc::SyncSender;
    use std::thread::JoinHandle;

    use super::{BlockVisitor, ChannelConsumer, Result, RowBlock, RowSource};

    /// A double-buffering [`RowSource`] adapter: a worker thread pulls
    /// (parses, clamps, normalizes) blocks from the inner source while the
    /// consumer runs its kernels on the previous ones, overlapping
    /// transport latency — CSV parse, file I/O — with accumulation.
    ///
    /// Blocks flow through a bounded channel of `depth` blocks, so peak
    /// memory is `(depth + 1) · block_rows` staged rows. Ordering is
    /// preserved exactly (single worker, FIFO channel), and `fm-core`'s
    /// accumulator re-chunks every stream anyway, so wrapping a source in
    /// a `PrefetchSource` can never perturb released coefficients — at
    /// any `block_rows` or `depth` (`tests/streaming_equivalence.rs` pins
    /// this).
    ///
    /// Worth it when the inner source does real per-row work
    /// ([`super::CsvStreamSource`]); an already-in-memory source gains
    /// nothing and pays the channel hop. Available with the `parallel`
    /// cargo feature.
    ///
    /// A panic in the worker (i.e. in the inner source) is caught and
    /// surfaced to the consumer as [`crate::DataError::WorkerPanic`] — never a
    /// hang, and never a silent early EOF masquerading as a short dataset.
    #[derive(Debug)]
    pub struct PrefetchSource {
        feed: ChannelConsumer,
        worker: Option<JoinHandle<()>>,
    }

    /// The read-ahead loop both prefetch variants run on their worker
    /// thread: pull blocks from the inner source and push them down the
    /// bounded channel until exhaustion, error, or consumer hangup.
    ///
    /// A panicking inner source must not turn into a silent early EOF on
    /// the consumer side (the channel hanging up is otherwise
    /// indistinguishable from clean exhaustion): catch it and forward a
    /// typed error instead.
    fn run_worker<S: RowSource>(
        mut source: S,
        block_rows: usize,
        tx: SyncSender<Result<RowBlock>>,
    ) {
        let panic_tx = tx.clone();
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| loop {
            match source.next_block(block_rows) {
                Ok(Some(block)) => {
                    if tx.send(Ok(block)).is_err() {
                        return; // consumer dropped: stop reading ahead
                    }
                }
                Ok(None) => return,
                Err(e) => {
                    let _ = tx.send(Err(e));
                    return;
                }
            }
        }));
        if let Err(payload) = run {
            let detail = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic payload was not a string".to_string());
            let _ = panic_tx.send(Err(super::DataError::WorkerPanic { detail }));
        }
    }

    impl PrefetchSource {
        /// Moves `source` to a worker thread that reads ahead blocks of
        /// `block_rows` rows, buffering at most `depth` parsed blocks
        /// (both clamped to ≥ 1).
        pub fn spawn<S>(source: S, block_rows: usize, depth: usize) -> Self
        where
            S: RowSource + Send + 'static,
        {
            let d = source.dim();
            let hint0 = source.hint_rows();
            let block_rows = block_rows.max(1);
            let (tx, rx) = std::sync::mpsc::sync_channel(depth.max(1));
            let worker = std::thread::spawn(move || run_worker(source, block_rows, tx));
            PrefetchSource {
                feed: ChannelConsumer::new(d, hint0, rx),
                worker: Some(worker),
            }
        }
    }

    impl RowSource for PrefetchSource {
        fn dim(&self) -> usize {
            self.feed.dim()
        }

        fn hint_rows(&self) -> Option<usize> {
            self.feed.hint_rows()
        }

        fn next_block(&mut self, max_rows: usize) -> Result<Option<RowBlock>> {
            self.feed.next_block(max_rows)
        }

        fn for_each_block(&mut self, max_rows: usize, f: &mut BlockVisitor<'_>) -> Result<()> {
            self.feed.for_each_block(max_rows, f)
        }
    }

    impl Drop for PrefetchSource {
        fn drop(&mut self) {
            // Hang up first so a worker blocked on a full channel exits,
            // then reap it.
            self.feed.disconnect();
            if let Some(worker) = self.worker.take() {
                let _ = worker.join();
            }
        }
    }

    /// [`PrefetchSource`] for **borrowed** sources: the worker runs on a
    /// [`std::thread::Scope`], so the inner source only needs
    /// `Send + 'scope` instead of `Send + 'static`. This is what lets a
    /// serve worker overlap transport with assembly on a source it does
    /// not own — a `&mut CsvStreamSource` borrowed from the job, a view
    /// over a tenant's staged shard — without cloning it into a
    /// `'static` box first.
    ///
    /// Identical transport semantics to [`PrefetchSource`] (same bounded
    /// channel, same ordering, same panic surfacing, and therefore the
    /// same bit-identical-coefficients guarantee); the only difference is
    /// where the worker's lifetime is anchored. The scope's implicit join
    /// cannot deadlock on a full channel: dropping the
    /// `ScopedPrefetchSource` (which every exit path out of the scope
    /// does first) hangs up the channel and the worker exits.
    #[derive(Debug)]
    pub struct ScopedPrefetchSource<'scope> {
        feed: ChannelConsumer,
        worker: Option<std::thread::ScopedJoinHandle<'scope, ()>>,
    }

    impl<'scope> ScopedPrefetchSource<'scope> {
        /// Moves `source` to a thread spawned on `scope` that reads ahead
        /// blocks of `block_rows` rows, buffering at most `depth` parsed
        /// blocks (both clamped to ≥ 1).
        pub fn spawn<'env, S>(
            scope: &'scope std::thread::Scope<'scope, 'env>,
            source: S,
            block_rows: usize,
            depth: usize,
        ) -> Self
        where
            S: RowSource + Send + 'scope,
        {
            let d = source.dim();
            let hint0 = source.hint_rows();
            let block_rows = block_rows.max(1);
            let (tx, rx) = std::sync::mpsc::sync_channel(depth.max(1));
            let worker = scope.spawn(move || run_worker(source, block_rows, tx));
            ScopedPrefetchSource {
                feed: ChannelConsumer::new(d, hint0, rx),
                worker: Some(worker),
            }
        }
    }

    impl RowSource for ScopedPrefetchSource<'_> {
        fn dim(&self) -> usize {
            self.feed.dim()
        }

        fn hint_rows(&self) -> Option<usize> {
            self.feed.hint_rows()
        }

        fn next_block(&mut self, max_rows: usize) -> Result<Option<RowBlock>> {
            self.feed.next_block(max_rows)
        }

        fn for_each_block(&mut self, max_rows: usize, f: &mut BlockVisitor<'_>) -> Result<()> {
            self.feed.for_each_block(max_rows, f)
        }
    }

    impl Drop for ScopedPrefetchSource<'_> {
        fn drop(&mut self) {
            self.feed.disconnect();
            if let Some(worker) = self.worker.take() {
                let _ = worker.join();
            }
        }
    }
}

/// Rows per block [`materialize`] requests while draining a source.
const MATERIALIZE_BLOCK_ROWS: usize = 8_192;

/// Drains a source into a materialized [`Dataset`] (default feature
/// names) — the fallback estimators without a native streaming path use,
/// and the bridge back from the streaming world for anything that still
/// needs random access. Runs through the borrowed-block visitor, so the
/// only allocation is the destination buffers themselves (sized up front
/// when the source hints its row count).
///
/// # Errors
/// Transport errors from the source; [`DataError::EmptyDataset`] when the
/// source yields no rows.
pub fn materialize<S: RowSource + ?Sized>(source: &mut S) -> Result<Dataset> {
    /// Preallocation ceiling: `hint_rows` is advisory, so a buggy (or
    /// hostile) hint must not trigger an unbounded up-front allocation —
    /// growth past this is amortized doubling, same as no hint at all.
    const PREALLOC_ROWS_MAX: usize = 1 << 20;
    let d = source.dim();
    let hint = source.hint_rows().unwrap_or(0).min(PREALLOC_ROWS_MAX);
    let mut xs: Vec<f64> = Vec::with_capacity(hint.saturating_mul(d));
    let mut ys: Vec<f64> = Vec::with_capacity(hint);
    source.for_each_block(MATERIALIZE_BLOCK_ROWS, &mut |block| {
        debug_assert_eq!(block.d(), d, "source yielded a block of foreign arity");
        xs.extend_from_slice(block.xs());
        ys.extend_from_slice(block.ys());
        Ok(())
    })?;
    if ys.is_empty() {
        return Err(DataError::EmptyDataset);
    }
    let x = Matrix::from_vec(ys.len(), d, xs)?;
    Dataset::new(x, ys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttributeKind;
    use crate::Schema;

    fn small() -> Dataset {
        let x = Matrix::from_rows(&[
            &[0.1, 0.2],
            &[0.3, 0.4],
            &[0.5, 0.6],
            &[0.0, -0.1],
            &[0.2, -0.3],
        ])
        .unwrap();
        Dataset::new(x, vec![1.0, 0.0, 1.0, -0.5, 0.25]).unwrap()
    }

    /// Drains `source` through the borrowed-block visitor, concatenating
    /// everything it yields and checking the per-block contract.
    fn drain_visitor<S: RowSource + ?Sized>(
        source: &mut S,
        max_rows: usize,
    ) -> (Vec<f64>, Vec<f64>) {
        let d = source.dim();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        source
            .for_each_block(max_rows, &mut |b| {
                assert!(b.rows() > 0 && b.rows() <= max_rows.max(1));
                assert_eq!(b.d(), d);
                assert_eq!(b.xs().len(), b.rows() * d);
                xs.extend_from_slice(b.xs());
                ys.extend_from_slice(b.ys());
                Ok(())
            })
            .unwrap();
        (xs, ys)
    }

    #[test]
    fn row_block_validates_shapes() {
        assert!(RowBlock::new(vec![1.0, 2.0], vec![0.5], 2).is_ok());
        assert!(matches!(
            RowBlock::new(vec![1.0], vec![0.5], 2),
            Err(DataError::LengthMismatch { .. })
        ));
        assert!(RowBlock::new(vec![], vec![], 0).is_err());
        // Borrowed views share the contract; round-trips are exact.
        let owned = RowBlock::new(vec![1.0, 2.0], vec![0.5], 2).unwrap();
        let view = owned.as_ref();
        assert_eq!(view.rows(), 1);
        assert_eq!(view.to_owned(), owned);
        assert!(RowBlockRef::new(&[1.0], &[0.5], 2).is_err());
        assert!(RowBlockRef::new(&[], &[], 0).is_err());
    }

    #[test]
    fn in_memory_source_streams_every_row_in_order() {
        let data = small();
        for max_rows in [1usize, 2, 3, 5, 100] {
            let mut src = InMemorySource::new(&data);
            assert_eq!(src.dim(), 2);
            assert_eq!(src.hint_rows(), Some(5));
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            while let Some(b) = src.next_block(max_rows).unwrap() {
                assert!(b.rows() <= max_rows && b.rows() > 0);
                assert_eq!(b.d(), 2);
                xs.extend_from_slice(b.xs());
                ys.extend_from_slice(b.ys());
            }
            assert_eq!(xs, data.x().as_slice());
            assert_eq!(ys, data.y());
            assert_eq!(src.hint_rows(), Some(0));
            // Exhausted stays exhausted; reset rewinds.
            assert!(src.next_block(4).unwrap().is_none());
            src.reset();
            assert!(src.next_block(4).unwrap().is_some());
        }
    }

    #[test]
    fn in_memory_visitor_matches_owned_blocks_and_shares_the_cursor() {
        let data = small();
        for max_rows in [1usize, 2, 3, 5, 100] {
            let mut src = InMemorySource::new(&data);
            let (xs, ys) = drain_visitor(&mut src, max_rows);
            assert_eq!(xs, data.x().as_slice());
            assert_eq!(ys, data.y());
            // Visitor drains fully: the owned path sees nothing after.
            assert!(src.next_block(4).unwrap().is_none());
            // Mixed consumption: pull one owned block, visit the rest.
            src.reset();
            let first = src.next_block(2).unwrap().unwrap();
            let (xs_rest, ys_rest) = drain_visitor(&mut src, 2);
            let mut all = first.ys().to_vec();
            all.extend_from_slice(&ys_rest);
            assert_eq!(all, data.y());
            assert_eq!(xs_rest.len(), (data.n() - 2) * data.d());
        }
    }

    #[test]
    fn take_dataset_hands_over_only_a_fresh_source() {
        let data = small();
        let mut src = InMemorySource::new(&data);
        let handed = src.take_dataset().expect("fresh source hands over");
        assert!(std::ptr::eq(handed, &data));
        // The handoff consumed the source.
        assert_eq!(src.hint_rows(), Some(0));
        assert!(src.next_block(8).unwrap().is_none());
        assert!(src.take_dataset().is_none());
        // A partially consumed source refuses.
        let mut src = InMemorySource::new(&data);
        let _ = src.next_block(2).unwrap();
        assert!(src.take_dataset().is_none());
        // Adapters with pending *concatenation* never hand over.
        let mut sharded = ShardedSource::new(vec![InMemorySource::new(&data)]).unwrap();
        assert!(sharded.take_dataset().is_none());
    }

    #[test]
    fn intercept_adapter_hands_over_the_cached_augmentation() {
        let data = small();
        // A fresh wrapped source hands over the augmented dataset …
        let mut src = InterceptAugmentSource::new(InMemorySource::new(&data));
        let handed = src
            .take_dataset()
            .expect("fresh intercept source hands over");
        assert!(std::ptr::eq(handed, data.augmented_for_intercept_cached()));
        assert_eq!(handed.d(), data.d() + 1);
        // … matching the streamed augmentation bit for bit.
        let fresh = data.augment_for_intercept();
        assert_eq!(handed.x().as_slice(), fresh.x().as_slice());
        assert_eq!(handed.y(), fresh.y());
        // The handoff consumed the inner source.
        assert!(src.next_block(8).unwrap().is_none());
        assert!(src.take_dataset().is_none());
        // A partially consumed inner source still refuses.
        let mut src = InterceptAugmentSource::new(InMemorySource::new(&data));
        let _ = src.next_block(2).unwrap();
        assert!(src.take_dataset().is_none());
    }

    #[test]
    fn visitor_error_stops_the_drain() {
        let data = small();
        let mut src = InMemorySource::new(&data);
        let mut seen = 0usize;
        let err = src.for_each_block(1, &mut |_| {
            seen += 1;
            if seen == 2 {
                Err(DataError::EmptyDataset)
            } else {
                Ok(())
            }
        });
        assert!(matches!(err, Err(DataError::EmptyDataset)));
        assert_eq!(seen, 2, "drain must stop at the first callback error");
    }

    #[test]
    fn materialize_roundtrips_in_memory() {
        let data = small();
        let back = materialize(&mut InMemorySource::new(&data)).unwrap();
        assert_eq!(back.x().as_slice(), data.x().as_slice());
        assert_eq!(back.y(), data.y());
        // Empty source is refused.
        let mut drained = InMemorySource::new(&data);
        while drained.next_block(64).unwrap().is_some() {}
        assert!(matches!(
            materialize(&mut drained),
            Err(DataError::EmptyDataset)
        ));
    }

    #[test]
    fn sharded_source_concatenates_in_order() {
        let data = small();
        let (a, b) = (
            data.subset(&[0, 1]).unwrap(),
            data.subset(&[2, 3, 4]).unwrap(),
        );
        let mut sharded =
            ShardedSource::new(vec![InMemorySource::new(&a), InMemorySource::new(&b)]).unwrap();
        assert_eq!(sharded.num_shards(), 2);
        assert_eq!(sharded.hint_rows(), Some(5));
        let merged = materialize(&mut sharded).unwrap();
        assert_eq!(merged.x().as_slice(), data.x().as_slice());
        assert_eq!(merged.y(), data.y());
        // The visitor path crosses shard boundaries in order too.
        let mut sharded =
            ShardedSource::new(vec![InMemorySource::new(&a), InMemorySource::new(&b)]).unwrap();
        let (xs, ys) = drain_visitor(&mut sharded, 2);
        assert_eq!(xs, data.x().as_slice());
        assert_eq!(ys, data.y());
    }

    #[test]
    fn sharded_source_rejects_bad_shards() {
        assert!(ShardedSource::<InMemorySource>::new(vec![]).is_err());
        let two = small();
        let one_col = two.select_features(&["x0"]).unwrap();
        assert!(ShardedSource::new(vec![
            InMemorySource::new(&two),
            InMemorySource::new(&one_col)
        ])
        .is_err());
    }

    #[test]
    fn boxed_dyn_sources_compose() {
        let data = small();
        let shards: Vec<Box<dyn RowSource>> = vec![
            Box::new(InMemorySource::new(&data)),
            Box::new(InMemorySource::new(&data)),
        ];
        let mut sharded = ShardedSource::new(shards).unwrap();
        assert_eq!(materialize(&mut sharded).unwrap().n(), 10);
    }

    #[test]
    fn intercept_augment_matches_dataset_augmentation_bitwise() {
        let data = small();
        let aug = data.augment_for_intercept();
        let mut src = InterceptAugmentSource::new(InMemorySource::new(&data));
        assert_eq!(src.dim(), 3);
        let streamed = materialize(&mut src).unwrap();
        for (a, b) in streamed.x().as_slice().iter().zip(aug.x().as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(streamed.y(), aug.y());
        // The owned-block path produces the same bits (it augments each
        // owned block instead of reusing the visitor scratch).
        let mut src = InterceptAugmentSource::new(InMemorySource::new(&data));
        let mut owned_xs = Vec::new();
        while let Some(b) = src.next_block(2).unwrap() {
            owned_xs.extend_from_slice(b.xs());
        }
        for (a, b) in owned_xs.iter().zip(aug.x().as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn csv_stream_matches_materialized_reader() {
        let data = small();
        let mut buf = Vec::new();
        crate::csv::write_dataset_to(&data, &mut buf).unwrap();
        let mut src = CsvStreamSource::from_reader(&buf[..]).unwrap();
        assert_eq!(src.dim(), 2);
        assert_eq!(src.feature_names(), data.feature_names());
        assert_eq!(src.header().last().map(String::as_str), Some("label"));
        let streamed = materialize(&mut src).unwrap();
        let direct = crate::csv::read_dataset_from(&buf[..]).unwrap();
        assert_eq!(streamed.x().as_slice(), direct.x().as_slice());
        assert_eq!(streamed.y(), direct.y());
        // The owned-block path reads the same rows.
        let mut src = CsvStreamSource::from_reader(&buf[..]).unwrap();
        let mut ys = Vec::new();
        while let Some(b) = src.next_block(2).unwrap() {
            assert!(b.rows() <= 2);
            ys.extend_from_slice(b.ys());
        }
        assert_eq!(ys, direct.y());
    }

    #[test]
    fn csv_stream_reports_parse_errors_with_line_numbers() {
        let csv = b"a,b,label\n0.1,0.2,0.3\n\n0.1,broken,0.3\n";
        let mut src = CsvStreamSource::from_reader(&csv[..]).unwrap();
        // First block parses the good row; the bad one (file line 4) errors.
        let got = src.next_block(1).unwrap().unwrap();
        assert_eq!(got.rows(), 1);
        match src.next_block(1) {
            Err(DataError::Parse { line, .. }) => assert_eq!(line, 4),
            other => panic!("expected parse error, got {other:?}"),
        }
        // The visitor path surfaces the same transport errors.
        let mut src = CsvStreamSource::from_reader(&csv[..]).unwrap();
        let err = src.for_each_block(8, &mut |_| Ok(()));
        assert!(matches!(err, Err(DataError::Parse { line: 4, .. })));
        // Header failures.
        assert!(CsvStreamSource::from_reader(&b""[..]).is_err());
        assert!(CsvStreamSource::from_reader(&b"only\n"[..]).is_err());
    }

    #[test]
    fn csv_select_columns_reorders_by_header_name() {
        // File order: junk, b, label-ish extra, a, y — the mapper must
        // pick (a, b) as features and y as the label, skipping the rest
        // (including the non-numeric junk column, unparsed).
        let csv = b"junk,b,extra,a,y\n\
                    hello,2.0,9.0,1.0,0.5\n\
                    world,4.0,9.0,3.0,-0.5\n";
        let mut src = CsvStreamSource::from_reader(&csv[..])
            .unwrap()
            .select_columns(&["a", "b"], "y")
            .unwrap();
        assert_eq!(src.dim(), 2);
        assert_eq!(src.feature_names(), &["a".to_string(), "b".to_string()]);
        let got = materialize(&mut src).unwrap();
        assert_eq!(got.x().as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(got.y(), &[0.5, -0.5]);

        // Ragged mapped rows are reported with their line number.
        let bad = b"a,b,y\n1.0,2.0,0.1\n1.0,2.0\n";
        let mut src = CsvStreamSource::from_reader(&bad[..])
            .unwrap()
            .select_columns(&["b"], "y")
            .unwrap();
        assert_eq!(src.next_block(1).unwrap().unwrap().xs(), &[2.0]);
        assert!(matches!(
            src.next_block(1),
            Err(DataError::Parse { line: 3, .. })
        ));
    }

    #[test]
    fn csv_select_columns_rejects_bad_requests() {
        let csv = b"a,b,a,y\n1.0,2.0,3.0,0.5\n";
        let open = || CsvStreamSource::from_reader(&csv[..]).unwrap();
        // Missing column.
        assert!(matches!(
            open().select_columns(&["nope"], "y"),
            Err(DataError::UnknownAttribute { .. })
        ));
        assert!(matches!(
            open().select_columns(&["b"], "nope"),
            Err(DataError::UnknownAttribute { .. })
        ));
        // A requested column that the header lists twice is ambiguous.
        assert!(matches!(
            open().select_columns(&["a"], "y"),
            Err(DataError::Parse { line: 1, .. })
        ));
        // Duplicate request / label doubling as feature / empty request.
        assert!(open().select_columns(&["b", "b"], "y").is_err());
        assert!(open().select_columns(&["y"], "y").is_err());
        assert!(open().select_columns(&[], "y").is_err());
        // Selecting after rows were read is refused.
        let mut started = open();
        let _ = started.next_block(1).unwrap();
        assert!(started.select_columns(&["b"], "y").is_err());
    }

    #[test]
    fn csv_select_columns_composes_with_normalization() {
        let schema = Schema::new()
            .with("age", AttributeKind::Integer { min: 0, max: 100 })
            .with("hours", AttributeKind::Integer { min: 0, max: 50 })
            .with(
                "income",
                AttributeKind::Continuous {
                    min: 0.0,
                    max: 1000.0,
                },
            );
        let norm = Normalizer::from_schema(&schema, "income").unwrap();
        // A foreign layout: label first, features reversed, plus noise.
        let csv = b"income,noise,hours,age\n500.0,x,25.0,50.0\n0.0,y,50.0,0.0\n";
        let mut src = CsvStreamSource::from_reader(&csv[..])
            .unwrap()
            .select_columns(&["age", "hours"], "income")
            .unwrap()
            .with_normalizer(norm.clone(), LabelTransform::Linear)
            .unwrap();
        let streamed = materialize(&mut src).unwrap();

        // Reference: the same rows through the canonical layout.
        let x = Matrix::from_rows(&[&[50.0, 25.0], &[0.0, 50.0]]).unwrap();
        let raw =
            Dataset::with_names(x, vec![500.0, 0.0], vec!["age".into(), "hours".into()]).unwrap();
        let reference = norm.normalize_linear(&raw).unwrap();
        for (a, b) in streamed.x().as_slice().iter().zip(reference.x().as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(streamed.y(), reference.y());

        // Arity check runs against the *selected* width.
        let narrow = Normalizer::from_bounds(vec![(0.0, 1.0)], (0.0, 1.0)).unwrap();
        assert!(CsvStreamSource::from_reader(&csv[..])
            .unwrap()
            .select_columns(&["age", "hours"], "income")
            .unwrap()
            .with_normalizer(narrow.clone(), LabelTransform::Raw)
            .is_err());
        // And select_columns re-checks a previously attached normalizer.
        assert!(CsvStreamSource::from_reader(&csv[..])
            .unwrap()
            .with_normalizer(narrow, LabelTransform::Raw)
            .is_err()); // wrong arity for the unselected layout already
    }

    #[test]
    fn csv_stream_normalizes_rows_identically_to_the_matrix_path() {
        let schema = Schema::new()
            .with("age", AttributeKind::Integer { min: 0, max: 100 })
            .with("hours", AttributeKind::Integer { min: 0, max: 50 })
            .with(
                "income",
                AttributeKind::Continuous {
                    min: 0.0,
                    max: 1000.0,
                },
            );
        let norm = Normalizer::from_schema(&schema, "income").unwrap();
        let x = Matrix::from_rows(&[&[50.0, 25.0], &[150.0, -10.0], &[0.0, 50.0]]).unwrap();
        let raw = Dataset::with_names(
            x,
            vec![500.0, 2000.0, 0.0],
            vec!["age".into(), "hours".into()],
        )
        .unwrap();
        let mut buf = Vec::new();
        crate::csv::write_dataset_to(&raw, &mut buf).unwrap();

        // Linear label map.
        let mut src = CsvStreamSource::from_reader(&buf[..])
            .unwrap()
            .with_normalizer(norm.clone(), LabelTransform::Linear)
            .unwrap();
        let streamed = materialize(&mut src).unwrap();
        let reference = norm.normalize_linear(&raw).unwrap();
        for (a, b) in streamed.x().as_slice().iter().zip(reference.x().as_slice()) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "feature map must be bit-identical"
            );
        }
        assert_eq!(streamed.y(), reference.y());
        streamed.check_normalized_linear().unwrap();

        // Binarized label map.
        let mut src = CsvStreamSource::from_reader(&buf[..])
            .unwrap()
            .with_normalizer(norm.clone(), LabelTransform::Binarize { threshold: 400.0 })
            .unwrap();
        let streamed = materialize(&mut src).unwrap();
        let reference = norm.normalize_logistic(&raw, 400.0).unwrap();
        assert_eq!(streamed.y(), reference.y());

        // Arity mismatch refused up front.
        let narrow = Normalizer::from_bounds(vec![(0.0, 1.0)], (0.0, 1.0)).unwrap();
        assert!(CsvStreamSource::from_reader(&buf[..])
            .unwrap()
            .with_normalizer(narrow, LabelTransform::Raw)
            .is_err());
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn prefetch_source_preserves_order_and_contract() {
        let data = small();
        let mut buf = Vec::new();
        crate::csv::write_dataset_to(&data, &mut buf).unwrap();
        for block_rows in [1usize, 2, 4, 64] {
            for depth in [1usize, 2, 8] {
                // Owned-block path.
                let inner =
                    CsvStreamSource::from_reader(std::io::Cursor::new(buf.clone())).unwrap();
                let mut pf = PrefetchSource::spawn(inner, block_rows, depth);
                assert_eq!(pf.dim(), 2);
                let got = materialize(&mut pf).unwrap();
                assert_eq!(got.x().as_slice(), data.x().as_slice());
                assert_eq!(got.y(), data.y());
                // Borrowed path at a cap below the read-ahead size.
                let inner =
                    CsvStreamSource::from_reader(std::io::Cursor::new(buf.clone())).unwrap();
                let mut pf = PrefetchSource::spawn(inner, block_rows, depth);
                let (xs, ys) = drain_visitor(&mut pf, 1);
                assert_eq!(xs, data.x().as_slice());
                assert_eq!(ys, data.y());
                // Sub-range serving when the consumer asks for fewer rows
                // than the worker read ahead.
                let inner =
                    CsvStreamSource::from_reader(std::io::Cursor::new(buf.clone())).unwrap();
                let mut pf = PrefetchSource::spawn(inner, block_rows, depth);
                let mut ys = Vec::new();
                while let Some(b) = pf.next_block(1).unwrap() {
                    assert_eq!(b.rows(), 1);
                    ys.extend_from_slice(b.ys());
                }
                assert_eq!(ys, data.y());
            }
        }
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn scoped_prefetch_drains_borrowed_sources_identically() {
        let data = small();
        // `InMemorySource` borrows `data`, so it is not `'static`: exactly
        // the source the unscoped `PrefetchSource::spawn` cannot accept.
        for block_rows in [1usize, 2, 64] {
            let got = std::thread::scope(|s| {
                let inner = InMemorySource::new(&data);
                let mut pf = ScopedPrefetchSource::spawn(s, inner, block_rows, 2);
                assert_eq!(pf.dim(), 2);
                assert_eq!(pf.hint_rows(), Some(data.n()));
                materialize(&mut pf).unwrap()
            });
            assert_eq!(got.x().as_slice(), data.x().as_slice());
            assert_eq!(got.y(), data.y());
        }
        // Dropping mid-stream inside the scope (worker possibly blocked on
        // a full channel) must not deadlock the scope's implicit join.
        std::thread::scope(|s| {
            let pf = ScopedPrefetchSource::spawn(s, InMemorySource::new(&data), 1, 1);
            drop(pf);
        });
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn prefetch_source_propagates_worker_errors_and_drops_cleanly() {
        let csv = b"a,b,label\n0.1,0.2,0.3\nbad,row,here\n";
        let inner = CsvStreamSource::from_reader(std::io::Cursor::new(csv.to_vec())).unwrap();
        let mut pf = PrefetchSource::spawn(inner, 1, 1);
        assert_eq!(pf.next_block(8).unwrap().unwrap().rows(), 1);
        assert!(matches!(
            pf.next_block(8),
            Err(DataError::Parse { line: 3, .. })
        ));
        assert!(pf.next_block(8).unwrap().is_none(), "errored stream ends");
        // Dropping with the worker mid-stream (full channel) must not hang.
        let data = small();
        let mut buf = Vec::new();
        crate::csv::write_dataset_to(&data, &mut buf).unwrap();
        let inner = CsvStreamSource::from_reader(std::io::Cursor::new(buf)).unwrap();
        let pf = PrefetchSource::spawn(inner, 1, 1);
        drop(pf);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn prefetch_source_surfaces_worker_panics_as_typed_errors() {
        /// A source whose transport panics after one good block.
        #[derive(Debug)]
        struct PanickySource {
            blocks: usize,
        }
        impl RowSource for PanickySource {
            fn dim(&self) -> usize {
                2
            }
            fn next_block(&mut self, _max_rows: usize) -> Result<Option<RowBlock>> {
                assert!(self.blocks != 1, "simulated bug in the inner source");
                self.blocks += 1;
                Ok(Some(RowBlock::new(vec![0.1, 0.2], vec![1.0], 2).unwrap()))
            }
        }

        let mut pf = PrefetchSource::spawn(PanickySource { blocks: 0 }, 4, 2);
        assert_eq!(pf.next_block(8).unwrap().unwrap().rows(), 1);
        match pf.next_block(8) {
            Err(DataError::WorkerPanic { detail }) => {
                assert!(detail.contains("simulated bug"), "payload lost: {detail}");
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
        // After the panic the stream is over, not wedged.
        assert!(pf.next_block(8).unwrap().is_none());
    }

    #[test]
    fn csv_row_error_policy_quarantines_up_to_the_cap() {
        let csv = "a,b,label\n0.1,0.2,1.0\nbad,0.3,0.0\n0.4,0.5,2.0\n0.6,oops,3.0\n0.7,0.8,4.0\n";
        // Strict: first bad row kills the stream.
        let mut strict = CsvStreamSource::from_reader(std::io::Cursor::new(csv)).unwrap();
        assert!(matches!(
            materialize(&mut strict),
            Err(DataError::Parse { line: 3, .. })
        ));
        // SkipUpTo(2): both bad rows quarantined, clean rows survive.
        let mut lax = CsvStreamSource::from_reader(std::io::Cursor::new(csv))
            .unwrap()
            .with_row_error_policy(RowErrorPolicy::SkipUpTo(2));
        let data = materialize(&mut lax).unwrap();
        assert_eq!(data.n(), 3);
        assert_eq!(data.y(), &[1.0, 2.0, 4.0]);
        let report = lax.quarantine();
        assert_eq!(report.len(), 2);
        assert_eq!(report[0].line, 3);
        assert_eq!(report[1].line, 5);
        assert!(report[0].reason.contains("not a number"));
        // SkipUpTo(1): the second bad row exceeds the cap and fails.
        let mut capped = CsvStreamSource::from_reader(std::io::Cursor::new(csv))
            .unwrap()
            .with_row_error_policy(RowErrorPolicy::SkipUpTo(1));
        assert!(matches!(
            materialize(&mut capped),
            Err(DataError::Parse { line: 5, .. })
        ));
        assert_eq!(capped.quarantine().len(), 1);
    }

    #[test]
    fn csv_row_error_policy_covers_both_block_paths_identically() {
        let csv = "a,b,label\n0.1,0.2,1.0\nbad,0.3,0.0\n0.4,0.5,2.0\n";
        let mut owned = CsvStreamSource::from_reader(std::io::Cursor::new(csv))
            .unwrap()
            .with_row_error_policy(RowErrorPolicy::SkipUpTo(8));
        let mut ys_owned = Vec::new();
        while let Some(b) = owned.next_block(2).unwrap() {
            ys_owned.extend_from_slice(b.ys());
        }
        let mut visited = CsvStreamSource::from_reader(std::io::Cursor::new(csv))
            .unwrap()
            .with_row_error_policy(RowErrorPolicy::SkipUpTo(8));
        let (_, ys_visited) = drain_visitor(&mut visited, 2);
        assert_eq!(ys_owned, vec![1.0, 2.0]);
        assert_eq!(ys_owned, ys_visited);
        assert_eq!(owned.quarantine(), visited.quarantine());
    }

    #[test]
    fn sharded_source_attributes_errors_to_the_failing_shard() {
        let good = "a,b,label\n0.1,0.2,1.0\n0.3,0.4,2.0\n";
        let bad = "a,b,label\n0.5,0.6,3.0\nbroken,0.7,4.0\n";
        let make = |text: &str| {
            CsvStreamSource::from_reader(std::io::Cursor::new(text.to_string())).unwrap()
        };

        // Default labels, owned-block path: the parse error in the second
        // shard is wrapped with `shard-1` and the failing block's index.
        let mut src = ShardedSource::new(vec![make(good), make(bad)]).unwrap();
        let mut err = None;
        loop {
            match src.next_block(1) {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        match err.expect("the bad shard must fail") {
            DataError::InShard {
                shard,
                block,
                source,
            } => {
                assert_eq!(shard, "shard-1");
                assert_eq!(block, 1, "one good block preceded the failure");
                assert!(matches!(*source, DataError::Parse { line: 3, .. }));
            }
            other => panic!("expected InShard, got {other}"),
        }

        // Custom labels, visitor path, *visitor-raised* (row-contract
        // style) error: same attribution.
        let mut src = ShardedSource::new(vec![make(good), make(good)])
            .unwrap()
            .with_labels(vec!["us-census".into(), "brazil-census".into()])
            .unwrap();
        let mut blocks = 0usize;
        let err = src
            .for_each_block(1, &mut |_b| {
                blocks += 1;
                if blocks == 3 {
                    Err(DataError::NotNormalized {
                        detail: "‖x‖₂ > 1".to_string(),
                    })
                } else {
                    Ok(())
                }
            })
            .unwrap_err();
        match err {
            DataError::InShard {
                shard,
                block,
                source,
            } => {
                assert_eq!(shard, "brazil-census");
                assert_eq!(block, 0, "first block of the second shard");
                assert!(matches!(*source, DataError::NotNormalized { .. }));
                // std::error::Error::source exposes the cause chain.
                use std::error::Error as _;
                let err = DataError::InShard {
                    shard,
                    block,
                    source,
                };
                assert!(err.source().is_some());
            }
            other => panic!("expected InShard, got {other}"),
        }
    }

    #[test]
    fn take_rows_cuts_a_shared_stream_into_consecutive_segments() {
        let data = small();
        let mut src = InMemorySource::new(&data);
        // Segment the 5-row stream as 2 + 2 + 1 through the same cursor.
        let mut all_xs = Vec::new();
        let mut all_ys = Vec::new();
        for len in [2usize, 2, 1] {
            let mut seg = TakeRows::new(&mut src, len);
            assert_eq!(seg.dim(), 2);
            assert_eq!(seg.hint_rows(), Some(len));
            let mut got = 0usize;
            while let Some(b) = seg.next_block(100).unwrap() {
                got += b.rows();
                all_xs.extend_from_slice(b.xs());
                all_ys.extend_from_slice(b.ys());
            }
            assert_eq!(got, len, "segment must stop exactly at its cap");
            assert_eq!(seg.remaining(), 0);
            // Exhausted stays exhausted without touching the inner cursor.
            assert!(seg.next_block(100).unwrap().is_none());
        }
        assert_eq!(all_xs, data.x().as_slice());
        assert_eq!(all_ys, data.y());
        assert!(src.next_block(4).unwrap().is_none());

        // A cap beyond the stream just drains it.
        let mut src = InMemorySource::new(&data);
        let mut over = TakeRows::new(&mut src, 100);
        let (xs, _ys) = drain_visitor(&mut over, 3);
        assert_eq!(xs, data.x().as_slice());
        assert!(over.next_block(4).unwrap().is_none());
    }

    #[test]
    fn provenanced_source_attributes_errors_and_passes_rows_through() {
        let data = small();
        // Pass-through: identical rows, identical hints, handoff intact.
        let mut src = ProvenancedSource::new(InMemorySource::new(&data), "client-2");
        assert_eq!(src.label(), "client-2");
        assert_eq!(src.hint_rows(), Some(5));
        let (xs, ys) = drain_visitor(&mut src, 2);
        assert_eq!(xs, data.x().as_slice());
        assert_eq!(ys, data.y());
        let mut fresh = ProvenancedSource::new(InMemorySource::new(&data), "client-2");
        assert!(fresh.take_dataset().is_some());

        // A visitor (consumer-side) error is attributed to the label and
        // the failing block's index.
        let mut src = ProvenancedSource::new(InMemorySource::new(&data), "client-7");
        let mut blocks = 0usize;
        let err = src
            .for_each_block(2, &mut |_b| {
                blocks += 1;
                if blocks == 2 {
                    Err(DataError::NotNormalized {
                        detail: "‖x‖₂ > 1".to_string(),
                    })
                } else {
                    Ok(())
                }
            })
            .unwrap_err();
        match err {
            DataError::InShard { shard, block, .. } => {
                assert_eq!(shard, "client-7");
                assert_eq!(block, 1);
            }
            other => panic!("expected InShard, got {other}"),
        }

        // A transport error from the wrapped source gets the same wrap on
        // the owned-block path.
        let csv = CsvStreamSource::from_reader(std::io::Cursor::new(
            "a,b,y\n0.1,0.2,1.0\n0.3,not-a-number,0.0\n",
        ))
        .unwrap();
        let mut src = ProvenancedSource::new(csv, "client-9");
        let first = src.next_block(1).unwrap();
        assert!(first.is_some());
        let err = src.next_block(1).unwrap_err();
        match err {
            DataError::InShard { shard, block, .. } => {
                assert_eq!(shard, "client-9");
                assert_eq!(block, 1);
            }
            other => panic!("expected InShard, got {other}"),
        }
    }
}
