//! Seeded subsampling and train/test splitting.
//!
//! Table 2's first experimental axis varies the *sampling rate* from 0.1 to
//! 1.0: each run draws a uniform random subset of the census and evaluates
//! every method on it. Sampling here is deterministic given the RNG so a
//! figure's series for different methods use the *same* subsets.

use rand::Rng;

use crate::dataset::Dataset;
use crate::{DataError, Result};

/// Fisher–Yates shuffle of `0..n` driven by `rng`.
#[must_use]
pub fn shuffled_indices(rng: &mut impl Rng, n: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    idx
}

/// Draws a uniform subsample of `⌈rate · n⌉` rows (without replacement).
///
/// # Errors
/// [`DataError::InvalidParameter`] unless `0 < rate ≤ 1`.
pub fn subsample(data: &Dataset, rate: f64, rng: &mut impl Rng) -> Result<Dataset> {
    if !(rate > 0.0 && rate <= 1.0) {
        return Err(DataError::InvalidParameter {
            name: "rate",
            reason: format!("{rate} not in (0, 1]"),
        });
    }
    let n = data.n();
    let k = ((rate * n as f64).ceil() as usize).clamp(1, n);
    if k == n {
        return Ok(data.clone());
    }
    let idx = shuffled_indices(rng, n);
    data.subset(&idx[..k])
}

/// Splits into `(train, test)` with `test_fraction` of rows held out.
///
/// # Errors
/// [`DataError::InvalidParameter`] unless `0 < test_fraction < 1` leaves at
/// least one row on each side.
pub fn train_test_split(
    data: &Dataset,
    test_fraction: f64,
    rng: &mut impl Rng,
) -> Result<(Dataset, Dataset)> {
    if !(test_fraction > 0.0 && test_fraction < 1.0) {
        return Err(DataError::InvalidParameter {
            name: "test_fraction",
            reason: format!("{test_fraction} not in (0, 1)"),
        });
    }
    let n = data.n();
    let n_test = ((test_fraction * n as f64).round() as usize).clamp(1, n - 1);
    let idx = shuffled_indices(rng, n);
    let test = data.subset(&idx[..n_test])?;
    let train = data.subset(&idx[n_test..])?;
    Ok((train, test))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fm_linalg::Matrix;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(5)
    }

    fn dataset(n: usize) -> Dataset {
        let x = Matrix::from_fn(n, 2, |r, c| (r * 2 + c) as f64);
        let y = (0..n).map(|i| i as f64).collect();
        Dataset::new(x, y).unwrap()
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = rng();
        let idx = shuffled_indices(&mut r, 100);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_actually_shuffles() {
        let mut r = rng();
        let idx = shuffled_indices(&mut r, 100);
        assert_ne!(idx, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn subsample_size() {
        let ds = dataset(100);
        let mut r = rng();
        assert_eq!(subsample(&ds, 0.3, &mut r).unwrap().n(), 30);
        assert_eq!(subsample(&ds, 1.0, &mut r).unwrap().n(), 100);
        assert_eq!(subsample(&ds, 0.001, &mut r).unwrap().n(), 1);
    }

    #[test]
    fn subsample_validates_rate() {
        let ds = dataset(10);
        let mut r = rng();
        assert!(subsample(&ds, 0.0, &mut r).is_err());
        assert!(subsample(&ds, 1.5, &mut r).is_err());
        assert!(subsample(&ds, -0.2, &mut r).is_err());
        assert!(subsample(&ds, f64::NAN, &mut r).is_err());
    }

    #[test]
    fn subsample_rows_come_from_source() {
        let ds = dataset(50);
        let mut r = rng();
        let sub = subsample(&ds, 0.2, &mut r).unwrap();
        for (x, y) in sub.tuples() {
            // Row content encodes its original index.
            assert_eq!(x[0], y * 2.0);
            assert_eq!(x[1], y * 2.0 + 1.0);
        }
    }

    #[test]
    fn split_partitions_rows() {
        let ds = dataset(100);
        let mut r = rng();
        let (train, test) = train_test_split(&ds, 0.2, &mut r).unwrap();
        assert_eq!(train.n(), 80);
        assert_eq!(test.n(), 20);
        // Disjoint: label values identify original rows.
        let mut seen: Vec<f64> = train.y().to_vec();
        seen.extend_from_slice(test.y());
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expected: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn split_validates_fraction() {
        let ds = dataset(10);
        let mut r = rng();
        assert!(train_test_split(&ds, 0.0, &mut r).is_err());
        assert!(train_test_split(&ds, 1.0, &mut r).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = dataset(40);
        let a = subsample(&ds, 0.5, &mut rng()).unwrap();
        let b = subsample(&ds, 0.5, &mut rng()).unwrap();
        assert_eq!(a.y(), b.y());
    }
}
