use std::fmt;

/// Errors produced by dataset construction and transformation.
#[derive(Debug)]
pub enum DataError {
    /// Feature matrix and label vector disagree on the number of rows.
    LengthMismatch {
        /// Rows in the feature matrix.
        rows: usize,
        /// Entries in the label vector.
        labels: usize,
    },
    /// An operation that needs at least one row received an empty dataset.
    EmptyDataset,
    /// A requested attribute/column does not exist.
    UnknownAttribute {
        /// The attribute name that failed to resolve.
        name: String,
    },
    /// A value fell outside its declared domain.
    OutOfDomain {
        /// Attribute involved.
        attribute: String,
        /// Offending value.
        value: f64,
    },
    /// The dataset violates the paper's normalization contract
    /// (`‖x‖₂ ≤ 1`, labels in the expected range).
    NotNormalized {
        /// What was violated.
        detail: String,
    },
    /// Parameter validation failure (fold counts, sampling rates, …).
    InvalidParameter {
        /// Which parameter.
        name: &'static str,
        /// Description of the constraint violated.
        reason: String,
    },
    /// Underlying linear-algebra failure.
    Linalg(fm_linalg::LinalgError),
    /// I/O failure while reading or writing CSV.
    Io(std::io::Error),
    /// Malformed CSV content.
    Parse {
        /// Line number (1-based) where parsing failed.
        line: usize,
        /// Description.
        detail: String,
    },
    /// A background ingestion worker (e.g. a `PrefetchSource` thread,
    /// under the `parallel` feature) died before finishing its stream.
    WorkerPanic {
        /// Panic payload or description of how the worker died.
        detail: String,
    },
    /// A block channel (see [`crate::queue`]) was closed by the other
    /// side while this side still had rows to move.
    ChannelClosed {
        /// Which side hung up, and in what state.
        detail: String,
    },
    /// An error raised while draining one shard of a
    /// [`crate::stream::ShardedSource`], annotated with which shard and
    /// which of its blocks failed so multi-shard ingest is attributable.
    InShard {
        /// Shard label (caller-provided or `shard-<index>`).
        shard: String,
        /// 0-based index of the failing block within the shard.
        block: usize,
        /// The underlying error.
        source: Box<DataError>,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::LengthMismatch { rows, labels } => {
                write!(f, "feature matrix has {rows} rows but {labels} labels")
            }
            DataError::EmptyDataset => write!(f, "dataset is empty"),
            DataError::UnknownAttribute { name } => write!(f, "unknown attribute `{name}`"),
            DataError::OutOfDomain { attribute, value } => {
                write!(f, "value {value} outside the domain of `{attribute}`")
            }
            DataError::NotNormalized { detail } => write!(f, "dataset not normalized: {detail}"),
            DataError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            DataError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            DataError::Io(e) => write!(f, "I/O error: {e}"),
            DataError::Parse { line, detail } => {
                write!(f, "CSV parse error at line {line}: {detail}")
            }
            DataError::WorkerPanic { detail } => {
                write!(f, "background ingestion worker died: {detail}")
            }
            DataError::ChannelClosed { detail } => {
                write!(f, "block channel closed: {detail}")
            }
            DataError::InShard {
                shard,
                block,
                source,
            } => {
                write!(f, "in shard `{shard}` (block {block}): {source}")
            }
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Linalg(e) => Some(e),
            DataError::Io(e) => Some(e),
            DataError::InShard { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<fm_linalg::LinalgError> for DataError {
    fn from(e: fm_linalg::LinalgError) -> Self {
        DataError::Linalg(e)
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}
