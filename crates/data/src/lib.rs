//! Data substrate for the `functional-mechanism` workspace: datasets,
//! normalization, synthetic census generation, sampling, cross-validation
//! and accuracy metrics.
//!
//! Section 7 of *Functional Mechanism* (Zhang et al., VLDB 2012) evaluates
//! on two IPUMS census extracts (US, Brazil) that cannot be redistributed;
//! this crate provides everything around them:
//!
//! * [`dataset::Dataset`] — an `n × d` feature matrix plus a label vector,
//!   the object every mechanism in the workspace consumes.
//! * [`schema::Schema`] — per-attribute domain metadata. The DPME and
//!   Filter-Priority baselines discretize attribute domains into histogram
//!   cells, so domains are first-class here.
//! * [`normalize::Normalizer`] — the paper's exact preprocessing
//!   (footnote 1): `x_ij ← (x_ij − α_j) / ((β_j − α_j)·√d)` which guarantees
//!   `‖x_i‖₂ ≤ 1`, plus the `[−1, 1]` rescaling of `Y` for linear
//!   regression (Definition 1) and thresholding of `Y` into `{0, 1}` for
//!   logistic regression (Section 7's income classification).
//! * [`census`] — seeded synthetic census generators standing in for the
//!   IPUMS US (370k rows) and Brazil (190k rows) datasets, with the same 13
//!   attributes (Marital Status one-hot expanded to 14), realistic marginal
//!   distributions, and a ground-truth income process so regression has
//!   signal to find. See DESIGN.md §4 for the substitution argument.
//! * [`synth`] — minimal synthetic regression/classification generators
//!   with known ground-truth parameters, for tests and convergence checks.
//! * [`sampling`] / [`cv`] — seeded subsampling (Table 2's sampling-rate
//!   axis) and k-fold cross-validation (the paper's 5-fold × 50 repeats).
//! * [`metrics`] — mean squared error and misclassification rate, the
//!   paper's two accuracy measures.
//! * [`csv`] — plain-text persistence for datasets and experiment output.
//! * [`stream`] — **streaming ingestion**: the [`stream::RowSource`]
//!   trait yields the logical dataset as bounded [`stream::RowBlock`]s,
//!   with [`stream::InMemorySource`] wrapping a [`Dataset`],
//!   [`stream::CsvStreamSource`] reading/normalizing/clamping CSV rows
//!   without materializing the file, and [`stream::ShardedSource`]
//!   concatenating disjoint shards — the surface `fm-core`'s
//!   `fit_stream`/`partial_fit` entry points consume to run Algorithm 1
//!   out-of-core.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod census;
pub mod csv;
pub mod cv;
pub mod dataset;
pub mod fault;
pub mod metrics;
pub mod normalize;
pub mod queue;
pub mod sampling;
pub mod schema;
pub mod stream;
pub mod synth;

mod error;

pub use dataset::Dataset;
pub use error::DataError;
pub use schema::{AttributeKind, Schema};

/// Result alias for fallible data operations.
pub type Result<T> = std::result::Result<T, DataError>;
