//! Minimal CSV persistence for datasets and experiment results.
//!
//! Numeric-only, comma-separated, one header row. Implemented by hand
//! (≈100 lines) rather than pulling a CSV dependency — the workspace's
//! dependency policy (DESIGN.md §2) keeps external crates to `rand`,
//! `proptest` and `criterion`.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use fm_linalg::Matrix;

use crate::dataset::Dataset;
use crate::{DataError, Result};

/// Writes a dataset as CSV: header `feature..., label`, one row per tuple.
///
/// # Errors
/// I/O failures surface as [`DataError::Io`].
pub fn write_dataset(data: &Dataset, path: &Path) -> Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    write_dataset_to(data, &mut w)
}

/// Writes a dataset as CSV to any writer.
///
/// # Errors
/// I/O failures surface as [`DataError::Io`].
pub fn write_dataset_to(data: &Dataset, w: &mut impl Write) -> Result<()> {
    for (i, name) in data.feature_names().iter().enumerate() {
        if i > 0 {
            write!(w, ",")?;
        }
        write!(w, "{name}")?;
    }
    writeln!(w, ",label")?;
    for (x, y) in data.tuples() {
        for v in x {
            write!(w, "{v},")?;
        }
        writeln!(w, "{y}")?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a dataset from a CSV file produced by [`write_dataset`] (or any
/// numeric CSV whose last column is the label).
///
/// # Errors
/// [`DataError::Io`] / [`DataError::Parse`] on malformed content.
pub fn read_dataset(path: &Path) -> Result<Dataset> {
    let file = File::open(path)?;
    read_dataset_from(BufReader::new(file))
}

/// Reads a dataset from any reader; see [`read_dataset`].
///
/// # Errors
/// [`DataError::Io`] / [`DataError::Parse`] on malformed content.
pub fn read_dataset_from(r: impl Read) -> Result<Dataset> {
    let reader = BufReader::new(r);
    let mut lines = reader.lines();
    let header = lines.next().ok_or(DataError::Parse {
        line: 1,
        detail: "empty file".to_string(),
    })??;
    let columns: Vec<String> = header.split(',').map(|s| s.trim().to_string()).collect();
    if columns.len() < 2 {
        return Err(DataError::Parse {
            line: 1,
            detail: "need at least one feature column and a label column".to_string(),
        });
    }
    let d = columns.len() - 1;
    let names: Vec<String> = columns[..d].to_vec();

    let mut data = Vec::new();
    let mut y = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        y.push(parse_numeric_row(&line, d, lineno + 2, &mut data)?);
    }
    let n = y.len();
    if n == 0 {
        return Err(DataError::EmptyDataset);
    }
    let x = Matrix::from_vec(n, d, data)?;
    Dataset::with_names(x, y, names)
}

/// Parses one data line of the CSV dialect (`d` feature fields then the
/// label), appending the features to `xs` and returning the label — shared
/// by the materializing reader above and the streaming
/// [`crate::stream::CsvStreamSource`], so the two can never drift on
/// dialect details. `lineno` is the 1-based file line for error reporting.
pub(crate) fn parse_numeric_row(
    line: &str,
    d: usize,
    lineno: usize,
    xs: &mut Vec<f64>,
) -> Result<f64> {
    // Single pass: parse-while-counting (this is the streaming reader's
    // hot loop — a separate field-count scan would read every line
    // twice). On any error the partial row is rolled back so callers
    // keep a consistent buffer.
    let start = xs.len();
    let mut label = 0.0;
    let mut fields = 0usize;
    let mut it = line.split(',');
    for v in it.by_ref() {
        if fields == d + 1 {
            let total = fields + 1 + it.count();
            xs.truncate(start);
            return Err(DataError::Parse {
                line: lineno,
                detail: format!("expected {} fields, found {total}", d + 1),
            });
        }
        match v.trim().parse::<f64>() {
            Ok(parsed) if fields < d => xs.push(parsed),
            Ok(parsed) => label = parsed,
            Err(_) => {
                xs.truncate(start);
                return Err(DataError::Parse {
                    line: lineno,
                    detail: format!("`{v}` is not a number"),
                });
            }
        }
        fields += 1;
    }
    if fields != d + 1 {
        xs.truncate(start);
        return Err(DataError::Parse {
            line: lineno,
            detail: format!("expected {} fields, found {fields}", d + 1),
        });
    }
    Ok(label)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let x = Matrix::from_rows(&[&[0.25, -1.5], &[3.0, 0.0]]).unwrap();
        Dataset::with_names(x, vec![1.0, -1.0], vec!["a".into(), "b".into()]).unwrap()
    }

    #[test]
    fn roundtrip_through_memory() {
        let ds = sample();
        let mut buf = Vec::new();
        write_dataset_to(&ds, &mut buf).unwrap();
        let back = read_dataset_from(&buf[..]).unwrap();
        assert_eq!(back.n(), 2);
        assert_eq!(back.d(), 2);
        assert_eq!(back.y(), ds.y());
        assert_eq!(back.x().as_slice(), ds.x().as_slice());
        assert_eq!(back.feature_names(), ds.feature_names());
    }

    #[test]
    fn roundtrip_through_file() {
        let dir = std::env::temp_dir().join("fm_data_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.csv");
        let ds = sample();
        write_dataset(&ds, &path).unwrap();
        let back = read_dataset(&path).unwrap();
        assert_eq!(back.y(), ds.y());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_is_emitted() {
        let mut buf = Vec::new();
        write_dataset_to(&sample(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("a,b,label\n"));
    }

    #[test]
    fn rejects_empty_and_malformed() {
        assert!(read_dataset_from(&b""[..]).is_err());
        assert!(read_dataset_from(&b"only_label\n1.0\n"[..]).is_err());
        let ragged = b"a,b,label\n1.0,2.0\n";
        assert!(matches!(
            read_dataset_from(&ragged[..]),
            Err(DataError::Parse { line: 2, .. })
        ));
        let non_numeric = b"a,b,label\n1.0,x,2.0\n";
        assert!(read_dataset_from(&non_numeric[..]).is_err());
        let header_only = b"a,b,label\n";
        assert!(matches!(
            read_dataset_from(&header_only[..]),
            Err(DataError::EmptyDataset)
        ));
    }

    #[test]
    fn blank_lines_skipped() {
        let csv = b"a,label\n1.0,2.0\n\n3.0,4.0\n";
        let ds = read_dataset_from(&csv[..]).unwrap();
        assert_eq!(ds.n(), 2);
    }
}
