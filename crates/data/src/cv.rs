//! k-fold cross-validation.
//!
//! The paper's protocol (Section 7): "we perform 5-fold cross-validation 50
//! times for each algorithm, and we report the average results".
//! [`KFold`] produces one shuffled partition into `k` folds; the experiment
//! harness instantiates it repeatedly with fresh RNG state for the repeats.

use rand::Rng;

use crate::dataset::Dataset;
use crate::sampling::shuffled_indices;
use crate::{DataError, Result};

/// One train/test split of a cross-validation round.
#[derive(Debug, Clone)]
pub struct Fold {
    /// Row indices of the training portion.
    pub train: Vec<usize>,
    /// Row indices of the held-out portion.
    pub test: Vec<usize>,
}

/// A shuffled `k`-fold partition of `n` rows.
#[derive(Debug, Clone)]
pub struct KFold {
    folds: Vec<Fold>,
}

impl KFold {
    /// Partitions `n` rows into `k` shuffled folds.
    ///
    /// Fold sizes differ by at most one row; every row appears in exactly
    /// one test set.
    ///
    /// # Errors
    /// [`DataError::InvalidParameter`] unless `2 ≤ k ≤ n`.
    pub fn new(n: usize, k: usize, rng: &mut impl Rng) -> Result<Self> {
        if k < 2 || k > n {
            return Err(DataError::InvalidParameter {
                name: "k",
                reason: format!("k = {k} must satisfy 2 ≤ k ≤ n = {n}"),
            });
        }
        let idx = shuffled_indices(rng, n);
        // Fold f takes rows [f·n/k, (f+1)·n/k) of the shuffled order.
        let mut folds = Vec::with_capacity(k);
        for f in 0..k {
            let start = f * n / k;
            let end = (f + 1) * n / k;
            let test: Vec<usize> = idx[start..end].to_vec();
            let mut train = Vec::with_capacity(n - test.len());
            train.extend_from_slice(&idx[..start]);
            train.extend_from_slice(&idx[end..]);
            folds.push(Fold { train, test });
        }
        Ok(KFold { folds })
    }

    /// Number of folds `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.folds.len()
    }

    /// The folds.
    #[must_use]
    pub fn folds(&self) -> &[Fold] {
        &self.folds
    }

    /// Materialises fold `f` as `(train, test)` datasets.
    ///
    /// # Errors
    /// Propagates [`Dataset::subset`] errors (cannot occur for indices this
    /// type produced over the same dataset).
    pub fn split(&self, data: &Dataset, f: usize) -> Result<(Dataset, Dataset)> {
        let fold = self
            .folds
            .get(f)
            .ok_or_else(|| DataError::InvalidParameter {
                name: "fold",
                reason: format!("fold {f} out of range for k = {}", self.k()),
            })?;
        Ok((data.subset(&fold.train)?, data.subset(&fold.test)?))
    }
}

/// Splits `data` into a shuffled `(train, test)` pair with the given test
/// fraction — the simple holdout used by the model-selection example and
/// anywhere a single validation split (rather than full k-fold) suffices.
///
/// # Errors
/// [`DataError::InvalidParameter`] unless `0 < test_fraction < 1` and both
/// resulting splits are non-empty.
pub fn train_test_split(
    data: &Dataset,
    test_fraction: f64,
    rng: &mut impl Rng,
) -> Result<(Dataset, Dataset)> {
    if !test_fraction.is_finite() || test_fraction <= 0.0 || test_fraction >= 1.0 {
        return Err(DataError::InvalidParameter {
            name: "test_fraction",
            reason: format!("{test_fraction} must be in (0, 1)"),
        });
    }
    let n = data.n();
    let n_test = ((n as f64) * test_fraction).round() as usize;
    if n_test == 0 || n_test == n {
        return Err(DataError::InvalidParameter {
            name: "test_fraction",
            reason: format!("fraction {test_fraction} leaves an empty split for n = {n}"),
        });
    }
    let idx = shuffled_indices(rng, n);
    let test = data.subset(&idx[..n_test])?;
    let train = data.subset(&idx[n_test..])?;
    Ok((train, test))
}

/// Runs `evaluate(train, test)` over every fold and returns the per-fold
/// results — the inner loop of the paper's evaluation protocol.
///
/// Generic over the fold result `S`: a plain `f64` score, a fitted model,
/// or any richer record — whatever the evaluation closure produces.
/// (`fm-core`'s `PrivacySession::cross_validate` layers budget accounting
/// on top of the same fold machinery for estimator-trait consumers.)
///
/// # Errors
/// Propagates fold-construction and callback errors.
pub fn cross_validate<S, E>(
    data: &Dataset,
    k: usize,
    rng: &mut impl Rng,
    mut evaluate: impl FnMut(&Dataset, &Dataset) -> std::result::Result<S, E>,
) -> Result<Vec<S>>
where
    DataError: From<E>,
{
    let kf = KFold::new(data.n(), k, rng)?;
    let mut scores = Vec::with_capacity(k);
    for f in 0..k {
        let (train, test) = kf.split(data, f)?;
        scores.push(evaluate(&train, &test).map_err(DataError::from)?);
    }
    Ok(scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fm_linalg::Matrix;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(11)
    }

    fn dataset(n: usize) -> Dataset {
        let x = Matrix::from_fn(n, 1, |r, _| r as f64);
        Dataset::new(x, (0..n).map(|i| i as f64).collect()).unwrap()
    }

    #[test]
    fn folds_partition_everything() {
        let mut r = rng();
        let kf = KFold::new(103, 5, &mut r).unwrap();
        assert_eq!(kf.k(), 5);
        let mut all_test: Vec<usize> = kf.folds().iter().flat_map(|f| f.test.clone()).collect();
        all_test.sort_unstable();
        assert_eq!(all_test, (0..103).collect::<Vec<_>>());
    }

    #[test]
    fn fold_sizes_balanced() {
        let mut r = rng();
        let kf = KFold::new(103, 5, &mut r).unwrap();
        for f in kf.folds() {
            assert!((20..=21).contains(&f.test.len()));
            assert_eq!(f.train.len() + f.test.len(), 103);
        }
    }

    #[test]
    fn train_and_test_disjoint() {
        let mut r = rng();
        let kf = KFold::new(50, 4, &mut r).unwrap();
        for f in kf.folds() {
            for t in &f.test {
                assert!(!f.train.contains(t));
            }
        }
    }

    #[test]
    fn parameter_validation() {
        let mut r = rng();
        assert!(KFold::new(10, 1, &mut r).is_err());
        assert!(KFold::new(3, 5, &mut r).is_err());
        assert!(KFold::new(10, 5, &mut r).is_ok());
    }

    #[test]
    fn split_materialises_datasets() {
        let ds = dataset(20);
        let mut r = rng();
        let kf = KFold::new(20, 4, &mut r).unwrap();
        let (train, test) = kf.split(&ds, 0).unwrap();
        assert_eq!(train.n(), 15);
        assert_eq!(test.n(), 5);
        assert!(kf.split(&ds, 4).is_err());
    }

    #[test]
    fn cross_validate_runs_every_fold() {
        let ds = dataset(25);
        let mut r = rng();
        let scores = cross_validate(&ds, 5, &mut r, |train, test| {
            Ok::<f64, DataError>(train.n() as f64 + test.n() as f64 / 100.0)
        })
        .unwrap();
        assert_eq!(scores.len(), 5);
        for s in scores {
            assert!((s - 20.05).abs() < 1e-12);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = KFold::new(30, 3, &mut rng()).unwrap();
        let b = KFold::new(30, 3, &mut rng()).unwrap();
        for (fa, fb) in a.folds().iter().zip(b.folds()) {
            assert_eq!(fa.test, fb.test);
        }
    }

    #[test]
    fn train_test_split_partitions() {
        let ds = dataset(40);
        let mut r = rng();
        let (train, test) = train_test_split(&ds, 0.25, &mut r).unwrap();
        assert_eq!(test.n(), 10);
        assert_eq!(train.n(), 30);
        // Every label appears exactly once across the two splits.
        let mut all: Vec<f64> = train.y().iter().chain(test.y()).copied().collect();
        all.sort_by(f64::total_cmp);
        let expected: Vec<f64> = (0..40).map(|i| i as f64).collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn train_test_split_rejects_bad_fractions() {
        let ds = dataset(10);
        let mut r = rng();
        for bad in [0.0, 1.0, -0.3, 1.5, f64::NAN] {
            assert!(train_test_split(&ds, bad, &mut r).is_err(), "{bad}");
        }
        // Fraction that rounds to an empty split.
        assert!(train_test_split(&ds, 0.01, &mut r).is_err());
    }
}
