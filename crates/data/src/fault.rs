//! Fault injection for ingestion pipelines: [`FaultInjectingSource`].
//!
//! The crash-safety story of the workspace (WAL-backed accounting in
//! `fm-privacy`, checkpointable streaming fits in `fm-core`) is only
//! testable if failures can be produced on demand, deterministically, at a
//! chosen point in a stream. [`FaultInjectingSource`] wraps any
//! [`RowSource`] and injects exactly one fault when the inner source
//! reaches its Nth block:
//!
//! * [`Fault::Io`] — a transport error, as a failing disk would produce;
//! * [`Fault::Truncate`] — a silent early EOF, as a half-written file
//!   would produce;
//! * [`Fault::MalformedRows`] — a block whose rows violate the paper's
//!   normalization contract (`‖x‖₂ ≤ 1`), as un-normalized or corrupt
//!   data would produce.
//!
//! The wrapper is deterministic and transport-level only: up to the
//! injection point it forwards the inner source's blocks unchanged, so a
//! fit that survives the fault (or a sweep that never reaches it) remains
//! bit-identical to one over the bare source.

use crate::error::DataError;
use crate::stream::{BlockVisitor, RowBlock, RowSource};
use crate::Result;

/// Which failure a [`FaultInjectingSource`] injects at its trigger block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Fail with [`DataError::Io`] in place of the Nth block.
    Io,
    /// End the stream silently just before the Nth block (early EOF).
    Truncate,
    /// Replace the Nth block with one whose rows break the `‖x‖₂ ≤ 1`
    /// normalization contract (every feature forced to `2`), so whatever
    /// row validation the consumer runs must trip.
    MalformedRows,
}

/// A [`RowSource`] wrapper that injects one deterministic [`Fault`] when
/// the inner source yields its `at_block`-th block (0-based, counted in
/// the *inner* source's block sizing). See the [module docs](self).
#[derive(Debug)]
pub struct FaultInjectingSource<S> {
    inner: S,
    fault: Fault,
    at_block: usize,
    yielded: usize,
    fired: bool,
}

impl<S: RowSource> FaultInjectingSource<S> {
    /// Wraps `inner`, arming `fault` to fire in place of block `at_block`
    /// (0-based). If the stream ends before reaching that block the fault
    /// never fires.
    #[must_use]
    pub fn new(inner: S, fault: Fault, at_block: usize) -> Self {
        FaultInjectingSource {
            inner,
            fault,
            at_block,
            yielded: 0,
            fired: false,
        }
    }

    /// Whether the armed fault has fired.
    #[must_use]
    pub fn fired(&self) -> bool {
        self.fired
    }

    /// Unwraps the inner source.
    #[must_use]
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Applies the armed fault to the inner source's next block, or
    /// passes it through untouched when the trigger has not been reached.
    fn apply(&mut self, block: Option<RowBlock>) -> Result<Option<RowBlock>> {
        let Some(block) = block else { return Ok(None) };
        if self.fired || self.yielded != self.at_block {
            self.yielded += 1;
            return Ok(Some(block));
        }
        self.fired = true;
        self.yielded += 1;
        match self.fault {
            Fault::Io => Err(DataError::Io(std::io::Error::other(format!(
                "injected I/O fault at block {}",
                self.at_block
            )))),
            Fault::Truncate => Ok(None),
            Fault::MalformedRows => {
                let d = block.d();
                let rows = block.rows();
                let xs = vec![2.0; rows * d];
                let block = RowBlock::new(xs, block.ys().to_vec(), d)
                    .expect("malformed block keeps the original shape");
                Ok(Some(block))
            }
        }
    }
}

impl<S: RowSource> RowSource for FaultInjectingSource<S> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn hint_rows(&self) -> Option<usize> {
        self.inner.hint_rows()
    }

    fn next_block(&mut self, max_rows: usize) -> Result<Option<RowBlock>> {
        if self.fired && self.fault == Fault::Truncate {
            return Ok(None);
        }
        let block = self.inner.next_block(max_rows)?;
        self.apply(block)
    }

    fn for_each_block(&mut self, max_rows: usize, f: &mut BlockVisitor<'_>) -> Result<()> {
        // Routed through `next_block` (the default implementation's shape)
        // rather than the inner source's zero-copy visitor: the injection
        // point must see every block to count and replace them.
        while let Some(block) = self.next_block(max_rows)? {
            f(block.as_ref())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::stream::InMemorySource;

    fn source_of(rows: usize) -> InMemorySource<'static> {
        // Leaking keeps the fixture 'static; a handful of tiny datasets
        // per test process is fine.
        let xs: Vec<f64> = (0..rows * 2).map(|i| (i as f64) * 1e-3).collect();
        let ys: Vec<f64> = (0..rows).map(|i| i as f64).collect();
        let x = fm_linalg::Matrix::from_vec(rows, 2, xs).unwrap();
        let data = Box::leak(Box::new(Dataset::new(x, ys).unwrap()));
        InMemorySource::new(data)
    }

    #[test]
    fn passes_through_before_the_trigger() {
        let mut src = FaultInjectingSource::new(source_of(10), Fault::Io, 100);
        let mut rows = 0;
        while let Some(b) = src.next_block(3).unwrap() {
            rows += b.rows();
        }
        assert_eq!(rows, 10);
        assert!(!src.fired());
    }

    #[test]
    fn io_fault_fires_at_the_nth_block() {
        let mut src = FaultInjectingSource::new(source_of(10), Fault::Io, 2);
        assert!(src.next_block(3).unwrap().is_some());
        assert!(src.next_block(3).unwrap().is_some());
        assert!(matches!(src.next_block(3), Err(DataError::Io(_))));
        assert!(src.fired());
    }

    #[test]
    fn truncate_ends_the_stream_early_and_stays_ended() {
        let mut src = FaultInjectingSource::new(source_of(10), Fault::Truncate, 1);
        let first = src.next_block(3).unwrap().unwrap();
        assert_eq!(first.rows(), 3);
        assert!(src.next_block(3).unwrap().is_none());
        assert!(src.next_block(3).unwrap().is_none());
        assert!(src.fired());
    }

    #[test]
    fn malformed_rows_break_the_norm_contract() {
        let mut src = FaultInjectingSource::new(source_of(10), Fault::MalformedRows, 0);
        let block = src.next_block(4).unwrap().unwrap();
        assert_eq!(block.rows(), 4);
        assert!(block.xs().iter().all(|&v| v == 2.0));
        // ‖(2, 2)‖₂ = 2√2 > 1: any consumer-side row validation must trip.
    }

    #[test]
    fn visitor_path_sees_the_fault_too() {
        let mut src = FaultInjectingSource::new(source_of(10), Fault::Io, 1);
        let mut seen = 0usize;
        let err = src.for_each_block(3, &mut |b| {
            seen += b.rows();
            Ok(())
        });
        assert!(matches!(err, Err(DataError::Io(_))));
        assert_eq!(seen, 3);
    }
}
