//! Property-based tests for the data substrate: the normalization contract
//! (which the entire privacy argument rests on), CV partition laws, CSV
//! round-trips, and metric identities.

use fm_data::cv::KFold;
use fm_data::normalize::Normalizer;
use fm_data::{csv, metrics, sampling, Dataset};
use fm_linalg::Matrix;
use proptest::prelude::*;
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

/// A random raw dataset with per-feature domains, for normalizer fuzzing.
fn raw_dataset() -> impl Strategy<Value = (Dataset, Vec<(f64, f64)>, (f64, f64))> {
    (1usize..6, 1usize..30).prop_flat_map(|(d, n)| {
        let bounds = proptest::collection::vec((-100.0..0.0f64, 1.0..100.0f64), d);
        let label_bounds = (-50.0..0.0f64, 1.0..50.0f64);
        (
            bounds,
            label_bounds,
            proptest::collection::vec(-200.0..200.0f64, n * (d + 1)),
        )
            .prop_map(move |(bounds, label_bounds, values)| {
                let x = Matrix::from_vec(n, d, values[..n * d].to_vec()).unwrap();
                let y = values[n * d..].to_vec();
                (Dataset::new(x, y).unwrap(), bounds, label_bounds)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Footnote 1's guarantee: *whatever* raw values arrive (even outside
    /// the declared domain — they are clamped), the normalized dataset
    /// satisfies Definition 1's contract exactly.
    #[test]
    fn normalizer_always_produces_contract_data((raw, bounds, label_bounds) in raw_dataset()) {
        let norm = Normalizer::from_bounds(bounds, label_bounds).unwrap();
        let linear = norm.normalize_linear(&raw).unwrap();
        linear.check_normalized_linear().unwrap();
        prop_assert!(linear.max_feature_norm() <= 1.0 + 1e-9);

        let logistic = norm.normalize_logistic(&raw, 0.0).unwrap();
        logistic.check_normalized_logistic().unwrap();
    }

    #[test]
    fn label_map_roundtrips_inside_domain(
        lo in -100.0..0.0f64,
        width in 1.0..200.0f64,
        t in 0.0..1.0f64,
    ) {
        let hi = lo + width;
        let norm = Normalizer::from_bounds(vec![(0.0, 1.0)], (lo, hi)).unwrap();
        let y = lo + t * width;
        let round = norm.denormalize_label(norm.normalize_label(y));
        prop_assert!((round - y).abs() <= 1e-9 * (1.0 + y.abs()));
        // Normalized values live in [−1, 1].
        let z = norm.normalize_label(y);
        prop_assert!((-1.0..=1.0).contains(&z));
    }

    #[test]
    fn kfold_is_a_partition(n in 6usize..200, k in 2usize..6, seed in 0u64..1000) {
        prop_assume!(k <= n);
        let mut r = rng(seed);
        let kf = KFold::new(n, k, &mut r).unwrap();
        let mut seen = vec![0u32; n];
        for fold in kf.folds() {
            for &i in &fold.test {
                seen[i] += 1;
            }
            // train ∪ test covers all rows exactly once per fold.
            prop_assert_eq!(fold.train.len() + fold.test.len(), n);
            let mut all: Vec<usize> = fold.train.iter().chain(&fold.test).copied().collect();
            all.sort_unstable();
            prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
        }
        // Every row appears in exactly one test fold.
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn subsample_sizes_and_provenance(n in 5usize..100, rate in 0.05..1.0f64, seed in 0u64..100) {
        let x = Matrix::from_fn(n, 1, |r, _| r as f64);
        let ds = Dataset::new(x, (0..n).map(|i| i as f64).collect()).unwrap();
        let mut r = rng(seed);
        let sub = sampling::subsample(&ds, rate, &mut r).unwrap();
        prop_assert_eq!(sub.n(), ((rate * n as f64).ceil() as usize).clamp(1, n));
        // Every sampled row exists in the source (content check) and rows
        // are distinct (sampling without replacement).
        let mut labels: Vec<f64> = sub.y().to_vec();
        labels.sort_by(|a, b| a.partial_cmp(b).unwrap());
        labels.dedup();
        prop_assert_eq!(labels.len(), sub.n());
        prop_assert!(sub.y().iter().all(|&v| v >= 0.0 && v < n as f64));
    }

    #[test]
    fn csv_roundtrip_preserves_everything(
        (n, d) in (1usize..20, 1usize..5),
        seed in 0u64..100,
    ) {
        let mut r = rng(seed);
        let data = fm_data::synth::linear_dataset(&mut r, n, d, 0.1);
        let mut buf = Vec::new();
        csv::write_dataset_to(&data, &mut buf).unwrap();
        let back = csv::read_dataset_from(&buf[..]).unwrap();
        prop_assert_eq!(back.n(), data.n());
        prop_assert_eq!(back.d(), data.d());
        for (a, b) in back.y().iter().zip(data.y()) {
            prop_assert!((a - b).abs() <= 1e-12 * (1.0 + b.abs()));
        }
        for (a, b) in back.x().as_slice().iter().zip(data.x().as_slice()) {
            prop_assert!((a - b).abs() <= 1e-12 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn mse_identities(preds in proptest::collection::vec(-5.0..5.0f64, 1..32)) {
        // MSE(x, x) = 0; MSE is symmetric; shifting by c adds c².
        let targets: Vec<f64> = preds.iter().map(|v| v + 1.5).collect();
        prop_assert!(metrics::mse(&preds, &preds) == 0.0);
        let a = metrics::mse(&preds, &targets);
        let b = metrics::mse(&targets, &preds);
        prop_assert!((a - b).abs() <= 1e-12);
        prop_assert!((a - 2.25).abs() <= 1e-9);
    }

    #[test]
    fn misclassification_complements_accuracy(
        probs in proptest::collection::vec(0.0..1.0f64, 1..64),
        seed in 0u64..100,
    ) {
        let mut r = rng(seed);
        let labels: Vec<f64> = probs.iter().map(|_| f64::from(rand::Rng::gen_bool(&mut r, 0.5))).collect();
        let err = metrics::misclassification_rate(&probs, &labels);
        let acc = metrics::accuracy(&probs, &labels);
        prop_assert!((err + acc - 1.0).abs() <= 1e-12);
        prop_assert!((0.0..=1.0).contains(&err));
    }

    #[test]
    fn r_squared_never_exceeds_one(
        targets in proptest::collection::vec(-5.0..5.0f64, 2..32),
        noise in proptest::collection::vec(-1.0..1.0f64, 2..32),
    ) {
        let n = targets.len().min(noise.len());
        let preds: Vec<f64> = targets[..n].iter().zip(&noise[..n]).map(|(t, e)| t + e).collect();
        let r2 = metrics::r_squared(&preds, &targets[..n]);
        prop_assert!(r2 <= 1.0 + 1e-12);
    }

    #[test]
    fn select_features_preserves_rows(
        (n, d) in (2usize..20, 2usize..5),
        seed in 0u64..100,
    ) {
        let mut r = rng(seed);
        let data = fm_data::synth::linear_dataset(&mut r, n, d, 0.1);
        let names: Vec<&str> = data.feature_names().iter().map(String::as_str).collect();
        // Reverse the column order.
        let reversed: Vec<&str> = names.iter().rev().copied().collect();
        let sel = data.select_features(&reversed).unwrap();
        prop_assert_eq!(sel.n(), data.n());
        prop_assert_eq!(sel.d(), d);
        for i in 0..n {
            for j in 0..d {
                prop_assert_eq!(sel.x()[(i, j)], data.x()[(i, d - 1 - j)]);
            }
        }
    }

    #[test]
    fn census_records_respect_their_schema(seed in 0u64..200, us in proptest::bool::ANY) {
        // Every generated attribute value must lie inside its declared
        // public domain — the property the footnote-1 normalizer (and thus
        // the whole sensitivity analysis) assumes.
        use fm_data::census::{self, CensusProfile};
        let profile = if us { CensusProfile::us() } else { CensusProfile::brazil() };
        let mut r = rng(seed);
        let data = census::generate(&profile, 50, &mut r).unwrap();
        let schema = census::schema(&profile);
        for (row, _) in data.tuples() {
            for (j, name) in data.feature_names().iter().enumerate() {
                let attr = schema.attribute(name).unwrap();
                prop_assert!(
                    attr.kind.contains(row[j]),
                    "{name} = {} outside declared domain",
                    row[j]
                );
            }
        }
        // Income is positive and finite.
        prop_assert!(data.y().iter().all(|&y| y.is_finite() && y > 0.0));
    }

    #[test]
    fn census_generation_is_seed_deterministic(seed in 0u64..200) {
        use fm_data::census::{self, CensusProfile};
        let gen = |s: u64| {
            let mut r = rng(s);
            census::generate(&CensusProfile::us(), 30, &mut r).unwrap()
        };
        let a = gen(seed);
        let b = gen(seed);
        prop_assert_eq!(a.y(), b.y());
        prop_assert!(a.x().approx_eq(b.x(), 0.0));
    }

    #[test]
    fn train_test_split_is_a_partition(
        n in 4usize..100,
        frac in 0.1..0.9f64,
        seed in 0u64..100,
    ) {
        let mut r = rng(seed);
        let data = fm_data::synth::linear_dataset(&mut r, n, 2, 0.1);
        if let Ok((train, test)) = fm_data::cv::train_test_split(&data, frac, &mut r) {
            prop_assert_eq!(train.n() + test.n(), n);
            // Multisets of labels must match the original exactly.
            let mut all: Vec<f64> = train.y().iter().chain(test.y()).copied().collect();
            let mut orig = data.y().to_vec();
            all.sort_by(f64::total_cmp);
            orig.sort_by(f64::total_cmp);
            prop_assert_eq!(all, orig);
        }
    }

    #[test]
    fn poisson_counts_within_cap(
        n in 1usize..100,
        y_max in 1.0..20.0f64,
        seed in 0u64..100,
    ) {
        let mut r = rng(seed);
        let data = fm_data::synth::poisson_dataset(&mut r, n, 3, y_max);
        prop_assert!(data.check_normalized_counts(y_max).is_ok());
        // Labels are integer counts, except where clipping hit a fractional
        // cap exactly.
        prop_assert!(data
            .y()
            .iter()
            .all(|&y| y >= 0.0 && y <= y_max && (y.fract() == 0.0 || y == y_max)));
    }

    #[test]
    fn intercept_augmentation_contract_and_equivalence(
        n in 1usize..40,
        d in 1usize..6,
        seed in 0u64..100,
    ) {
        let mut r = rng(seed);
        let data = fm_data::synth::linear_dataset(&mut r, n, d, 0.1);
        let aug = data.augment_for_intercept();
        prop_assert_eq!(aug.d(), d + 1);
        prop_assert!(aug.check_normalized_linear().is_ok());
        // Prediction equivalence: x'ᵀ(√2 ω, √2 b) = xᵀω + b for random ω, b.
        let omega: Vec<f64> = (0..d).map(|i| ((i * 13 + 5) % 7) as f64 / 7.0 - 0.5).collect();
        let b = 0.3;
        let mut omega_aug: Vec<f64> =
            omega.iter().map(|w| w * std::f64::consts::SQRT_2).collect();
        omega_aug.push(b * std::f64::consts::SQRT_2);
        for i in 0..n {
            let lhs = fm_linalg::vecops::dot(aug.tuple(i).0, &omega_aug);
            let rhs = fm_linalg::vecops::dot(data.tuple(i).0, &omega) + b;
            prop_assert!((lhs - rhs).abs() <= 1e-12 * (1.0 + rhs.abs()));
        }
    }
}
