//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the measurement surface its benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], `bench_function` /
//! `bench_with_input`, `b.iter(..)`, [`black_box`], and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: per benchmark, a short warm-up, then timed batches
//! until ~`measurement_millis` elapse; the mean ns/iteration is printed.
//! No statistical analysis, plots, or baselines — swap the directory for
//! the real crate once a registry is reachable for those.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting benched
/// code (wraps `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    /// Target measurement time per benchmark, in milliseconds.
    measurement_millis: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_millis: 400,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(&format!("{id}"), self.measurement_millis, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Upstream tunes the sample count; the stub's time-budgeted runner
    /// ignores it (kept so call sites compile unchanged).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_millis = d.as_millis() as u64;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{id}", self.name);
        run_benchmark(&label, self.criterion.measurement_millis, f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{id}", self.name);
        run_benchmark(&label, self.criterion.measurement_millis, |b| f(b, input));
        self
    }

    /// Ends the group (upstream flushes reports here; the stub prints
    /// as it goes).
    pub fn finish(self) {}
}

/// A benchmark identifier `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: format!("{parameter}"),
        }
    }

    /// Creates an id from a parameter value only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: format!("{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Passed to the closure being benchmarked; owns iteration timing.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    budget: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly until the measurement budget is spent.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: a few untimed iterations.
        for _ in 0..3 {
            black_box(routine());
        }
        let mut batch: u64 = 1;
        while self.elapsed < self.budget {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.elapsed += start.elapsed();
            self.iters_done += batch;
            batch = batch.saturating_mul(2).min(1 << 20);
        }
    }
}

fn run_benchmark(label: &str, measurement_millis: u64, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
        budget: Duration::from_millis(measurement_millis),
    };
    f(&mut b);
    if b.iters_done == 0 {
        eprintln!("  {label:<40} (no iterations)");
        return;
    }
    let ns_per_iter = b.elapsed.as_nanos() as f64 / b.iters_done as f64;
    eprintln!(
        "  {label:<40} {ns_per_iter:>14.1} ns/iter ({} iters)",
        b.iters_done
    );
}

/// Declares the benchmark groups a bench target runs.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench target's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_iterations() {
        let mut c = Criterion {
            measurement_millis: 5,
        };
        let mut group = c.benchmark_group("smoke");
        let mut runs = 0u64;
        group.bench_with_input(BenchmarkId::new("count", 1), &1u64, |b, &x| {
            b.iter(|| {
                runs += 1;
                x + 1
            })
        });
        group.finish();
        assert!(runs > 0);
    }
}
