//! Offline drop-in subset of the `rayon` API.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the data-parallel surface it uses: `into_par_iter()` over index ranges,
//! `ParallelIterator::map(..).collect::<Vec<_>>()` (order-preserving), and
//! [`join`]. Execution uses `std::thread::scope` with one thread per
//! contiguous block rather than upstream's work-stealing pool — the
//! workspace only parallelises coarse, evenly-sized row chunks, where
//! static splitting is within noise of work stealing.
//!
//! Swap the directory for the real crate once a registry is reachable; no
//! call-site changes are needed for the subset above.

#![forbid(unsafe_code)]

use std::num::NonZeroUsize;
use std::ops::Range;

/// Number of worker threads a parallel call fans out to.
#[must_use]
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs both closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        let rb = hb.join().expect("rayon::join: right half panicked");
        (ra, rb)
    })
}

/// Conversion into a parallel iterator (subset of
/// `rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The parallel iterator produced.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = RangeParIter;
    fn into_par_iter(self) -> RangeParIter {
        RangeParIter { range: self }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;
    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter { items: self }
    }
}

/// An order-preserving parallel iterator (generation-only subset of
/// `rayon::iter::ParallelIterator`).
pub trait ParallelIterator: Sized {
    /// The element type.
    type Item: Send;

    /// Drains this iterator into a `Vec`, preserving the original order.
    fn drive(self) -> Vec<Self::Item>;

    /// Maps every element through `f` in parallel.
    fn map<U: Send, F>(self, f: F) -> MapParIter<Self, F>
    where
        F: Fn(Self::Item) -> U + Sync + Send,
    {
        MapParIter { inner: self, f }
    }

    /// Collects into a container, preserving the original element order.
    fn collect<C: From<Vec<Self::Item>>>(self) -> C {
        C::from(self.drive())
    }
}

/// Parallel iterator over `Range<usize>`.
pub struct RangeParIter {
    range: Range<usize>,
}

impl ParallelIterator for RangeParIter {
    type Item = usize;
    fn drive(self) -> Vec<usize> {
        self.range.collect()
    }
}

/// Parallel iterator over an owned `Vec`.
pub struct VecParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;
    fn drive(self) -> Vec<T> {
        self.items
    }
}

/// See [`ParallelIterator::map`]. The map is where the fan-out happens:
/// items are split into one contiguous block per worker thread and mapped
/// in parallel; block results are re-concatenated in order.
pub struct MapParIter<I, F> {
    inner: I,
    f: F,
}

impl<I, U, F> ParallelIterator for MapParIter<I, F>
where
    I: ParallelIterator,
    I::Item: Send,
    U: Send,
    F: Fn(I::Item) -> U + Sync + Send,
{
    type Item = U;

    fn drive(self) -> Vec<U> {
        let items = self.inner.drive();
        let n = items.len();
        let workers = current_num_threads().clamp(1, n.max(1));
        if n <= 1 || workers == 1 {
            return items.into_iter().map(self.f).collect();
        }
        let f = &self.f;
        let block = n.div_ceil(workers);
        let mut blocks: Vec<Vec<I::Item>> = Vec::with_capacity(workers);
        let mut it = items.into_iter();
        loop {
            let chunk: Vec<I::Item> = it.by_ref().take(block).collect();
            if chunk.is_empty() {
                break;
            }
            blocks.push(chunk);
        }
        let mapped: Vec<Vec<U>> = std::thread::scope(|scope| {
            let handles: Vec<_> = blocks
                .into_iter()
                .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rayon worker panicked"))
                .collect()
        });
        mapped.into_iter().flatten().collect()
    }
}

/// The common imports (subset of `rayon::prelude`).
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out.len(), 1000);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * 2));
    }

    #[test]
    fn vec_input_and_join() {
        let out: Vec<String> = vec![1, 2, 3]
            .into_par_iter()
            .map(|i| format!("v{i}"))
            .collect();
        assert_eq!(out, vec!["v1", "v2", "v3"]);
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
    }

    #[test]
    fn empty_and_single() {
        let out: Vec<usize> = (0..0usize).into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
        let one: Vec<usize> = (5..6usize).into_par_iter().map(|i| i).collect();
        assert_eq!(one, vec![5]);
    }
}
