//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the exact surface it consumes: [`Rng`]/[`RngCore`],
//! [`SeedableRng`], [`rngs::StdRng`], uniform `gen`/`gen_range`/`gen_bool`
//! sampling for the primitive types the workspace draws.
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream's ChaCha12, but the workspace only requires
//! *determinism given a seed* and sound statistical behaviour, both of
//! which xoshiro256++ provides. Swap the directory for the real crate once
//! a registry is reachable; no call site changes.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// Types `Rng::gen` can produce (stand-in for `Standard: Distribution<T>`).
pub trait Standard: Sized {
    /// Draws one value from the standard distribution of the type.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Range types `Rng::gen_range` accepts (stand-in for `SampleRange<T>`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-sampled uniform integer in `[0, bound)` — unbiased.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0, "empty integer range");
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return (rng.next_u64() as i128 + start as i128) as $t;
                }
                (start as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        start + u * (end - start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f32::sample_standard(rng) * (self.end - self.start)
    }
}

/// User-facing random value generation (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value from the type's standard distribution
    /// (`[0, 1)` for floats, full range for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// If `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} outside [0, 1]");
        f64::sample_standard(self) < p
    }

    /// Fills `dest` with values from the standard distribution.
    fn fill<T: Standard>(&mut self, dest: &mut [T])
    where
        Self: Sized,
    {
        for slot in dest {
            *slot = T::sample_standard(self);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Creates an RNG from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates an RNG from a `u64`, expanded through SplitMix64 exactly as
    /// upstream `rand` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 (same constants as rand_core::SeedableRng).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded RNG: **xoshiro256++**.
    ///
    /// Not the same stream as upstream's ChaCha12-based `StdRng`; the
    /// workspace contract is only determinism-given-seed plus sound
    /// statistical quality, which xoshiro256++ satisfies.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, lane) in s.iter_mut().enumerate() {
                let mut word = [0u8; 8];
                word.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *lane = u64::from_le_bytes(word);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = r.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&v));
            let i = r.gen_range(3usize..10);
            assert!((3..10).contains(&i));
            let k: u64 = r.gen_range(0..=4u64);
            assert!(k <= 4);
        }
    }

    #[test]
    fn integer_range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_probability() {
        let mut r = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn rng_usable_through_mut_reference() {
        fn draw(rng: &mut impl Rng) -> f64 {
            rng.gen()
        }
        let mut r = StdRng::seed_from_u64(5);
        let v = draw(&mut r);
        assert!((0.0..1.0).contains(&v));
    }
}
