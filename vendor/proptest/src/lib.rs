//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the exact property-testing surface its test suites use: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`/`prop_flat_map`,
//! range and tuple strategies, [`collection::vec`], [`bool::ANY`],
//! [`Just`], and the `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from upstream, by design:
//! * **No shrinking** — a failing case reports its seed and case index so
//!   it can be replayed, but is not minimised.
//! * **Deterministic**: each test derives its RNG stream from the test
//!   function's name, so runs are reproducible without a persistence file.
//!
//! Swap the directory for the real crate once a registry is reachable; no
//! call-site changes are needed for the subset above.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Re-exported RNG type driving generation (used by the macro internals).
pub type TestRng = StdRng;

/// Seeds the RNG for one property-test function, deterministically derived
/// from the test's name (FNV-1a).
#[must_use]
pub fn rng_for(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values (subset of `proptest::strategy::Strategy`;
/// generation only, no shrinking).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<U: Strategy, F: Fn(Self::Value) -> U>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Discards generated values failing `pred` (retries; panics after
    /// too many consecutive rejections).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            pred,
            whence,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Strategy, F: Fn(S::Value) -> U> Strategy for FlatMap<S, F> {
    type Value = U::Value;
    fn generate(&self, rng: &mut TestRng) -> U::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive values: {}",
            self.whence
        );
    }
}

/// A strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Anything usable as the length parameter of [`vec()`].
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rand::Rng::gen_range(rng, self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rand::Rng::gen_range(rng, self.clone())
        }
    }

    /// Strategy for `Vec<T>` with element strategy `element` and a length
    /// drawn from `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (subset of `proptest::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniform random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rand::Rng::gen_bool(rng, 0.5)
        }
    }
}

/// The `proptest!` macro: declares `#[test]` functions whose arguments are
/// drawn from strategies for `config.cases` iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr); $(
        $(#[$meta:meta])+
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::rng_for(stringify!($name));
            for __case in 0..config.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                // The body may `continue` (prop_assume!) or panic
                // (prop_assert!); a panic message carries the case index
                // via the std test harness's captured output below.
                let __guard = $crate::CaseReporter {
                    test: stringify!($name),
                    case: __case,
                };
                $body
                std::mem::forget(__guard);
            }
        }
    )*};
}

/// Prints the failing case on unwind so failures are attributable even
/// without shrinking. Created per-case by [`proptest!`]; forgotten on
/// success.
#[doc(hidden)]
pub struct CaseReporter {
    /// Test function name.
    pub test: &'static str,
    /// Zero-based case index.
    pub case: u32,
}

impl Drop for CaseReporter {
    fn drop(&mut self) {
        // Dropped without `forget` either on panic (report the case) or on
        // a `prop_assume!` skip (stay silent).
        if std::thread::panicking() {
            eprintln!(
                "proptest: {} failed at case {} (deterministic per-test stream; rerun to replay)",
                self.test, self.case
            );
        }
    }
}

/// Asserts a property, attributing the failure to the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality, attributing the failure to the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality, attributing the failure to the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when its assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// The common imports (subset of `proptest::prelude`).
pub mod prelude {
    pub use crate::bool as prop_bool;
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };

    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -2.0..2.0f64, n in 1usize..5) {
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn flat_map_and_vec(v in (1usize..4).prop_flat_map(|n| collection::vec(0.0..1.0f64, n))) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn bools_and_just(b in crate::bool::ANY, u in Just(7u8)) {
            prop_assert!(u == 7 || b);
            prop_assert_eq!(u, 7);
        }
    }
}
