//! # functional-mechanism
//!
//! A from-scratch Rust implementation of **"Functional Mechanism: Regression
//! Analysis under Differential Privacy"** (Zhang, Zhang, Xiao, Yang,
//! Winslett — PVLDB 5(11), 2012), together with every substrate the paper
//! depends on and every baseline it is evaluated against.
//!
//! This crate is a facade: it re-exports the workspace member crates under
//! stable module names so downstream users depend on a single crate.
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`core`] | `fm-core` | the Functional Mechanism (Algorithms 1 & 2), DP linear / logistic / Poisson regression, §6 post-processing, (ε, δ) Gaussian variant |
//! | [`baselines`] | `fm-baselines` | NoPrivacy, Truncated, DPME, Filter-Priority, objective perturbation |
//! | [`serve`] | `fm-serve` | multi-tenant fitting service: admission over the WAL ledger, bounded block queues, checkpointing shutdown/resume, WAL compaction |
//! | [`federated`] | `fm-federated` | cross-process federated fitting: `fm-accum v2` wire format, chunk-aligned merge-tree replay, central vs local noise, quorum dropout salvage, deadline/retry transports + fault injection |
//! | [`data`] | `fm-data` | datasets, normalization, synthetic census, cross-validation, metrics |
//! | [`privacy`] | `fm-privacy` | Laplace / Gaussian / exponential mechanisms, privacy budget accounting |
//! | [`poly`] | `fm-poly` | multivariate polynomials, quadratic forms, Taylor & Chebyshev machinery |
//! | [`optim`] | `fm-optim` | quadratic minimiser, gradient descent, Newton's method |
//! | [`linalg`] | `fm-linalg` | dense matrices, LU/Cholesky/QR/SVD, Jacobi eigendecomposition, batched Gram kernels |
//!
//! ## Batched coefficient assembly (the hot path)
//!
//! Algorithm 1's wall-clock cost is dominated by assembling the
//! objective's polynomial coefficients `λ_φ = Σ_i λ_{φ t_i}` over the full
//! dataset — `O(n·d²)` at the paper's census scale (370,000 rows × 5-fold
//! × 50 repeats). The workspace runs this through a chunked map-reduce
//! pipeline ([`core::assembly`]):
//!
//! 1. the row-major feature block is split into fixed-size row chunks;
//! 2. each chunk is accumulated into a partial
//!    [`poly::QuadraticForm`] via
//!    [`core::PolynomialObjective::accumulate_batch`], which the built-in
//!    objectives override with blocked Gram kernels — `yᵀy`
//!    ([`linalg::vecops::sum_squares`]), `Xᵀy`
//!    ([`linalg::vecops::gemv_t_acc`]) and a pack-and-dot `XᵀX`
//!    ([`linalg::Matrix::syrk_acc`]) — instead of per-tuple rank-1
//!    updates;
//! 3. the partials are merged by a deterministic pairwise tree reduction
//!    ([`poly::QuadraticForm::merge`]) in chunk order.
//!
//! ### The `parallel` feature
//!
//! `--features parallel` maps step 2 across worker threads (rayon). The
//! chunk boundaries are a pure function of `(n, chunk_rows)` and the
//! reduction order a pure function of the chunk count, so assembled
//! coefficients are **bit-identical for every worker count**, including
//! the sequential build — reproducibility of experiments never depends on
//! the machine's core count. The equivalence suite
//! (`tests/batched_assembly.rs`) pins batched-vs-per-tuple agreement
//! (≤ 1e-12 relative), chunk-size invariance, and bit-exact determinism in
//! both configurations.
//!
//! Custom objectives keep working unchanged: the default
//! `accumulate_batch` delegates to `accumulate_tuple` row by row and still
//! rides the same chunked (and optionally parallel) pipeline.
//!
//! ## One estimator API
//!
//! Every regression — the paper's linear and logistic case studies, the §8
//! Poisson extension, and any user-supplied polynomial loss — runs through
//! **one generic core** ([`core::estimator`]):
//!
//! * [`core::estimator::FitConfig`] owns the knobs every fit shares
//!   (ε, sensitivity bound, §6 strategy, intercept, noise distribution);
//! * [`core::estimator::FmEstimator`]`<O>` is Algorithm 1 over any
//!   [`core::estimator::RegressionObjective`] `O` —
//!   `DpLinearRegression` *is* `FmEstimator<LinearObjective>`, and the
//!   logistic/Poisson front-ends are two-field wrappers over the same
//!   core;
//! * the dyn-compatible [`core::estimator::DpEstimator`] trait is
//!   implemented by the private estimators **and** every `fm-baselines`
//!   comparator, so method line-ups, cross-validation and experiment
//!   harnesses hold `&dyn DpEstimator` instead of matching per method;
//! * fitted models share the [`core::model::Model`] trait (weights /
//!   intercept / spent ε / task-natural predictions), which persistence
//!   ([`core::persist::SavedModel`]) and generic scoring consume;
//! * [`core::session::PrivacySession`] debits every fit against a
//!   [`privacy::budget::PrivacyBudget`] and reports the honest composed
//!   (ε, δ) — basic and advanced composition — for multi-fit workloads
//!   like the paper's 50×5-fold protocol.
//!
//! The long-standing `builder()` entry points (`DpLinearRegression::builder()`
//! and friends) are kept as thin forwarding shims over `FitConfig` +
//! `FmEstimator`, so existing code migrates without breaking; new code can
//! construct `FmEstimator::new(objective, config)` directly. The shims are
//! not going away soon — they are one `build()` away from the generic
//! core — but new *capabilities* (budget sessions, generic CV, mixed
//! line-ups) land on the trait surface only.
//!
//! ## Streaming & sharded ingestion
//!
//! Because Algorithm 1 touches the data only through one accumulation
//! pass, every estimator also fits from a stream
//! ([`data::stream::RowSource`]): [`data::stream::InMemorySource`] wraps
//! a [`data::Dataset`], [`data::stream::CsvStreamSource`] reads, clamps
//! and normalizes CSV rows without materializing the file, and
//! [`data::stream::ShardedSource`] concatenates disjoint shards.
//! `fit_stream` (and the two-phase `partial_fit` → `absorb` → `finalize`
//! protocol for shard-at-a-time fitting) releases coefficients
//! **bit-identical** to `fit` on the materialized dataset at the same
//! seed, for any block sizing or shard split — pinned by
//! `tests/streaming_equivalence.rs`. [`core::session::PrivacySession`]
//! adds an opt-in parallel-composition scope: k fits on disjoint shards
//! debit `max(εᵢ)` instead of `Σεᵢ`.
//!
//! Streaming is also **zero-copy**: the accumulator drains sources
//! through a borrowed-block visitor
//! ([`data::stream::RowSource::for_each_block`]) and accepts a
//! whole-dataset handoff from in-memory sources
//! ([`data::stream::RowSource::take_dataset`]), so in-memory data routed
//! through the streaming entry points (CV folds, sessions, the bench
//! harness) assembles at the batched kernels' rate — no per-block
//! allocation or copy anywhere (`BENCH_assembly.json`, run `pr5-…`).
//! With `--features parallel`, `data::stream::PrefetchSource` overlaps
//! CSV parsing with accumulation on a second thread, and
//! `FmEstimator::fit_sharded` /
//! `PrivacySession::fit_disjoint_shards_parallel` assemble disjoint
//! shards concurrently — with released models bit-identical to the
//! serial build in every case.
//!
//! ## Quickstart
//!
//! Both entry points — the materialized [`data::Dataset`] and a streaming
//! [`data::stream::RowSource`] — drive the same budget-aware pipeline and
//! release identical coefficients under the same seed:
//!
//! ```
//! use functional_mechanism::prelude::*;
//! use rand::SeedableRng;
//!
//! // A small synthetic regression dataset, already normalized to the
//! // paper's domain (‖x‖₂ ≤ 1, y ∈ [−1, 1]).
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let data = functional_mechanism::data::synth::linear_dataset(&mut rng, 2_000, 5, 0.1);
//!
//! // ε-differentially private linear regression (ε = 0.8 per fit),
//! // drawn through a budget-aware session (total ε = 2.0).
//! let estimator = DpLinearRegression::builder()
//!     .config(FitConfig::new().epsilon(0.8))
//!     .build();
//! let mut session = PrivacySession::with_budget(2.0).expect("valid budget");
//!
//! // Entry point 1: the materialized dataset.
//! let mut fit_rng = rand::rngs::StdRng::seed_from_u64(42);
//! let model = session
//!     .fit(&estimator, &data, &mut fit_rng)
//!     .expect("fit succeeds on a well-formed dataset");
//! assert!(model.predict(data.x().row(0)).is_finite());
//!
//! // Entry point 2: the same rows as a stream (here an in-memory source;
//! // a `CsvStreamSource` fits files larger than RAM the same way). Same
//! // seed ⇒ bit-identical released weights.
//! let mut fit_rng = rand::rngs::StdRng::seed_from_u64(42);
//! let streamed = session
//!     .fit_stream(&estimator, &mut InMemorySource::new(&data), &mut fit_rng)
//!     .expect("streamed fit");
//! assert_eq!(model, streamed);
//!
//! // Both fits were debited: 2 × 0.8 spent, and a third ε = 0.8 fit
//! // would overdraw — the session refuses *before* the mechanism
//! // touches the data.
//! assert_eq!(session.spent_epsilon(), 1.6);
//! assert!(session.fit(&estimator, &data, &mut rng).is_err());
//! ```

pub use fm_baselines as baselines;
pub use fm_core as core;
pub use fm_data as data;
pub use fm_federated as federated;
pub use fm_linalg as linalg;
pub use fm_optim as optim;
pub use fm_poly as poly;
pub use fm_privacy as privacy;
pub use fm_serve as serve;

/// The most commonly used items, importable in one line.
pub mod prelude {
    pub use fm_baselines::{
        dpme::Dpme,
        estimators::{DpmeLinear, DpmeLogistic, FpLinear, FpLogistic},
        fp::FilterPriority,
        noprivacy::{LinearRegression, LogisticRegression},
        truncated::TruncatedLogistic,
    };
    pub use fm_core::{
        estimator::{DpEstimator, FitConfig, FmEstimator, RegressionObjective},
        generic::QuarticObjective,
        linreg::DpLinearRegression,
        logreg::{Approximation, DpLogisticRegression},
        model::{LinearModel, LogisticModel, Model, ModelKind, PersistableModel, PoissonModel},
        persist::SavedModel,
        poisson::DpPoissonRegression,
        robust::{DpHuberRegression, DpMedianRegression, DpQuantileRegression},
        session::{FitPermit, PrivacySession, SharedPrivacySession},
        sparse::{SparseFmEstimator, SparseRegressionObjective},
        FmError, NoiseDistribution, SensitivityBound, Strategy,
    };
    #[cfg(feature = "parallel")]
    pub use fm_data::stream::PrefetchSource;
    pub use fm_data::{
        cv::KFold,
        dataset::Dataset,
        fault::{Fault, FaultInjectingSource},
        metrics,
        normalize::Normalizer,
        stream::{
            CsvStreamSource, InMemorySource, LabelTransform, RowBlock, RowBlockRef, RowErrorPolicy,
            RowSource, ShardedSource,
        },
    };
    pub use fm_federated::{
        Coordinator, FaultInjectingTransport, FederatedClient, FederatedError, InMemoryTransport,
        NoiseMode, QuorumPolicy, RetryPolicy, RoundReport, ShardPlan, StreamTransport, Transport,
        TransportFault,
    };
    pub use fm_linalg::Matrix;
    pub use fm_privacy::{
        budget::{EpsDeltaLedger, PrivacyBudget},
        exponential::ExponentialMechanism,
        laplace::Laplace,
        rdp::{MomentsAccount, RdpLedger, RenyiMechanism},
        wal::{CompactionPolicy, RecoveryReport, WalLedger, WalStats},
    };
    pub use fm_serve::service::{
        FitOutcome, FitRequest, FitService, JobHandle, ServeConfig, ServeError, SuspendedFit,
    };
}
