//! **Federated census** — three census bureaus jointly fit one ε-DP
//! income regression without pooling their rows, over real byte-stream
//! transports.
//!
//! The walkthrough:
//! 1. Generate the synthetic US census, normalize it paper-exactly, and
//!    hand each of three "bureaus" a contiguous chunk-aligned shard of
//!    the rows (the coordinator's [`ShardPlan`]).
//! 2. **Central-noise round**: each bureau streams its shard into
//!    pre-merged merge-tree runs on its own thread and ships them over a
//!    Unix socket pair as an `fm-accum v2` payload. The coordinator
//!    replays the runs on the shared chunk grid, draws the mechanism's
//!    noise once, and releases a model **bit-identical** to a
//!    single-machine `fit` over the pooled rows at the same seed.
//! 3. **Local-noise round**: each bureau perturbs its own contribution
//!    before upload, so not even exact aggregates leave the building;
//!    the coordinator merely sums already-noised objectives. Same ε per
//!    bureau, ~√3× the noise — the printed MSE gap is the measured price
//!    of not trusting the coordinator.
//! 4. Both rounds debit the shared ledger through a
//!    parallel-composition scope: three disjoint bureaus at ε = 0.8 cost
//!    the tenant 0.8, not 2.4.
//!
//! Run with: `cargo run --release --example federated_census`

use std::os::unix::net::UnixStream;

use functional_mechanism::data::census;
use functional_mechanism::federated::ClientShare;
use functional_mechanism::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The contiguous row range `[start, start + rows)` of `data` as one
/// bureau's local shard (in the real deployment each bureau already
/// holds only its own rows).
fn shard(data: &Dataset, share: &ClientShare) -> Dataset {
    let d = data.x().cols();
    let mut xs = Vec::with_capacity(share.rows * d);
    for r in share.start_row..share.start_row + share.rows {
        xs.extend_from_slice(data.x().row(r));
    }
    let ys = data.y()[share.start_row..share.start_row + share.rows].to_vec();
    Dataset::new(
        Matrix::from_vec(share.rows, d, xs).expect("shard matrix"),
        ys,
    )
    .expect("shard dataset")
}

fn mse(model: &LinearModel, data: &Dataset) -> f64 {
    functional_mechanism::data::metrics::mse(&model.predict_batch(data.x()), data.y())
}

fn main() {
    let epsilon = 0.8; // the paper's default per-fit budget
    let bureaus = 3usize;

    // ---- 1. Data + the round's shard plan -------------------------------
    let mut rng = StdRng::seed_from_u64(2012);
    let profile = census::CensusProfile::us();
    let raw = census::generate(&profile, 30_000, &mut rng).expect("census generation");
    let schema = census::schema(&profile);
    let normalizer = Normalizer::from_schema(&schema, census::LABEL).expect("normalizer");
    let data = normalizer.normalize_linear(&raw).expect("normalization");

    let estimator = DpLinearRegression::builder().epsilon(epsilon).build();
    let coordinator = Coordinator::new(&estimator, NoiseMode::Central);
    let plan = coordinator
        .plan(data.n(), bureaus)
        .expect("chunk-aligned plan");
    println!(
        "federated census: n = {}, d = {}, {bureaus} bureaus, ε = {epsilon} per bureau",
        data.n(),
        data.d()
    );
    for (i, s) in plan.shares.iter().enumerate() {
        println!(
            "  bureau-{i}: rows [{}, {}) — {} whole chunks + {} tail rows",
            s.start_row,
            s.start_row + s.rows,
            s.chunks,
            s.tail_rows
        );
    }

    // ---- 2. Central-noise round over Unix sockets -----------------------
    let session = SharedPrivacySession::new();
    let mut coord_ends = Vec::new();
    let mut bureau_ends = Vec::new();
    for _ in 0..bureaus {
        let (a, b) = UnixStream::pair().expect("socket pair");
        coord_ends.push(StreamTransport::new(a.try_clone().expect("clone"), a));
        bureau_ends.push(Some(StreamTransport::new(b.try_clone().expect("clone"), b)));
    }
    let central = std::thread::scope(|scope| {
        for (i, (share, end)) in plan.shares.iter().zip(bureau_ends.iter_mut()).enumerate() {
            let local = shard(&data, share);
            let estimator = &estimator;
            let mut transport = end.take().expect("unused endpoint");
            scope.spawn(move || {
                let me = FederatedClient::new(estimator, format!("bureau-{i}"));
                let upload = me
                    .contribute_clean(&mut InMemorySource::new(&local), share)
                    .expect("clean contribution");
                me.upload(&mut transport, &upload).expect("upload");
            });
        }
        let mut rng = StdRng::seed_from_u64(42);
        coordinator
            .run_round(&mut coord_ends, &session, "census-study", &mut rng)
            .expect("central round")
    });

    // The whole point: the federated release is the single-machine fit.
    let mut rng = StdRng::seed_from_u64(42);
    let pooled = estimator.fit(&data, &mut rng).expect("single-machine fit");
    assert_eq!(
        central, pooled,
        "central round must be bit-identical to fit()"
    );
    println!(
        "\ncentral round : MSE {:.5} — bit-identical to fit() over the pooled rows",
        mse(&central, &data)
    );

    // ---- 3. Local-noise round -------------------------------------------
    let local_coordinator = Coordinator::new(&estimator, NoiseMode::Local);
    let mut coord_ends = Vec::new();
    for (i, share) in plan.shares.iter().enumerate() {
        let me = FederatedClient::new(&estimator, format!("bureau-{i}"));
        let local = shard(&data, share);
        let mut bureau_rng = StdRng::seed_from_u64(1_000 + i as u64);
        let upload = me
            .contribute_noisy(&mut InMemorySource::new(&local), &mut bureau_rng)
            .expect("noisy contribution");
        let (mut tx, rx) = InMemoryTransport::pair();
        me.upload(&mut tx, &upload).expect("upload");
        coord_ends.push(rx);
    }
    let mut rng = StdRng::seed_from_u64(43);
    let local = local_coordinator
        .run_round(&mut coord_ends, &session, "census-local", &mut rng)
        .expect("local round");
    println!(
        "local round   : MSE {:.5} — same ε, ~√{bureaus}× the noise std (untrusted coordinator)",
        mse(&local, &data)
    );

    // ---- 4. The ledger: parallel composition across disjoint bureaus ----
    let (central_eps, _) = session.spent_for("census-study");
    let (local_eps, _) = session.spent_for("census-local");
    println!(
        "\nledger: census-study ε = {central_eps} and census-local ε = {local_eps} \
         ({bureaus} bureaus × ε = {epsilon} each, composed in parallel — max, not sum)"
    );
}
