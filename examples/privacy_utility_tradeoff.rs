//! Privacy–utility trade-off and budget accounting.
//!
//! Sweeps the privacy budget ε over the paper's Table-2 grid and reports
//! FM's error at each point (the single-dataset analogue of Figure 6),
//! then demonstrates the [`PrivacyBudget`] ledger: composing two queries
//! under one budget and the Lemma-5 "resample at ε/2" strategy.
//!
//! Run with: `cargo run --release --example privacy_utility_tradeoff`

use functional_mechanism::data::synth;
use functional_mechanism::prelude::*;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(68_000);
    let truth = synth::ground_truth_weights(&mut rng, 6);
    let data = synth::linear_dataset_with_weights(&mut rng, 50_000, &truth, 0.05);

    let exact = LinearRegression::new().fit(&data).expect("OLS");
    let floor = metrics::mse(&exact.predict_batch(data.x()), data.y());
    println!("non-private MSE floor: {floor:.5}\n");
    println!("{:>8} {:>12} {:>14}", "ε", "FM MSE", "FM (resample)");

    // Table 2's ε grid, averaged over a few repeats per point.
    let repeats = 10;
    for epsilon in [0.1, 0.2, 0.4, 0.8, 1.6, 3.2] {
        let mut mse_default = 0.0;
        let mut mse_resample = 0.0;
        for _ in 0..repeats {
            let m = DpLinearRegression::builder()
                .epsilon(epsilon)
                .build()
                .fit(&data, &mut rng)
                .expect("fit");
            mse_default += metrics::mse(&m.predict_batch(data.x()), data.y());

            let m2 = DpLinearRegression::builder()
                .epsilon(epsilon)
                .strategy(Strategy::Resample { max_attempts: 100 })
                .build()
                .fit(&data, &mut rng)
                .expect("fit");
            mse_resample += metrics::mse(&m2.predict_batch(data.x()), data.y());
        }
        println!(
            "{epsilon:>8} {:>12.5} {:>14.5}",
            mse_default / f64::from(repeats),
            mse_resample / f64::from(repeats)
        );
    }

    println!(
        "\nThe Lemma-5 resampling strategy runs each attempt at ε/2, so its error\n\
         tracks the regularize+trim pipeline at half the effective budget —\n\
         which is exactly why the paper prefers §6 post-processing.\n"
    );

    // Budget accounting: one analyst, one dataset, total ε = 1.0.
    let mut budget = PrivacyBudget::new(1.0).expect("budget");
    budget.spend(0.8).expect("linear model spend");
    println!(
        "after fitting the income model at ε = 0.8: spent {:.1}, remaining {:.1}",
        budget.spent(),
        budget.remaining()
    );
    budget.spend(0.2).expect("follow-up query spend");
    println!(
        "after a follow-up ε = 0.2 query:          spent {:.1}, remaining {:.1}",
        budget.spent(),
        budget.remaining()
    );
    let refused = budget.spend(0.1);
    println!(
        "a third ε = 0.1 request is refused: {}",
        refused.unwrap_err()
    );
}
