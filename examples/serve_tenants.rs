//! **Multi-tenant serving** — `fm-serve` running Algorithm 1 as a
//! long-lived service over the WAL-backed privacy ledger.
//!
//! The walkthrough:
//! 1. Open a [`SharedPrivacySession`] over a fresh `fm-wal v1` log with a
//!    total ε cap, and start a [`FitService`] worker pool on it.
//! 2. Two tenants submit fits concurrently. Admission (the CAS against
//!    the shared cap plus the fsynced WAL `reserve`) happens at
//!    `submit`, before a single row moves — an over-budget tenant is
//!    refused without scanning anything.
//! 3. Each tenant streams its rows through the bounded block queue; the
//!    released weights are **bit-identical** to the equivalent direct
//!    `partial_fit` at the same seed.
//! 4. A graceful shutdown checkpoints a fit mid-stream; a second service
//!    incarnation over the same WAL resumes it — ε debited exactly once
//!    across the interruption — and finishes bit-identically too.
//!
//! Run with: `cargo run --release --example serve_tenants`

use std::sync::Arc;

use functional_mechanism::data::stream::RowSource;
use functional_mechanism::data::synth::linear_dataset;
use functional_mechanism::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Streams `data` into the service in `block_rows`-sized blocks.
fn feed(
    data: &Dataset,
    block_rows: usize,
    sender: &functional_mechanism::data::queue::BlockSender,
) {
    let mut source = InMemorySource::new(data);
    while let Some(block) = source.next_block(block_rows).expect("in-memory read") {
        sender.send(block).expect("service accepts blocks");
    }
}

fn main() {
    let wal = std::env::temp_dir().join(format!("fm_serve_example_{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&wal);

    // ---- 1. Shared ledger + service -------------------------------------
    let (session, _report) =
        SharedPrivacySession::with_wal(&wal, Some(2.0)).expect("open WAL session");
    let session = Arc::new(session);
    let service = FitService::new(
        Arc::clone(&session),
        ServeConfig::new()
            .workers(2)
            .queue_blocks(4)
            .compaction(CompactionPolicy::default()),
    );
    println!("service up: total ε cap 2.0, WAL at {}", wal.display());

    // ---- 2 + 3. Two tenants, concurrent fits, bit-identity --------------
    let mut r = StdRng::seed_from_u64(1);
    let acme = linear_dataset(&mut r, 4_000, 3, 0.1);
    let globex = linear_dataset(&mut r, 2_500, 3, 0.1);

    let est = || DpLinearRegression::builder().epsilon(0.6).build();
    let (acme_handle, acme_tx) = service
        .submit(est(), FitRequest::new("acme", "income", 3).seed(11))
        .expect("acme admitted");
    let (globex_handle, globex_tx) = service
        .submit(est(), FitRequest::new("globex", "income", 3).seed(22))
        .expect("globex admitted");
    println!(
        "admitted 2 tenants; spent ε = {:.2} (reserved up front, fail-closed)",
        session.spent_epsilon()
    );

    // Producers run concurrently with the workers; odd block sizes on
    // purpose — the service re-chunks onto the fixed 4096-row grid.
    std::thread::scope(|scope| {
        scope.spawn(|| {
            feed(&acme, 513, &acme_tx);
            acme_tx.finish();
        });
        scope.spawn(|| {
            feed(&globex, 777, &globex_tx);
            globex_tx.finish();
        });
    });
    let FitOutcome::Released(acme_model) = acme_handle.wait().expect("acme settles") else {
        panic!("acme fit should release");
    };
    let FitOutcome::Released(_globex_model) = globex_handle.wait().expect("globex settles") else {
        panic!("globex fit should release");
    };

    let est_acme = est();
    let mut direct = est_acme.partial_fit();
    direct
        .absorb(&mut InMemorySource::new(&acme))
        .expect("direct absorb");
    let mut rng = StdRng::seed_from_u64(11);
    let reference = direct.finalize(&mut rng).expect("direct release");
    assert_eq!(acme_model, reference);
    println!("acme's served release is bit-identical to the direct partial_fit");

    // ---- 4. Checkpointing shutdown + resume -----------------------------
    let (initech_handle, initech_tx) = service
        .submit(est(), FitRequest::new("initech", "income", 3).seed(33))
        .expect("initech admitted");
    let mut r = StdRng::seed_from_u64(2);
    let initech = linear_dataset(&mut r, 3_000, 3, 0.1);
    let half = initech
        .subset(&(0..1_500).collect::<Vec<_>>())
        .expect("subset");
    feed(&half, 400, &initech_tx);

    let suspended = service.shutdown();
    println!(
        "shutdown: {} fit(s) checkpointed, spent ε = {:.2} (never refunded mid-scan)",
        suspended.len(),
        session.spent_epsilon()
    );
    assert!(matches!(
        initech_handle.wait().expect("settled"),
        FitOutcome::Suspended(_)
    ));
    drop(initech_tx);
    let suspended = suspended.into_iter().next().expect("one suspended fit");
    let spent_before = session.spent_epsilon();

    let service = FitService::new(Arc::clone(&session), ServeConfig::new().workers(1));
    let rows_done = suspended.rows;
    let (handle, sender) = service
        .resume(est(), suspended, 33)
        .expect("resume re-attaches the reservation");
    assert_eq!(
        session.spent_epsilon(),
        spent_before,
        "no re-debit on resume"
    );
    let rest = initech
        .subset(&(rows_done..3_000).collect::<Vec<_>>())
        .expect("subset");
    feed(&rest, 400, &sender);
    sender.finish();
    let FitOutcome::Released(resumed_model) = handle.wait().expect("settles") else {
        panic!("resumed fit should release");
    };

    let est_initech = est();
    let mut direct = est_initech.partial_fit();
    direct
        .absorb(&mut InMemorySource::new(&initech))
        .expect("direct absorb");
    let mut rng = StdRng::seed_from_u64(33);
    assert_eq!(resumed_model, direct.finalize(&mut rng).expect("release"));
    println!(
        "resumed fit is bit-identical to the uninterrupted fit; total ε = {:.2}",
        session.spent_epsilon()
    );

    drop(service);
    let _ = std::fs::remove_file(&wal);
}
