//! Algorithm 1 beyond degree 2: private regression with a **quartic** loss
//! — now through the same one-estimator API as everything else.
//!
//! The paper's abstract promises a mechanism for "a large class of
//! optimization-based analyses"; its case studies both reduce to degree-2
//! polynomials. This example exercises the general-degree path on
//! `f(t, ω) = (y − xᵀω)⁴` — a loss whose polynomial form has monomials up
//! to degree 4, so the dense quadratic machinery cannot represent it.
//!
//! Where this example used to drive `GenericFunctionalMechanism::perturb`
//! and `NoisyPolynomial::minimize` by hand, it now builds a
//! [`SparseFmEstimator`]: the same `FitConfig` knobs (ε, §6 strategy,
//! intercept), the Lemma-5 `Strategy::Resample` loop with honest ε/2
//! accounting per attempt, `PrivacySession` budget debiting, and
//! `SavedModel` persistence — none of which the old side path offered.
//!
//! Run with: `cargo run --release --example quartic_loss`

use functional_mechanism::core::generic::GeneralObjective;
use functional_mechanism::data::synth;
use functional_mechanism::linalg::vecops;
use functional_mechanism::prelude::*;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(4_444);
    let d = 3;
    let truth = synth::ground_truth_weights(&mut rng, d);
    let data = synth::linear_dataset_with_weights(&mut rng, 50_000, &truth, 0.03);
    println!("ground truth ω* = {:?}", rounded(&truth));
    println!(
        "quartic sensitivity Δ = 2(1+d)⁴ = {} at d = {d} (vs {} for squared loss)\n",
        QuarticObjective.sensitivity(d),
        functional_mechanism::core::linreg::sensitivity_paper(d),
    );

    // The noise-free quartic minimiser (ε = ∞ reference), through the
    // same estimator.
    let clean = SparseFmEstimator::new(QuarticObjective, FitConfig::new())
        .fit_without_privacy(&data)
        .expect("clean fit");
    println!(
        "non-private quartic minimiser: ω = {:?}  ‖ω − ω*‖ = {:.4}\n",
        rounded(clean.weights()),
        vecops::dist2(clean.weights(), &truth)
    );

    // Private fits at three budgets, each drawn through one budget-aware
    // session. Strategy::Resample is Lemma 5 verbatim: every attempt runs
    // at ε/2 so the advertised total honours the 2× repetition cost, and
    // unbounded draws are retried inside the estimator.
    let mut session = PrivacySession::with_budget(48.0).expect("budget");
    for epsilon in [32.0, 8.0, 2.0] {
        let est = SparseFmEstimator::new(
            QuarticObjective,
            FitConfig::new()
                .epsilon(epsilon)
                .strategy(Strategy::Resample { max_attempts: 8 }),
        );
        match session.fit(&est, &data, &mut rng) {
            Ok(model) => println!(
                "ε = {epsilon:>4}: ω̄ = {:?}  ‖ω̄ − ω*‖ = {:.4}   (session: Σε = {})",
                rounded(model.weights()),
                vecops::dist2(model.weights(), &truth),
                session.spent_epsilon(),
            ),
            Err(FmError::ResampleExhausted { attempts }) => println!(
                "ε = {epsilon:>4}: all {attempts} draws unbounded — budget too small for a degree-4 release"
            ),
            Err(e) => println!("ε = {epsilon:>4}: refused — {e}"),
        }
    }
    println!(
        "fits recorded: {}, Σε spent: {}, remaining: {:?}",
        session.num_fits(),
        session.spent_epsilon(),
        session.remaining_epsilon(),
    );

    // Released weights are a linear predictor: they persist through the
    // standard model format like any other fit.
    let est = SparseFmEstimator::new(
        QuarticObjective,
        FitConfig::new()
            .epsilon(32.0)
            .strategy(Strategy::Resample { max_attempts: 8 }),
    );
    let mut fresh = rand::rngs::StdRng::seed_from_u64(7);
    if let Ok(model) = est.fit(&data, &mut fresh) {
        let text = SavedModel::from(&model).to_text().expect("serialise");
        let back: LinearModel = SavedModel::from_text(&text)
            .expect("parse")
            .into_model()
            .expect("kind");
        assert_eq!(back, model);
        println!("\npersistence round-trip: bit-exact ({} bytes)", text.len());
    }

    println!(
        "\nThe quartic Δ grows like d⁴, so useful budgets are larger than for the\n\
         degree-2 losses — the paper's observation that FM shines when the\n\
         objective has low-degree polynomial form, made quantitative."
    );
}

fn rounded(w: &[f64]) -> Vec<f64> {
    w.iter().map(|v| (v * 1_000.0).round() / 1_000.0).collect()
}
