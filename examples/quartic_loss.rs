//! Algorithm 1 beyond degree 2: private regression with a **quartic** loss.
//!
//! The paper's abstract promises a mechanism for "a large class of
//! optimization-based analyses"; its case studies both reduce to degree-2
//! polynomials. This example exercises the general-degree path on
//! `f(t, ω) = (y − xᵀω)⁴` — a loss that penalises large residuals much
//! harder than squared error, and whose polynomial form has monomials up
//! to degree 4 (so the dense quadratic machinery cannot represent it).
//!
//! Algorithm 1 applies verbatim: expand per-tuple coefficients over
//! `Φ_0 … Φ_4`, bound their L1 norm over the normalized domain
//! (`Δ = 2((1+d)⁴ − 1)`), perturb *every* monomial coefficient with
//! `Lap(Δ/ε)` — structural zeros included — and minimise the noisy
//! polynomial. The §6 post-processing story changes: a noisy quartic may
//! be unbounded below, which the minimiser detects and reports; this
//! example retries on a fresh draw, paying for each attempt out of an
//! explicit budget (Lemma-5 style accounting).
//!
//! Run with: `cargo run --release --example quartic_loss`

use functional_mechanism::core::generic::{
    GeneralObjective, GenericFunctionalMechanism, QuarticObjective,
};
use functional_mechanism::data::synth;
use functional_mechanism::linalg::vecops;
use functional_mechanism::prelude::*;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(4_444);
    let d = 3;
    let truth = synth::ground_truth_weights(&mut rng, d);
    let data = synth::linear_dataset_with_weights(&mut rng, 50_000, &truth, 0.03);
    println!("ground truth ω* = {:?}", rounded(&truth));
    println!(
        "quartic sensitivity Δ = 2((1+d)⁴ − 1) = {} at d = {d} (vs {} for squared loss)\n",
        QuarticObjective.sensitivity(d),
        functional_mechanism::core::linreg::sensitivity_paper(d),
    );

    // The noise-free quartic minimiser (for reference): with symmetric
    // noise it is close to the squared-loss OLS solution.
    let exact_q = QuarticObjective.assemble(&data);
    println!(
        "clean quartic objective: {} monomials, degree {}",
        exact_q.num_terms(),
        exact_q.degree()
    );

    // Private fits: each attempt draws a fresh noisy polynomial; unbounded
    // draws are retried, and every attempt is paid for.
    for epsilon in [32.0, 8.0, 2.0] {
        let attempts = 8;
        let mut budget = PrivacyBudget::new(epsilon).expect("budget");
        let per_attempt = budget.split_remaining(attempts).expect("split");
        let fm = GenericFunctionalMechanism::new(per_attempt).expect("mechanism");
        let mut outcome = None;
        let mut used = 0;
        for _ in 0..attempts {
            used += 1;
            let noisy = fm
                .perturb(&data, &QuarticObjective, &mut rng)
                .expect("perturb");
            if let Ok(omega) = noisy.minimize(&[0.0; 3], 1e3) {
                outcome = Some(omega);
                break;
            }
        }
        match outcome {
            Some(omega) => println!(
                "ε = {epsilon:>4} (per-attempt {per_attempt:.2}): ω̄ = {:?}  ‖ω̄ − ω*‖ = {:.4}  ({used} attempt(s))",
                rounded(&omega),
                vecops::dist2(&omega, &truth)
            ),
            None => println!(
                "ε = {epsilon:>4}: all {attempts} draws unbounded — budget too small for a degree-4 release"
            ),
        }
    }

    println!(
        "\nThe quartic Δ grows like d⁴, so useful budgets are larger than for the\n\
         degree-2 losses — the paper's observation that FM shines when the\n\
         objective has low-degree polynomial form, made quantitative."
    );
}

fn rounded(w: &[f64]) -> Vec<f64> {
    w.iter().map(|v| (v * 1_000.0).round() / 1_000.0).collect()
}
