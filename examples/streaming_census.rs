//! **Out-of-core census income** — the paper's flagship workload fitted
//! from a CSV *stream* under a fixed memory cap, never materializing the
//! dataset.
//!
//! Pipeline:
//! 1. Generate the synthetic US census in **raw units** and write it to a
//!    CSV file (standing in for a data lake export far larger than RAM).
//! 2. Open a `CsvStreamSource` that reads, clamps and normalizes each row
//!    on the fly (footnote-1 feature map + the `[−1, 1]` label map, from
//!    the schema's declared domains — never from the data).
//! 3. `fit_stream` an ε-DP linear regression with a caller-chosen
//!    `--chunk-rows` memory cap: peak staged memory is one
//!    `chunk_rows × d` block, whatever the file size.
//! 4. Re-fit the materialized dataset in memory and compare: at the
//!    default chunk size the released weights are **bit-identical**.
//! 5. Split the file into two disjoint shard files, fit shard-at-a-time
//!    with `partial_fit`/`finalize` (one mechanism release total), and
//!    fit one model *per* shard under the session's
//!    **parallel-composition** scope — k disjoint shards debit max(ε),
//!    not Σε.
//!
//! Run with: `cargo run --release --example streaming_census -- [--rows N] [--chunk-rows C]`

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};

use functional_mechanism::data::census;
use functional_mechanism::data::stream::{CsvStreamSource, LabelTransform};
use functional_mechanism::prelude::*;
use rand::SeedableRng;

fn main() {
    let mut rows = 40_000usize;
    let mut chunk_rows = 4_096usize; // the assembly default
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--rows" => rows = argv.next().and_then(|v| v.parse().ok()).unwrap_or(rows),
            "--chunk-rows" => {
                chunk_rows = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(chunk_rows);
            }
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(1);
            }
        }
    }

    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let epsilon = 0.8;

    // 1. Raw census → CSV (the "too big for RAM" stand-in).
    let profile = census::CensusProfile::us();
    let raw = census::generate(&profile, rows, &mut rng).expect("census generation");
    let dir = std::env::temp_dir().join("fm_streaming_census");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let csv_path = dir.join("census_raw.csv");
    functional_mechanism::data::csv::write_dataset(&raw, &csv_path).expect("write csv");

    let schema = census::schema(&profile);
    let normalizer = Normalizer::from_schema(&schema, census::LABEL).expect("normalizer");
    let d = normalizer.d();
    println!(
        "census stream: {rows} rows × {d} features from {}\n\
         memory cap: chunk_rows = {chunk_rows} → peak staged block ≈ {:.1} KiB\n",
        csv_path.display(),
        (chunk_rows * d * 8) as f64 / 1024.0
    );

    // 2–3. Stream → normalize per row → ε-DP fit under the memory cap.
    let estimator = DpLinearRegression::builder()
        .config(FitConfig::new().epsilon(epsilon))
        .build();
    let streamed = {
        let mut source = CsvStreamSource::open(&csv_path)
            .expect("open csv")
            .with_normalizer(normalizer.clone(), LabelTransform::Linear)
            .expect("normalizer arity");
        let mut partial = estimator.partial_fit().chunk_rows(chunk_rows);
        let mut fit_rng = rand::rngs::StdRng::seed_from_u64(42);
        let absorbed = partial.absorb(&mut source).expect("stream absorb");
        assert_eq!(absorbed, rows, "every CSV row must be consumed");
        partial.finalize(&mut fit_rng).expect("streamed fit")
    };

    // 4. The in-memory reference: same rows, same seed.
    let data = normalizer.normalize_linear(&raw).expect("normalize");
    let mut fit_rng = rand::rngs::StdRng::seed_from_u64(42);
    let in_memory = estimator.fit(&data, &mut fit_rng).expect("in-memory fit");
    let mse = |m: &LinearModel| metrics::mse(&m.predict_batch(data.x()), data.y());
    println!(
        "streamed fit:  MSE = {:.5}   (ε = {epsilon})\n\
         in-memory fit: MSE = {:.5}",
        mse(&streamed),
        mse(&in_memory)
    );
    if chunk_rows == 4_096 {
        assert_eq!(
            streamed, in_memory,
            "default chunking must be bit-identical"
        );
        println!("released weights are bit-identical to the in-memory fit\n");
    } else {
        println!(
            "non-default chunk size regroups floating-point sums; released \
             weights agree with the in-memory fit up to that regrouping\n"
        );
    }

    // 5a. Shard the CSV into two disjoint files and fit shard-at-a-time:
    //     one mechanism release over both shards (privacy cost ε once).
    let shard_paths = split_csv(&csv_path, 2);
    let mut partial = estimator.partial_fit().chunk_rows(chunk_rows);
    for path in &shard_paths {
        let mut source = CsvStreamSource::open(path)
            .expect("open shard")
            .with_normalizer(normalizer.clone(), LabelTransform::Linear)
            .expect("normalizer arity");
        let n = partial.absorb(&mut source).expect("shard absorb");
        println!("absorbed shard {} ({n} rows)", path.display());
    }
    let mut fit_rng = rand::rngs::StdRng::seed_from_u64(42);
    let sharded = partial.finalize(&mut fit_rng).expect("sharded fit");
    println!(
        "shard-at-a-time fit: MSE = {:.5} (equals the single-stream fit: {})\n",
        mse(&sharded),
        sharded == streamed
    );

    // 5b. Parallel composition: one model *per* disjoint shard, debited
    //     max(ε) = 0.8 for the whole release instead of Σε = 1.6.
    let mut session = PrivacySession::with_budget(1.0).expect("budget");
    let mut shards: Vec<_> = shard_paths
        .iter()
        .map(|p| {
            CsvStreamSource::open(p)
                .expect("open shard")
                .with_normalizer(normalizer.clone(), LabelTransform::Linear)
                .expect("normalizer arity")
        })
        .collect();
    let mut fit_rng = rand::rngs::StdRng::seed_from_u64(43);
    let per_shard = session
        .fit_disjoint_shards(&estimator, &mut shards, &mut fit_rng)
        .expect("parallel-composition fits");
    println!(
        "parallel composition: {} disjoint-shard models fitted at ε = {epsilon} each,\n\
         session debited max(ε) = {:.1} (sequential accounting would charge {:.1})",
        per_shard.len(),
        session.spent_epsilon(),
        epsilon * per_shard.len() as f64
    );

    for p in shard_paths {
        std::fs::remove_file(p).ok();
    }
    std::fs::remove_file(&csv_path).ok();
}

/// Splits a CSV (header + rows) into `k` disjoint shard files, row ranges
/// in order — a stand-in for data already partitioned across silos.
fn split_csv(path: &std::path::Path, k: usize) -> Vec<std::path::PathBuf> {
    let reader = BufReader::new(File::open(path).expect("reopen csv"));
    let mut lines = reader.lines();
    let header = lines.next().expect("header").expect("header io");
    let rows: Vec<String> = lines.map(|l| l.expect("row io")).collect();
    let per = rows.len().div_ceil(k);
    rows.chunks(per)
        .enumerate()
        .map(|(i, chunk)| {
            let shard_path = path.with_file_name(format!("census_shard_{i}.csv"));
            let mut w = BufWriter::new(File::create(&shard_path).expect("create shard"));
            writeln!(w, "{header}").expect("shard header");
            for row in chunk {
                writeln!(w, "{row}").expect("shard row");
            }
            w.flush().expect("shard flush");
            shard_path
        })
        .collect()
}
