//! The paper's motivating medical scenario (Figure 1b / Section 3):
//! predict whether a patient has diabetes from age and cholesterol level —
//! without the hospital's published model leaking any individual record.
//!
//! Demonstrates ε-DP logistic regression (Algorithm 2) next to the exact
//! non-private MLE and the noise-free Truncated baseline, reproducing the
//! paper's claim that the ε-DP model's predictive power stays close to the
//! unperturbed one.
//!
//! Run with: `cargo run --release --example diabetes_logistic`

use functional_mechanism::prelude::*;
use rand::Rng;
use rand::SeedableRng;

/// Synthesizes a patient cohort: P(diabetes) rises with age and
/// cholesterol. Covariates are *centred* (deviation from the cohort mean)
/// before scaling into the unit ball — Definition 2's model has no
/// intercept, so the decision boundary passes through the origin of the
/// normalized space; centring is what makes that space meaningful, exactly
/// as the paper's Figure 1b sketches the boundary through the point cloud.
fn patient_cohort(rng: &mut impl Rng, n: usize) -> Dataset {
    let sqrt2 = std::f64::consts::SQRT_2;
    let mut rows = Vec::with_capacity(n * 2);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        // Deviations from the cohort mean, in [−½, ½].
        let age: f64 = rng.gen::<f64>() - 0.5;
        let chol: f64 = rng.gen::<f64>() - 0.5;
        // Each coordinate in [−1/√d, 1/√d] with d = 2 ⇒ ‖x‖₂ ≤ 1.
        let x = [age / sqrt2, chol / sqrt2];
        // Ground truth: log-odds increase with both covariates.
        let logit = 8.0 * (0.6 * age + 0.7 * chol);
        let p = 1.0 / (1.0 + (-logit).exp());
        rows.extend_from_slice(&x);
        labels.push(f64::from(rng.gen_bool(p)));
    }
    let x = Matrix::from_vec(n, 2, rows).expect("sized");
    Dataset::with_names(x, labels, vec!["age".into(), "cholesterol".into()]).expect("non-empty")
}

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1_729);
    let train = patient_cohort(&mut rng, 40_000);
    let test = patient_cohort(&mut rng, 10_000);
    println!(
        "cohort: {} training patients, {} held-out\n",
        train.n(),
        test.n()
    );

    let report = |name: &str, model: &LogisticModel| {
        let probs = model.probabilities_batch(test.x());
        let err = metrics::misclassification_rate(&probs, test.y());
        println!(
            "{name:<14} misclassification = {:.3}   ω = {:?}",
            err,
            model.weights()
        );
    };

    // Non-private ceiling.
    let exact = LogisticRegression::new().fit(&train).expect("MLE");
    report("NoPrivacy", &exact);

    // Noise-free Taylor truncation (isolates the §5 approximation error).
    let truncated = TruncatedLogistic::new().fit(&train).expect("truncated");
    report("Truncated", &truncated);

    // ε-DP logistic regression at decreasing budgets.
    for epsilon in [3.2, 0.8, 0.1] {
        let dp = DpLogisticRegression::builder()
            .epsilon(epsilon)
            .build()
            .fit(&train, &mut rng)
            .expect("DP fit");
        report(&format!("FM ε={epsilon}"), &dp);
    }

    // A concrete patient: middle-aged, elevated cholesterol.
    let dp = DpLogisticRegression::builder()
        .epsilon(0.8)
        .build()
        .fit(&train, &mut rng)
        .expect("DP fit");
    let patient = [
        0.15 / std::f64::consts::SQRT_2,
        0.30 / std::f64::consts::SQRT_2,
    ];
    println!(
        "\nExample patient (age +0.15, cholesterol +0.30 above cohort mean): \
         P(diabetes) = {:.2} under the ε=0.8 private model",
        dp.probability(&patient)
    );
}
