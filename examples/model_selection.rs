//! Private model selection with the exponential mechanism.
//!
//! The §6.1 regularization multiplier (the paper fixes it at 4× the noise
//! stddev) is a hyper-parameter. Tuning it by *looking at validation error*
//! leaks information about the validation tuples — unless the selection
//! step is itself differentially private. This example runs the full
//! private pipeline:
//!
//! 1. split the data into train/validation;
//! 2. fit one FM model per candidate multiplier, each under ε_fit
//!    (sequential composition: the fits together cost k·ε_fit);
//! 3. score each candidate on the validation split with a *bounded*
//!    utility (clipped negative MSE, per-tuple sensitivity 4/n_val);
//! 4. select a candidate with the exponential mechanism under ε_select;
//! 5. account for every ε with the `PrivacyBudget` ledger.
//!
//! Run with: `cargo run --release --example model_selection`

use functional_mechanism::core::linreg::LinearObjective;
use functional_mechanism::core::postprocess;
use functional_mechanism::core::FunctionalMechanism;
use functional_mechanism::data::{cv, synth};
use functional_mechanism::prelude::*;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(41);

    // A mid-size dataset in the paper's normalized domain.
    let truth = synth::ground_truth_weights(&mut rng, 8);
    let data = synth::linear_dataset_with_weights(&mut rng, 40_000, &truth, 0.05);
    let (train, validation) = cv::train_test_split(&data, 0.25, &mut rng).expect("split");
    println!(
        "train n = {}, validation n = {}, d = {}\n",
        train.n(),
        validation.n(),
        validation.d()
    );

    // Candidate §6.1 multipliers (the paper's choice, 4, is in the middle).
    let candidates = [1.0, 2.0, 4.0, 8.0, 16.0];

    // Budget plan: 0.8 total — 0.12 per candidate fit, 0.2 for selection.
    let eps_fit = 0.12;
    let eps_select = 0.2;
    let mut budget =
        PrivacyBudget::new(eps_fit * candidates.len() as f64 + eps_select).expect("budget");

    // Fit one model per multiplier. Each fit runs Algorithm 1 at ε_fit on
    // the training split, then post-processes with the candidate λ.
    let fm = FunctionalMechanism::new(eps_fit).expect("mechanism");
    let mut models = Vec::new();
    let mut utilities = Vec::new();
    println!("{:>12} {:>14} {:>12}", "multiplier", "val MSE", "utility");
    for &multiplier in &candidates {
        budget.spend(eps_fit).expect("fit budget");
        let mut noisy = fm
            .perturb(&train, &LinearObjective, &mut rng)
            .expect("perturb");
        let lambda = postprocess::regularize_with(&mut noisy, multiplier);
        let omega = postprocess::spectral_trim_minimize_with_floor(&noisy, lambda)
            .expect("minimise")
            .0;
        let model = LinearModel::new(omega, Some(eps_fit));

        // Bounded utility: −mean((clip(ŷ) − y)²) ∈ [−4, 0]. One validation
        // tuple changes it by at most 4/n_val ⇒ Δu = 4/n_val.
        let utility = -validation
            .tuples()
            .map(|(x, y)| {
                let e = model.predict(x).clamp(-1.0, 1.0) - y;
                e * e
            })
            .sum::<f64>()
            / validation.n() as f64;
        println!("{multiplier:>12} {:>14.6} {utility:>12.6}", -utility);
        models.push(model);
        utilities.push(utility);
    }

    // ε-DP selection over the candidates.
    budget.spend(eps_select).expect("selection budget");
    let delta_u = 4.0 / validation.n() as f64;
    let mech = ExponentialMechanism::new(eps_select, delta_u).expect("mechanism");
    let probs = mech
        .selection_probabilities(&utilities)
        .expect("probabilities");
    let winner = mech.select(&utilities, &mut rng).expect("select");

    println!("\nselection probabilities: {:?}", rounded(&probs));
    println!(
        "selected multiplier = {} (validation MSE {:.6})",
        candidates[winner], -utilities[winner]
    );
    println!(
        "budget: spent {:.2}, remaining {:.2} — every data access is accounted for",
        budget.spent(),
        budget.remaining()
    );
}

fn rounded(w: &[f64]) -> Vec<f64> {
    w.iter().map(|v| (v * 1_000.0).round() / 1_000.0).collect()
}
