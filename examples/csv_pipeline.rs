//! The practitioner's end-to-end workflow: raw CSV on disk → normalized
//! dataset → ε-DP model → de-normalized predictions.
//!
//! This is the path a real deployment takes with the paper's IPUMS data:
//!
//! 1. a raw census extract sits in a CSV with natural units (ages in
//!    years, income in dollars);
//! 2. the footnote-1 map `x ← (x − α)/((β − α)·√d)` puts features inside
//!    the unit ball, and income is rescaled to `[−1, 1]` — using *public*
//!    schema bounds, never data-derived ones (data-derived bounds would
//!    themselves leak);
//! 3. the Functional Mechanism fits under ε-DP;
//! 4. predictions are mapped back to dollars with the same public bounds.
//!
//! Run with: `cargo run --release --example csv_pipeline`

use functional_mechanism::data::census::{self, CensusProfile};
use functional_mechanism::data::csv;
use functional_mechanism::prelude::*;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let dir = std::env::temp_dir().join("fm_csv_pipeline");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("census_us.csv");

    // --- 1. A raw extract lands on disk (here: the synthetic census). ---
    let profile = CensusProfile::us();
    let raw = census::generate(&profile, 30_000, &mut rng).expect("generate");
    csv::write_dataset(&raw, &path).expect("write csv");
    println!(
        "wrote {} ({} rows × {} columns + label)",
        path.display(),
        raw.n(),
        raw.d()
    );

    // --- 2. Read it back and normalize with PUBLIC schema bounds. ---
    let loaded = csv::read_dataset(&path).expect("read csv");
    assert_eq!(loaded.n(), raw.n());
    let schema = census::schema(&profile);
    let normalizer = Normalizer::from_schema(&schema, "AnnualIncome").expect("normalizer");
    let data = normalizer.normalize_linear(&loaded).expect("normalize");
    data.check_normalized_linear().expect("contract");
    println!(
        "normalized: max ‖x‖₂ = {:.4} (contract requires ≤ 1)",
        data.max_feature_norm()
    );

    // --- 3. Fit under ε-DP. ---
    let epsilon = 0.8;
    let model = DpLinearRegression::builder()
        .epsilon(epsilon)
        .build()
        .fit(&data, &mut rng)
        .expect("DP fit");
    let mse = metrics::mse(&model.predict_batch(data.x()), data.y());
    println!("FM ε = {epsilon}: normalized-scale MSE = {mse:.5}");

    // --- 4. Predict in dollars for a fresh record. ---
    let query_norm = data.x().row(0);
    let dollars = normalizer.denormalize_label(model.predict(query_norm));
    let actual = normalizer.denormalize_label(data.y()[0]);
    println!("example prediction: ${dollars:.0} (actual ${actual:.0})");

    // The model, not the data, is what leaves the silo: its parameters are
    // ε-DP, and de-normalization uses only public bounds.
    println!(
        "\nreleased parameters (ε-DP): {:?}",
        model
            .weights()
            .iter()
            .map(|w| (w * 1_000.0).round() / 1_000.0)
            .collect::<Vec<_>>()
    );

    // --- 5. Ship the artefact: persist, reload, predictions identical. ---
    let model_path = dir.join("income_model.fm");
    SavedModel::from(&model)
        .save(&model_path)
        .expect("save model");
    let reloaded = SavedModel::load(&model_path)
        .expect("load model")
        .into_linear()
        .expect("linear model");
    assert_eq!(reloaded.predict(query_norm), model.predict(query_norm));
    println!(
        "model persisted to {} and reloaded bit-exactly (ε = {:?})",
        model_path.display(),
        reloaded.epsilon()
    );

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&model_path).ok();
}
