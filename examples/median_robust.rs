//! Robust private regression: **median** and **Huber** objectives vs
//! least squares under label contamination.
//!
//! Squared error gives every tuple influence proportional to its
//! residual, so a slice of junk labels (sensor saturation, data-entry
//! errors — clamped to the contract range but uncorrelated with the
//! features) drags the whole fit. The robust objectives' influence
//! functions *saturate*: an outlier tuple contributes a bounded tug and
//! almost no curvature, privately, at the same ε.
//!
//! This example injects one-sided label outliers at increasing rates and
//! compares three private estimators at equal budget, plus their
//! non-private references — all through one `dyn DpEstimator` line-up and
//! one `PrivacySession`.
//!
//! Run with: `cargo run --release --example median_robust`

use functional_mechanism::data::synth;
use functional_mechanism::linalg::vecops;
use functional_mechanism::prelude::*;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3_113);
    let w = vec![0.3, -0.2];
    let n = 40_000;
    let epsilon = 2.0;
    println!("ground truth ω* = {w:?}, n = {n}, per-fit ε = {epsilon}\n");
    println!("outlier%   FM-least-squares   FM-median   FM-huber     (‖ω̄ − ω*‖, mean of 5)");

    for frac in [0.0, 0.1, 0.25, 0.4] {
        let base = synth::linear_dataset_with_weights(&mut rng, n, &w, 0.05);
        // Ceiling junk: in-contract but meaningless labels.
        let data = synth::inject_label_outliers(&mut rng, &base, frac, 1.0);

        // One heterogeneous line-up, one budget-aware session.
        let ols = DpLinearRegression::builder().epsilon(epsilon).build();
        let median = DpMedianRegression::builder()
            .epsilon(epsilon)
            .smoothing(0.5)
            .build();
        let huber = DpHuberRegression::builder().epsilon(epsilon).build();
        let lineup: Vec<&dyn DpEstimator<Model = LinearModel>> = vec![&ols, &median, &huber];

        let mut session = PrivacySession::new();
        let reps = 5;
        let mut errs = Vec::new();
        for est in &lineup {
            let mut total = 0.0;
            for _ in 0..reps {
                let model = session.fit(*est, &data, &mut rng).expect("fit");
                total += vecops::dist2(model.weights(), &w);
            }
            errs.push(total / f64::from(reps));
        }
        println!(
            "{:>7.0}% {:>18.4} {:>11.4} {:>10.4}",
            frac * 100.0,
            errs[0],
            errs[1],
            errs[2]
        );
    }

    // The honest cost of the table above, from the session ledger.
    let mut session = PrivacySession::new();
    let est = DpMedianRegression::builder().epsilon(epsilon).build();
    let probe = synth::linear_dataset_with_weights(&mut rng, 5_000, &w, 0.05);
    for _ in 0..5 {
        let _ = session.fit(&est, &probe, &mut rng);
    }
    let report = session.report(1e-6).expect("valid δ′");
    println!(
        "\neach cell above spent 5 sequential fits: basic Σε = {}, best composition (δ′=1e-6) ε = {:.2}",
        report.basic.0, report.best.0
    );

    // Non-private exact fits, for reference: the robust losses themselves
    // (not their surrogates) minimised by gradient descent.
    let base = synth::linear_dataset_with_weights(&mut rng, n, &w, 0.05);
    let data = synth::inject_label_outliers(&mut rng, &base, 0.25, 1.0);
    let exact_median = DpMedianRegression::builder()
        .smoothing(0.1)
        .build()
        .fit_exact_without_privacy(&data)
        .expect("exact median");
    let exact_ols = DpLinearRegression::builder()
        .build()
        .fit_without_privacy(&data)
        .expect("OLS");
    println!(
        "\nnon-private, 25% outliers: exact median ‖ω − ω*‖ = {:.4}, OLS = {:.4}",
        vecops::dist2(exact_median.weights(), &w),
        vecops::dist2(exact_ols.weights(), &w),
    );
    println!(
        "\nThe saturating losses keep junk labels from buying influence — and the\n\
         guarantee is unchanged: same Algorithm 1, same ε, sensitivity Δ still\n\
         independent of the data."
    );
}
