//! DP Poisson regression on census counts — the §8 "other regression
//! tasks" extension on a realistic workload.
//!
//! Predicts **Number of Children** (a count in 0…10) from the other
//! census attributes, under ε-differential privacy. The pipeline mirrors
//! what a practitioner would do with the paper's IPUMS data:
//!
//! 1. take the synthetic census (the repo's IPUMS substitute);
//! 2. move `NumChildren` from the feature side to the label side;
//! 3. normalize the remaining features to the unit ball with the paper's
//!    footnote-1 map `x ← (x − α) / ((β − α)·√d)`;
//! 4. fit DP Poisson regression (log-linear rate, intercept for the base
//!    rate) and compare against the non-private truncated fit.
//!
//! Run with: `cargo run --release --example poisson_counts`

use functional_mechanism::data::census::{self, CensusProfile};
use functional_mechanism::prelude::*;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1_312);

    // 1. Synthetic US census, 60k rows: 13 predictors + raw income label.
    let profile = CensusProfile::us();
    let raw = census::generate(&profile, 60_000, &mut rng).expect("census");
    let schema = census::schema(&profile);

    // 2–3. Re-target the regression: y = NumChildren (capped), x = the other
    // 12 attributes scaled to the unit ball per footnote 1.
    let label_col = raw
        .feature_names()
        .iter()
        .position(|n| n == "NumChildren")
        .expect("census has NumChildren");
    let y_max = 10.0;
    let feature_cols: Vec<usize> = (0..raw.d()).filter(|&c| c != label_col).collect();
    let d = feature_cols.len();
    let sqrt_d = (d as f64).sqrt();
    let bounds: Vec<(f64, f64)> = feature_cols
        .iter()
        .map(|&c| {
            schema
                .attribute(&raw.feature_names()[c])
                .expect("schema attribute")
                .kind
                .bounds()
        })
        .collect();
    let x = Matrix::from_fn(raw.n(), d, |r, j| {
        let (alpha, beta) = bounds[j];
        (raw.x()[(r, feature_cols[j])] - alpha) / ((beta - alpha) * sqrt_d)
    });
    let y: Vec<f64> = (0..raw.n())
        .map(|r| raw.x()[(r, label_col)].min(y_max))
        .collect();
    let names: Vec<String> = feature_cols
        .iter()
        .map(|&c| raw.feature_names()[c].clone())
        .collect();
    let data = Dataset::with_names(x, y, names).expect("dataset");
    data.check_normalized_counts(y_max).expect("contract");

    let mean_children = data.y().iter().sum::<f64>() / data.n() as f64;
    println!(
        "n = {}, d = {}, mean children = {mean_children:.3}\n",
        data.n(),
        data.d()
    );

    // 4. Non-private floor, then DP fits across budgets. The intercept
    // carries the base rate (log of the mean count); the weights carry the
    // demographic effects (married households skew larger, etc.).
    let mae = |m: &PoissonModel| -> f64 {
        data.tuples()
            .map(|(x, y)| (m.rate(x) - y).abs())
            .sum::<f64>()
            / data.n() as f64
    };

    let truncated = DpPoissonRegression::builder()
        .y_max(y_max)
        .fit_intercept(true)
        .build()
        .fit_truncated_without_privacy(&data)
        .expect("truncated fit");
    println!(
        "{:<14} MAE = {:.4}   base rate exp(b) = {:.3}",
        "Truncated",
        mae(&truncated),
        truncated.intercept().exp()
    );

    for epsilon in [3.2, 0.8, 0.2] {
        let model = DpPoissonRegression::builder()
            .epsilon(epsilon)
            .y_max(y_max)
            .fit_intercept(true)
            .build()
            .fit(&data, &mut rng)
            .expect("DP fit");
        println!(
            "{:<14} MAE = {:.4}   base rate exp(b) = {:.3}",
            format!("FM ε={epsilon}"),
            mae(&model),
            model.intercept().exp()
        );
    }

    // The married-household effect must survive privatization at a
    // reasonable budget: compare predicted rates for two otherwise
    // identical profiles.
    let model = DpPoissonRegression::builder()
        .epsilon(0.8)
        .y_max(y_max)
        .fit_intercept(true)
        .build()
        .fit(&data, &mut rng)
        .expect("DP fit");
    let married_idx = data
        .feature_names()
        .iter()
        .position(|n| n == "IsMarried")
        .unwrap();
    let profile_single = vec![0.0; data.d()];
    let mut profile_married = vec![0.0; data.d()];
    profile_married[married_idx] = 1.0 / ((1.0) * sqrt_d); // IsMarried is 0/1 ⇒ β−α = 1
    println!(
        "\npredicted children (ε = 0.8): unmarried baseline {:.3}, married {:.3}",
        model.rate(&profile_single),
        model.rate(&profile_married)
    );
}
