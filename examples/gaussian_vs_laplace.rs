//! Strict ε-DP (Laplace) vs relaxed (ε, δ)-DP (Gaussian) noise in the
//! Functional Mechanism.
//!
//! The paper's related-work section notes the (ε, δ) relaxation exists but
//! argues regression works fine under strict ε-DP. This example quantifies
//! what the relaxation would buy: the Laplace calibration pays the **L1**
//! coefficient sensitivity `Δ₁ = 2(d+1)²` (quadratic in the
//! dimensionality), while the Gaussian calibration pays the **L2**
//! sensitivity `Δ₂ = 2√6` (a constant) — so the gap widens rapidly with
//! `d`.
//!
//! Run with: `cargo run --release --example gaussian_vs_laplace`

use functional_mechanism::core::linreg;
use functional_mechanism::data::synth;
use functional_mechanism::prelude::*;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2_718);
    let epsilon = 0.8; // < 1, as the classical Gaussian mechanism requires
    let delta = 1e-6;
    let repeats = 20;

    println!("ε = {epsilon}, δ = {delta} (Gaussian column only), {repeats} repeats\n");
    println!(
        "{:>4} {:>12} {:>12} {:>14} {:>14} {:>12}",
        "d", "Δ₁ = 2(d+1)²", "Δ₂ = 2√6", "Laplace MSE", "Gaussian MSE", "NoPrivacy"
    );

    for d in [2usize, 5, 8, 11, 14] {
        let truth = synth::ground_truth_weights(&mut rng, d);
        let data = synth::linear_dataset_with_weights(&mut rng, 20_000, &truth, 0.05);

        let floor = {
            let m = LinearRegression::new().fit(&data).expect("OLS");
            metrics::mse(&m.predict_batch(data.x()), data.y())
        };

        let mut mean_mse = |noise: NoiseDistribution| -> f64 {
            (0..repeats)
                .map(|_| {
                    let m = DpLinearRegression::builder()
                        .epsilon(epsilon)
                        .noise(noise)
                        .build()
                        .fit(&data, &mut rng)
                        .expect("fit");
                    metrics::mse(&m.predict_batch(data.x()), data.y())
                })
                .sum::<f64>()
                / repeats as f64
        };

        let laplace = mean_mse(NoiseDistribution::Laplace);
        let gaussian = mean_mse(NoiseDistribution::Gaussian { delta });

        println!(
            "{d:>4} {:>12.0} {:>12.2} {laplace:>14.5} {gaussian:>14.5} {floor:>12.5}",
            linreg::sensitivity_paper(d),
            linreg::sensitivity_l2(),
        );
    }

    println!(
        "\nThe Laplace column degrades as Δ₁ grows quadratically in d; the Gaussian\n\
         column tracks the non-private floor because Δ₂ is dimension-independent.\n\
         The price is the relaxation itself: with probability up to δ the ε\n\
         guarantee can fail — which is why the paper (and this library's default)\n\
         stays with strict ε-DP."
    );
}
