//! Quickstart: ε-differentially private linear regression in ~30 lines.
//!
//! Generates a synthetic dataset with a known ground-truth parameter
//! vector, fits the Functional Mechanism at several privacy budgets, and
//! compares against the non-private optimum.
//!
//! Run with: `cargo run --release --example quickstart`

use functional_mechanism::data::synth;
use functional_mechanism::prelude::*;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2012);

    // 20,000 tuples, 5 features, mild label noise — already in the paper's
    // normalized domain (‖x‖₂ ≤ 1, y ∈ [−1, 1]).
    let truth = synth::ground_truth_weights(&mut rng, 5);
    let data = synth::linear_dataset_with_weights(&mut rng, 20_000, &truth, 0.05);
    println!("ground truth ω* = {truth:?}\n");

    // The non-private ceiling.
    let exact = LinearRegression::new().fit(&data).expect("OLS fit");
    let exact_mse = metrics::mse(&exact.predict_batch(data.x()), data.y());
    println!(
        "{:<12} mse = {exact_mse:.6}   ω = {:?}",
        "NoPrivacy",
        rounded(exact.weights())
    );

    // The Functional Mechanism across privacy budgets.
    for epsilon in [3.2, 0.8, 0.2] {
        let model = DpLinearRegression::builder()
            .epsilon(epsilon)
            .build()
            .fit(&data, &mut rng)
            .expect("DP fit");
        let mse = metrics::mse(&model.predict_batch(data.x()), data.y());
        println!(
            "{:<12} mse = {mse:.6}   ω = {:?}",
            format!("FM ε={epsilon}"),
            rounded(model.weights())
        );
    }

    println!("\nSmaller ε ⇒ more noise ⇒ higher MSE; at generous budgets FM ≈ NoPrivacy.");
}

fn rounded(w: &[f64]) -> Vec<f64> {
    w.iter().map(|v| (v * 1_000.0).round() / 1_000.0).collect()
}
