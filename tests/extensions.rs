//! Cross-crate integration tests for the extensions beyond the paper's
//! headline pipeline: intercept fitting (footnote 2), the Chebyshev
//! surrogate (§8), DP Poisson regression (§8), the (ε, δ) Gaussian
//! variant, private model selection, and failure injection on malformed
//! inputs.

use functional_mechanism::core::generic::{GenericFunctionalMechanism, QuarticObjective};
use functional_mechanism::core::linreg::DpLinearRegression;
use functional_mechanism::core::logreg::{Approximation, DpLogisticRegression};
use functional_mechanism::core::poisson::DpPoissonRegression;
use functional_mechanism::core::robust::{DpHuberRegression, DpMedianRegression};
use functional_mechanism::core::sparse::{SparseFmEstimator, DEFAULT_DIVERGENCE_RADIUS};
use functional_mechanism::core::{FmError, NoiseDistribution, Strategy};
use functional_mechanism::data::{cv, metrics, synth};
use functional_mechanism::linalg::{vecops, Matrix};
use functional_mechanism::prelude::*;
use functional_mechanism::privacy::exponential::ExponentialMechanism;
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

// ---------------------------------------------------------------- intercept

#[test]
fn intercept_pipeline_beats_flat_model_on_offset_data() {
    // End-to-end: offset labels, 5-fold CV, private fits. The footnote-2
    // model must deliver lower held-out MSE than the flat model at a
    // generous budget.
    let mut r = rng(100);
    let w = vec![0.25, -0.2, 0.15];
    let base = synth::linear_dataset_with_weights(&mut r, 40_000, &w, 0.02);
    let y: Vec<f64> = base
        .y()
        .iter()
        .map(|y| (y + 0.35).clamp(-1.0, 1.0))
        .collect();
    let data = Dataset::new(base.x().clone(), y).unwrap();

    let scores_with = cv::cross_validate(&data, 5, &mut r, |train, test| {
        let m = DpLinearRegression::builder()
            .epsilon(3.2)
            .fit_intercept(true)
            .build()
            .fit(train, &mut rng(7))
            .map_err(|e| data_err(&e))?;
        Ok::<_, functional_mechanism::data::DataError>(metrics::mse(
            &m.predict_batch(test.x()),
            test.y(),
        ))
    })
    .unwrap();
    let scores_flat = cv::cross_validate(&data, 5, &mut r, |train, test| {
        let m = DpLinearRegression::builder()
            .epsilon(3.2)
            .build()
            .fit(train, &mut rng(7))
            .map_err(|e| data_err(&e))?;
        Ok::<_, functional_mechanism::data::DataError>(metrics::mse(
            &m.predict_batch(test.x()),
            test.y(),
        ))
    })
    .unwrap();

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&scores_with) < mean(&scores_flat),
        "intercept {:.5} should beat flat {:.5}",
        mean(&scores_with),
        mean(&scores_flat)
    );
}

fn data_err(e: &FmError) -> functional_mechanism::data::DataError {
    functional_mechanism::data::DataError::InvalidParameter {
        name: "fit",
        reason: e.to_string(),
    }
}

// ----------------------------------------------------------------- poisson

#[test]
fn poisson_pipeline_end_to_end_with_cv() {
    let mut r = rng(200);
    let w = vec![0.4, -0.3];
    let data = synth::poisson_dataset_with_weights(&mut r, 30_000, &w, 8.0);

    let scores = cv::cross_validate(&data, 5, &mut r, |train, test| {
        let m = DpPoissonRegression::builder()
            .epsilon(1.6)
            .build()
            .fit(train, &mut rng(13))
            .map_err(|e| data_err(&e))?;
        let mae = test
            .tuples()
            .map(|(x, y)| (m.rate(x) - y).abs())
            .sum::<f64>()
            / test.n() as f64;
        Ok::<_, functional_mechanism::data::DataError>(mae)
    })
    .unwrap();
    assert_eq!(scores.len(), 5);
    // The intrinsic Poisson MAE floor at rates ∈ [1/e, e] is ≈ 0.75; a
    // sane private fit must stay in that ballpark rather than blowing up.
    for s in &scores {
        assert!(s.is_finite() && *s < 1.5, "fold MAE {s}");
    }
}

#[test]
fn poisson_private_beats_constant_rate_predictor() {
    // The fitted model must out-predict the best constant (the global mean
    // rate) on data with real signal, even under noise.
    let mut r = rng(201);
    let w = vec![0.7, 0.0];
    let data = synth::poisson_dataset_with_weights(&mut r, 60_000, &w, 10.0);
    let mean_count = data.y().iter().sum::<f64>() / data.n() as f64;
    let constant_sse: f64 = data.y().iter().map(|y| (y - mean_count).powi(2)).sum();

    let m = DpPoissonRegression::builder()
        .epsilon(3.2)
        .y_max(10.0)
        .build()
        .fit(&data, &mut r)
        .unwrap();
    let model_sse: f64 = data.tuples().map(|(x, y)| (m.rate(x) - y).powi(2)).sum();
    assert!(
        model_sse < constant_sse,
        "model SSE {model_sse} should beat constant SSE {constant_sse}"
    );
}

// --------------------------------------------------------------- chebyshev

#[test]
fn chebyshev_and_taylor_agree_at_generous_budget() {
    let mut r = rng(300);
    let data = synth::logistic_dataset(&mut r, 40_000, 4, 10.0);
    let taylor = DpLogisticRegression::builder()
        .epsilon(3.2)
        .build()
        .fit(&data, &mut r)
        .unwrap();
    let cheb = DpLogisticRegression::builder()
        .epsilon(3.2)
        .approximation(Approximation::Chebyshev { half_width: 1.0 })
        .build()
        .fit(&data, &mut r)
        .unwrap();
    let err_t = metrics::misclassification_rate(&taylor.probabilities_batch(data.x()), data.y());
    let err_c = metrics::misclassification_rate(&cheb.probabilities_batch(data.x()), data.y());
    assert!(
        (err_t - err_c).abs() < 0.05,
        "taylor {err_t} vs chebyshev {err_c}"
    );
}

// ------------------------------------------------------- gaussian variant

#[test]
fn gaussian_variant_dominates_laplace_at_d14() {
    // The repo's (ε, δ) extension: at the paper's full dimensionality the
    // L2-calibrated Gaussian noise must beat the L1-calibrated Laplace
    // noise on average.
    let mut r = rng(400);
    let data = synth::linear_dataset(&mut r, 20_000, 14, 0.05);
    let reps = 8;
    let mean_mse = |noise: NoiseDistribution, r: &mut rand::rngs::StdRng| -> f64 {
        (0..reps)
            .map(|_| {
                let m = DpLinearRegression::builder()
                    .epsilon(0.8)
                    .noise(noise)
                    .build()
                    .fit(&data, r)
                    .unwrap();
                metrics::mse(&m.predict_batch(data.x()), data.y())
            })
            .sum::<f64>()
            / reps as f64
    };
    let laplace = mean_mse(NoiseDistribution::Laplace, &mut r);
    let gaussian = mean_mse(NoiseDistribution::Gaussian { delta: 1e-6 }, &mut r);
    assert!(
        gaussian < laplace,
        "gaussian {gaussian} vs laplace {laplace}"
    );
}

#[test]
fn gaussian_variant_works_for_logistic_and_poisson_too() {
    let mut r = rng(401);
    let log_data = synth::logistic_dataset(&mut r, 20_000, 5, 8.0);
    let m = DpLogisticRegression::builder()
        .epsilon(0.8)
        .noise(NoiseDistribution::Gaussian { delta: 1e-6 })
        .build()
        .fit(&log_data, &mut r)
        .unwrap();
    let err = metrics::misclassification_rate(&m.probabilities_batch(log_data.x()), log_data.y());
    assert!(err < 0.5, "misclassification {err}");

    let poi_data = synth::poisson_dataset(&mut r, 20_000, 5, 8.0);
    let m = DpPoissonRegression::builder()
        .epsilon(0.8)
        .noise(NoiseDistribution::Gaussian { delta: 1e-6 })
        .build()
        .fit(&poi_data, &mut r)
        .unwrap();
    assert!(m.rate(poi_data.x().row(0)).is_finite());
}

// -------------------------------------------------- private model selection

#[test]
fn exponential_mechanism_selects_good_multiplier_end_to_end() {
    // Deterministic small version of examples/model_selection.rs: at a
    // healthy selection budget, the chosen candidate's utility must be
    // close to the best candidate's (the mechanism's utility guarantee).
    let mut r = rng(500);
    let data = synth::linear_dataset(&mut r, 20_000, 5, 0.05);
    let (train, val) = cv::train_test_split(&data, 0.3, &mut r).unwrap();

    let candidates = [1.0, 4.0, 64.0];
    let utilities: Vec<f64> = candidates
        .iter()
        .map(|&mult| {
            use functional_mechanism::core::linreg::LinearObjective;
            use functional_mechanism::core::postprocess;
            use functional_mechanism::core::FunctionalMechanism;
            let fm = FunctionalMechanism::new(0.4).unwrap();
            let mut noisy = fm.perturb(&train, &LinearObjective, &mut r).unwrap();
            let lambda = postprocess::regularize_with(&mut noisy, mult);
            let omega = postprocess::spectral_trim_minimize_with_floor(&noisy, lambda)
                .unwrap()
                .0;
            let m = LinearModel::new(omega, None);
            -val.tuples()
                .map(|(x, y)| {
                    let e = m.predict(x).clamp(-1.0, 1.0) - y;
                    e * e
                })
                .sum::<f64>()
                / val.n() as f64
        })
        .collect();

    let delta_u = 4.0 / val.n() as f64;
    let mech = ExponentialMechanism::new(2.0, delta_u).unwrap();
    let best = utilities.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let winner = mech.select(&utilities, &mut r).unwrap();
    // With ε/(2Δu) this large, the selection is essentially argmax.
    assert!(
        (best - utilities[winner]).abs() < 1e-6,
        "selected utility {} vs best {best}",
        utilities[winner]
    );
}

// --------------------------------------------------------- failure injection

#[test]
fn nan_and_infinite_features_are_rejected_everywhere() {
    let mut r = rng(600);
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let x = Matrix::from_rows(&[&[bad, 0.0], &[0.1, 0.1]]).unwrap();
        let lin = Dataset::new(x.clone(), vec![0.5, -0.5]).unwrap();
        assert!(
            matches!(
                DpLinearRegression::builder().build().fit(&lin, &mut r),
                Err(FmError::Data(_))
            ),
            "linear accepted {bad}"
        );
        let log = Dataset::new(x.clone(), vec![1.0, 0.0]).unwrap();
        assert!(
            matches!(
                DpLogisticRegression::builder().build().fit(&log, &mut r),
                Err(FmError::Data(_))
            ),
            "logistic accepted {bad}"
        );
        let poi = Dataset::new(x, vec![2.0, 0.0]).unwrap();
        assert!(
            matches!(
                DpPoissonRegression::builder().build().fit(&poi, &mut r),
                Err(FmError::Data(_))
            ),
            "poisson accepted {bad}"
        );
    }
}

#[test]
fn nan_labels_are_rejected_everywhere() {
    let mut r = rng(601);
    let x = Matrix::from_rows(&[&[0.1, 0.1]]).unwrap();
    let bad = Dataset::new(x, vec![f64::NAN]).unwrap();
    assert!(DpLinearRegression::builder()
        .build()
        .fit(&bad, &mut r)
        .is_err());
    assert!(DpLogisticRegression::builder()
        .build()
        .fit(&bad, &mut r)
        .is_err());
    assert!(DpPoissonRegression::builder()
        .build()
        .fit(&bad, &mut r)
        .is_err());
}

#[test]
fn strategies_and_noise_combinations_are_validated() {
    let mut r = rng(602);
    let data = synth::linear_dataset(&mut r, 200, 2, 0.05);
    // Gaussian + Resample: rejected.
    assert!(matches!(
        DpLinearRegression::builder()
            .epsilon(0.5)
            .noise(NoiseDistribution::Gaussian { delta: 1e-6 })
            .strategy(Strategy::Resample { max_attempts: 4 })
            .build()
            .fit(&data, &mut r),
        Err(FmError::InvalidConfig { .. })
    ));
    // Chebyshev with broken interval: rejected at fit time.
    assert!(DpLogisticRegression::builder()
        .approximation(Approximation::Chebyshev {
            half_width: f64::NAN
        })
        .build()
        .fit(&synth::logistic_dataset(&mut r, 100, 2, 5.0), &mut r)
        .is_err());
}

#[test]
fn single_row_datasets_never_panic() {
    // Degenerate but legal input: one tuple. At ε = 1 the noise dwarfs a
    // single tuple's signal, so the outcome is draw-dependent — either a
    // finite model or the documented clean failure (`EmptySpectrum`: the
    // spectrum after §6.1+§6.2 is pure noise). What must NEVER happen is a
    // panic or a non-finite model.
    let mut r = rng(603);
    let x = Matrix::from_rows(&[&[0.5, 0.5]]).unwrap();
    let check = |result: Result<Vec<f64>, FmError>| match result {
        Ok(w) => assert!(w.iter().all(|v| v.is_finite()), "non-finite weights {w:?}"),
        Err(FmError::EmptySpectrum | FmError::Optim(_)) => {}
        Err(e) => panic!("unexpected error class: {e}"),
    };
    for _ in 0..25 {
        let lin = Dataset::new(x.clone(), vec![0.3]).unwrap();
        check(
            DpLinearRegression::builder()
                .build()
                .fit(&lin, &mut r)
                .map(|m| m.weights().to_vec()),
        );
        let log = Dataset::new(x.clone(), vec![1.0]).unwrap();
        check(
            DpLogisticRegression::builder()
                .build()
                .fit(&log, &mut r)
                .map(|m| m.weights().to_vec()),
        );
        let poi = Dataset::new(x.clone(), vec![3.0]).unwrap();
        check(
            DpPoissonRegression::builder()
                .build()
                .fit(&poi, &mut r)
                .map(|m| m.weights().to_vec()),
        );
    }
}

// ------------------------------------------------- robust regression pins

/// A linear dataset with a fraction of labels replaced by one-sided
/// outliers at the label ceiling (sensor saturation / data-entry junk:
/// clamped to the contract range, uncorrelated with the features).
fn outlier_dataset(seed: u64, n: usize, w: &[f64], frac: f64) -> Dataset {
    let mut r = rng(seed);
    let base = synth::linear_dataset_with_weights(&mut r, n, w, 0.05);
    synth::inject_label_outliers(&mut r, &base, frac, 1.0)
}

#[test]
fn median_regression_beats_least_squares_under_label_outliers() {
    // Seed-pinned regression-utility pin: at equal per-fit ε on data with
    // 25% injected label outliers, the private median fit must recover
    // the true weights better (averaged over a handful of draws) than
    // private least squares — the whole point of the robust objectives.
    let w = vec![0.3, -0.2];
    let data = outlier_dataset(900, 40_000, &w, 0.25);
    let reps = 6;
    let mean_err = |fit: &dyn Fn(&mut rand::rngs::StdRng) -> Vec<f64>| -> f64 {
        let mut r = rng(901);
        (0..reps)
            .map(|_| vecops::dist2(&fit(&mut r), &w))
            .sum::<f64>()
            / reps as f64
    };
    // γ is chosen at the clean-label spread (|xᵀw| ≤ 0.36): residuals of
    // genuine tuples sit in the near-quadratic region of the smoothed
    // loss while the y = 1 outliers land deep in its saturated tail,
    // which is exactly the regime the objective's docs prescribe.
    let median = DpMedianRegression::builder()
        .epsilon(2.0)
        .smoothing(0.5)
        .build();
    let huber = DpHuberRegression::builder().epsilon(2.0).build();
    let ols = DpLinearRegression::builder().epsilon(2.0).build();
    let err_median = mean_err(&|r| median.fit(&data, r).unwrap().weights().to_vec());
    let err_huber = mean_err(&|r| huber.fit(&data, r).unwrap().weights().to_vec());
    let err_ols = mean_err(&|r| ols.fit(&data, r).unwrap().weights().to_vec());
    assert!(
        err_median < err_ols,
        "median {err_median} should beat least squares {err_ols} under outliers"
    );
    assert!(
        err_huber < err_ols,
        "huber {err_huber} should beat least squares {err_ols} under outliers"
    );
}

#[test]
fn robust_fits_flow_through_session_and_persistence() {
    // The new objectives are first-class citizens of the estimator API:
    // session-debited like every other fit, persisted and reloaded
    // bit-exactly through the same SavedModel format.
    let mut r = rng(910);
    let data = synth::linear_dataset(&mut r, 20_000, 3, 0.1);
    let median = DpMedianRegression::builder().epsilon(0.5).build();
    let huber = DpHuberRegression::builder().epsilon(0.7).build();
    let mut session = PrivacySession::with_budget(1.5).unwrap();
    let lineup: Vec<&dyn DpEstimator<Model = LinearModel>> = vec![&median, &huber];
    for est in lineup {
        let model = session.fit(est, &data, &mut r).unwrap();
        let text = SavedModel::from(&model).to_text().unwrap();
        let back: LinearModel = SavedModel::from_text(&text).unwrap().into_model().unwrap();
        assert_eq!(back, model);
    }
    assert_eq!(session.num_fits(), 2);
    assert!((session.spent_epsilon() - 1.2).abs() < 1e-12);
}

// ------------------------------------------------ unified sparse path pins

#[test]
fn unified_quartic_estimator_reproduces_generic_mechanism_bit_for_bit() {
    // The acceptance pin for deprecating the GenericFunctionalMechanism
    // side path: on the same RNG stream, the unified SparseFmEstimator
    // (FailIfUnbounded = the old example's raw perturb→minimize) must
    // release *exactly* the weights the manual drive produced.
    let mut r = rng(920);
    let data = synth::linear_dataset(&mut r, 5_000, 3, 0.05);
    let est = SparseFmEstimator::new(
        QuarticObjective,
        FitConfig::new()
            .epsilon(128.0)
            .strategy(Strategy::FailIfUnbounded),
    );

    let mut r1 = rng(921);
    let unified = est.fit(&data, &mut r1).unwrap();

    let mut r2 = rng(921);
    let fm = GenericFunctionalMechanism::new(128.0).unwrap();
    let noisy = fm.perturb(&data, &QuarticObjective, &mut r2).unwrap();
    let manual = noisy
        .minimize(&[0.0; 3], DEFAULT_DIVERGENCE_RADIUS)
        .unwrap();

    assert_eq!(
        unified.weights(),
        manual.as_slice(),
        "unified sparse path must match the old side path bit-for-bit"
    );
    assert_eq!(unified.epsilon(), Some(128.0));
}

#[test]
fn quartic_estimator_end_to_end_with_session_and_persistence() {
    // The quartic demo's whole story through the one estimator API:
    // budget-aware resampling fit, honest Lemma-5 accounting, model
    // persistence — none of which the old side path offered.
    let mut r = rng(930);
    let w = vec![0.4, -0.25];
    let data = synth::linear_dataset_with_weights(&mut r, 30_000, &w, 0.03);
    let est = SparseFmEstimator::new(
        QuarticObjective,
        FitConfig::new()
            .epsilon(64.0)
            .strategy(Strategy::Resample { max_attempts: 8 }),
    );
    let mut session = PrivacySession::with_budget(100.0).unwrap();
    let model = session.fit(&est, &data, &mut r).unwrap();
    assert_eq!(session.num_fits(), 1);
    assert!((session.spent_epsilon() - 64.0).abs() < 1e-12);
    assert!(
        vecops::dist2(model.weights(), &w) < 0.2,
        "weights {:?}",
        model.weights()
    );
    let text = SavedModel::from(&model).to_text().unwrap();
    let back: LinearModel = SavedModel::from_text(&text).unwrap().into_model().unwrap();
    assert_eq!(back, model);
    // A second fit would overdraw the cap: refused before running.
    assert!(session.fit(&est, &data, &mut r).is_err());
}

#[test]
fn budget_ledger_accounts_for_candidate_fits() {
    // The model-selection pattern: k fits + 1 selection must exactly
    // exhaust the planned budget and refuse anything further.
    let mut budget = PrivacyBudget::new(1.0).unwrap();
    for _ in 0..4 {
        budget.spend(0.2).unwrap();
    }
    budget.spend(0.2).unwrap(); // the selection step
    assert!(budget.spend(1e-9).is_err());
    assert!((budget.spent() - 1.0).abs() < 1e-12);
}
