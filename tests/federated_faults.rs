//! Network fault-injection sweeps for `fm-federated`'s quorum rounds:
//! every scripted fault resolves to a typed error, a deduped retry, or a
//! salvaged round — **never** a hang, a double debit, or a corrupted
//! release.
//!
//! The centerpiece is an every-byte sweep over a real 3-client round
//! transcript: for every client and every strict byte prefix of its
//! payload, a [`TransportFault::Torn`] delivers the prefix first and the
//! intact frame as the retransmit — the coordinator must refuse the torn
//! copy (checksum), accept the retransmit, and release a model
//! bit-identical to the fault-free round at the same seed. Drop, delay
//! and duplicate faults then exercise the other recovery paths: deadline
//! expiry into dropout salvage, timeout into a successful retry, and
//! exactly-once dedup of a duplicated frame during recovery.

use std::time::Duration;

use functional_mechanism::core::linreg::DpLinearRegression;
use functional_mechanism::core::model::LinearModel;
use functional_mechanism::core::session::SharedPrivacySession;
use functional_mechanism::data::stream::InMemorySource;
use functional_mechanism::data::{synth, Dataset};
use functional_mechanism::federated::{
    Coordinator, FaultInjectingTransport, FederatedClient, FederatedError, InMemoryTransport,
    NoiseMode, QuorumPolicy, RetryPolicy, TransportFault,
};
use functional_mechanism::linalg::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

const CHUNK_ROWS: usize = 4;
const ROWS: usize = 27; // 6 chunks of 4 + a 3-row ragged tail, split 3 ways
const ROUND: u64 = 5;
const SEED: u64 = 616;

/// A retry schedule with no sleeps: sweeps run thousands of rounds, and
/// determinism — not wall-clock spacing — is what the tests need.
fn instant_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 3,
        base_backoff: Duration::ZERO,
        max_backoff: Duration::ZERO,
    }
}

struct Fixture {
    data: Dataset,
    estimator: DpLinearRegression,
    payloads: Vec<String>,
}

/// One shared 3-client round: the dataset, the estimator, and each
/// client's encoded `fm-accum v2` payload (the round transcript).
fn fixture() -> Fixture {
    let data = {
        let mut rng = StdRng::seed_from_u64(19);
        synth::linear_dataset(&mut rng, ROWS, 2, 0.1)
    };
    let estimator = DpLinearRegression::builder().epsilon(0.8).build();
    let coordinator =
        Coordinator::with_chunk_rows(&estimator, NoiseMode::Central, CHUNK_ROWS).with_round(ROUND);
    let plan = coordinator.plan(ROWS, 3).unwrap();
    let payloads = plan
        .shares
        .iter()
        .enumerate()
        .map(|(i, share)| {
            let shard = slice_dataset(&data, share.start_row, share.rows);
            FederatedClient::with_chunk_rows(&estimator, format!("c{i}"), CHUNK_ROWS)
                .with_round(ROUND)
                .contribute_clean(&mut InMemorySource::new(&shard), share)
                .unwrap()
                .encode()
        })
        .collect();
    Fixture {
        data,
        estimator,
        payloads,
    }
}

fn slice_dataset(data: &Dataset, start: usize, rows: usize) -> Dataset {
    let d = data.x().cols();
    let mut xs = Vec::with_capacity(rows * d);
    for r in start..start + rows {
        xs.extend_from_slice(data.x().row(r));
    }
    let ys = data.y()[start..start + rows].to_vec();
    Dataset::new(Matrix::from_vec(rows, d, xs).unwrap(), ys).unwrap()
}

/// The fault-free reference release over the pooled row ranges.
fn reference_over(fixture: &Fixture, ranges: &[(usize, usize)]) -> LinearModel {
    let d = fixture.data.x().cols();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &(start, rows) in ranges {
        for r in start..start + rows {
            xs.extend_from_slice(fixture.data.x().row(r));
        }
        ys.extend_from_slice(&fixture.data.y()[start..start + rows]);
    }
    let rows = ys.len();
    let pooled = Dataset::new(Matrix::from_vec(rows, d, xs).unwrap(), ys).unwrap();
    let mut direct = fixture.estimator.partial_fit().chunk_rows(CHUNK_ROWS);
    direct.absorb(&mut InMemorySource::new(&pooled)).unwrap();
    let mut rng = StdRng::seed_from_u64(SEED);
    direct.finalize(&mut rng).unwrap()
}

/// Coordinator-side transports for the round, each wrapped in a fault
/// injector: `fault_at[i] = Some((fault, message))` arms transport `i`,
/// `None` leaves it transparent. Every payload is pre-sent; the client
/// ends for `keep_alive` indices are returned still-open (for recovery
/// traffic), the rest hang up after uploading.
fn faulted_round(
    payloads: &[String],
    fault_at: &[Option<TransportFault>],
    skip_upload: &[usize],
    keep_alive: &[usize],
) -> (
    Vec<FaultInjectingTransport<InMemoryTransport>>,
    Vec<InMemoryTransport>,
) {
    let mut coord_ends = Vec::new();
    let mut kept = Vec::new();
    for (i, payload) in payloads.iter().enumerate() {
        let (mut tx, rx) = InMemoryTransport::pair();
        if !skip_upload.contains(&i) {
            use functional_mechanism::federated::Transport;
            tx.send(payload.as_bytes()).unwrap();
        }
        if keep_alive.contains(&i) {
            kept.push(tx);
        }
        let (fault, at) = match fault_at[i] {
            Some(fault) => (fault, 0),
            None => (TransportFault::Drop, usize::MAX),
        };
        coord_ends.push(FaultInjectingTransport::new(rx, fault, at));
    }
    (coord_ends, kept)
}

/// The every-byte crash-point sweep: for **each** client of the round
/// and **every** strict byte prefix of its payload, tearing the frame at
/// that offset (with the intact frame queued as the retransmit) still
/// releases the fault-free model bit for bit — one typed refusal, one
/// deduction-free retry, no dropouts, no extra debit.
#[test]
fn torn_frame_sweep_over_every_byte_prefix_recovers_bit_identically() {
    let fx = fixture();
    let clean = reference_over(&fx, &[(0, ROWS)]);
    let estimator = &fx.estimator;
    let coordinator =
        Coordinator::with_chunk_rows(estimator, NoiseMode::Central, CHUNK_ROWS).with_round(ROUND);
    let policy = QuorumPolicy::new(3, Duration::from_secs(1)).with_retry(instant_retry());

    let mut sweeps = 0usize;
    for target in 0..fx.payloads.len() {
        for at in 0..fx.payloads[target].len() {
            let mut faults = vec![None; 3];
            faults[target] = Some(TransportFault::Torn(at));
            let (mut coord_ends, _kept) = faulted_round(&fx.payloads, &faults, &[], &[]);
            let session = SharedPrivacySession::new();
            let mut rng = StdRng::seed_from_u64(SEED);
            let (model, report) = coordinator
                .run_round_with_quorum(&mut coord_ends, &policy, &session, "t", &mut rng)
                .unwrap_or_else(|e| panic!("client {target} torn at byte {at}: {e}"));
            assert_eq!(
                model, clean,
                "client {target} torn at byte {at} corrupted the release"
            );
            assert!(
                report.dropped.is_empty(),
                "torn at byte {at} dropped a client"
            );
            assert_eq!(report.deduped_frames, 0);
            assert!(coord_ends[target].fired(), "the fault never fired");
            assert_eq!(
                session.spent_for("t"),
                (0.8, 0.0),
                "debit drifted at byte {at}"
            );
            sweeps += 1;
        }
    }
    let transcript: usize = fx.payloads.iter().map(String::len).sum();
    assert_eq!(
        sweeps, transcript,
        "the sweep must cover the whole transcript"
    );
}

/// A dropped frame on the last client's channel: the coordinator's
/// deadline expires, retries exhaust, the client is dropped, and the
/// round salvages over the first two — whose grid positions never moved,
/// so no recovery sub-round is needed.
#[test]
fn dropped_frame_times_out_into_dropout_salvage() {
    let fx = fixture();
    let coordinator = Coordinator::with_chunk_rows(&fx.estimator, NoiseMode::Central, CHUNK_ROWS)
        .with_round(ROUND);
    let plan = coordinator.plan(ROWS, 3).unwrap();
    let policy = QuorumPolicy::new(2, Duration::from_millis(20)).with_retry(instant_retry());

    let mut faults = vec![None; 3];
    faults[2] = Some(TransportFault::Drop);
    let (mut coord_ends, _kept) = faulted_round(&fx.payloads, &faults, &[], &[0, 1, 2]);
    let session = SharedPrivacySession::new();
    let mut rng = StdRng::seed_from_u64(SEED);
    let (model, report) = coordinator
        .run_round_with_quorum(&mut coord_ends, &policy, &session, "t", &mut rng)
        .unwrap();

    assert_eq!(report.dropped, vec![2]);
    assert_eq!(report.survivors, vec!["c0", "c1"]);
    assert_eq!(report.recovery_subrounds, 0);
    assert!(coord_ends[2].fired());
    let reference = reference_over(
        &fx,
        &[
            (plan.shares[0].start_row, plan.shares[0].rows),
            (plan.shares[1].start_row, plan.shares[1].rows),
        ],
    );
    assert_eq!(model, reference);
    assert_eq!(session.spent_for("t"), (0.8, 0.0));
}

/// A delayed frame: the first receive times out (typed), the retry finds
/// the frame already arrived — nobody is dropped and the release equals
/// the fault-free round.
#[test]
fn delayed_frame_is_recovered_by_a_retry() {
    let fx = fixture();
    let clean = reference_over(&fx, &[(0, ROWS)]);
    let coordinator = Coordinator::with_chunk_rows(&fx.estimator, NoiseMode::Central, CHUNK_ROWS)
        .with_round(ROUND);
    let policy = QuorumPolicy::new(3, Duration::from_millis(50)).with_retry(instant_retry());

    let mut faults = vec![None; 3];
    faults[1] = Some(TransportFault::Delay);
    let (mut coord_ends, _kept) = faulted_round(&fx.payloads, &faults, &[], &[]);
    let session = SharedPrivacySession::new();
    let mut rng = StdRng::seed_from_u64(SEED);
    let (model, report) = coordinator
        .run_round_with_quorum(&mut coord_ends, &policy, &session, "t", &mut rng)
        .unwrap();

    assert!(report.dropped.is_empty());
    assert!(coord_ends[1].fired());
    assert_eq!(model, clean);
    assert_eq!(session.spent_for("t"), (0.8, 0.0));
}

/// A duplicated frame met by idempotency: client 2's upload is delivered
/// twice while client 1 drops out. During recovery the coordinator reads
/// the duplicate first, recognizes its `(round, client, checksum)`
/// identity, dedups it exactly-once, and waits for the real re-upload —
/// the salvaged release still matches the survivor reference bit for
/// bit, with `deduped_frames` proving the dedup fired.
#[test]
fn duplicated_frame_is_deduped_exactly_once_during_recovery() {
    let fx = fixture();
    let coordinator = Coordinator::with_chunk_rows(&fx.estimator, NoiseMode::Central, CHUNK_ROWS)
        .with_round(ROUND);
    let plan = coordinator.plan(ROWS, 3).unwrap();
    let policy = QuorumPolicy::new(2, Duration::from_secs(5)).with_retry(instant_retry());

    let mut faults = vec![None; 3];
    faults[2] = Some(TransportFault::Duplicate);
    // Client 1 never uploads and hangs up; client 2 stays online to
    // serve the recovery re-assignment.
    let (mut coord_ends, mut kept) = faulted_round(&fx.payloads, &faults, &[1], &[2]);
    let session = SharedPrivacySession::new();

    let (model, report) = std::thread::scope(|scope| {
        let share = plan.shares[2];
        let shard = slice_dataset(&fx.data, share.start_row, share.rows);
        let estimator = &fx.estimator;
        let mut transport = kept.pop().unwrap();
        scope.spawn(move || {
            // The client already uploaded (pre-sent frame); from here it
            // only serves control messages until the round closes.
            let client =
                FederatedClient::with_chunk_rows(estimator, "c2", CHUNK_ROWS).with_round(ROUND);
            use functional_mechanism::federated::{ControlMsg, Transport};
            loop {
                let text = String::from_utf8(transport.recv().unwrap()).unwrap();
                match ControlMsg::decode(&text).unwrap() {
                    ControlMsg::Done { .. } => return,
                    ControlMsg::Assign { share, .. } => {
                        let upload = client
                            .contribute_clean(&mut InMemorySource::new(&shard), &share)
                            .unwrap();
                        client.upload(&mut transport, &upload).unwrap();
                    }
                }
            }
        });
        let mut rng = StdRng::seed_from_u64(SEED);
        coordinator
            .run_round_with_quorum(&mut coord_ends, &policy, &session, "t", &mut rng)
            .unwrap()
    });

    assert_eq!(report.dropped, vec![1]);
    assert_eq!(report.survivors, vec!["c0", "c2"]);
    assert_eq!(report.recovery_subrounds, 1);
    assert!(
        report.deduped_frames >= 1,
        "the duplicated frame must be recognized and deduped"
    );
    let reference = reference_over(
        &fx,
        &[
            (plan.shares[0].start_row, plan.shares[0].rows),
            (plan.shares[2].start_row, plan.shares[2].rows),
        ],
    );
    assert_eq!(model, reference);
    assert_eq!(
        session.spent_for("t"),
        (0.8, 0.0),
        "exactly one debit, duplicates free"
    );
}

/// Below quorum the round refuses with the typed [`FederatedError::Quorum`]
/// — survivors counted, threshold named, nothing debited, no hang.
#[test]
fn below_quorum_refuses_with_typed_error_and_no_debit() {
    let fx = fixture();
    let coordinator = Coordinator::with_chunk_rows(&fx.estimator, NoiseMode::Central, CHUNK_ROWS)
        .with_round(ROUND);
    let policy = QuorumPolicy::new(2, Duration::from_millis(20)).with_retry(instant_retry());

    // Clients 1 and 2 vanish before uploading.
    let (mut coord_ends, _kept) = faulted_round(&fx.payloads, &[None, None, None], &[1, 2], &[0]);
    let session = SharedPrivacySession::new();
    let mut rng = StdRng::seed_from_u64(SEED);
    let err = coordinator
        .run_round_with_quorum(&mut coord_ends, &policy, &session, "t", &mut rng)
        .unwrap_err();
    assert!(
        matches!(
            err,
            FederatedError::Quorum {
                survivors: 1,
                min_clients: 2,
            }
        ),
        "{err}"
    );
    assert_eq!(
        session.spent_epsilon(),
        0.0,
        "a refused round costs nothing"
    );
}
