//! Integration suite for the generic estimator API: the unified `Model`
//! trait, generic persistence round-trips, the dyn-compatible
//! `DpEstimator` surface, and `PrivacySession` budget accounting over a
//! full cross-validation experiment.

use functional_mechanism::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// All three model kinds, fitted for real, survive a text round-trip
/// through the *generic* `Model`/`PersistableModel` path bit-exactly.
#[test]
fn saved_model_roundtrips_all_kinds_through_the_model_trait() {
    let mut r = rng(11);

    let linear = {
        let data = fm_data::synth::linear_dataset(&mut r, 4_000, 3, 0.1);
        DpLinearRegression::builder()
            .epsilon(0.8)
            .fit_intercept(true)
            .build()
            .fit(&data, &mut r)
            .expect("linear fit")
    };
    let logistic = {
        let data = fm_data::synth::logistic_dataset(&mut r, 4_000, 3, 8.0);
        DpLogisticRegression::builder()
            .epsilon(0.8)
            .build()
            .fit(&data, &mut r)
            .expect("logistic fit")
    };
    let poisson = {
        let data = fm_data::synth::poisson_dataset(&mut r, 4_000, 3, 8.0);
        DpPoissonRegression::builder()
            .epsilon(0.8)
            .build()
            .fit(&data, &mut r)
            .expect("poisson fit")
    };

    // The generic capture path accepts any `&dyn Model` …
    let models: Vec<&dyn Model> = vec![&linear, &logistic, &poisson];
    let kinds = [ModelKind::Linear, ModelKind::Logistic, ModelKind::Poisson];
    for (m, want) in models.iter().zip(kinds) {
        assert_eq!(m.kind(), want);
        assert_eq!(m.epsilon(), Some(0.8));
        let saved = SavedModel::from_model(*m);
        let text = saved.to_text().expect("serialise");
        let back = SavedModel::from_text(&text).expect("parse");
        assert_eq!(back.kind, want);
        assert_eq!(back.weights, m.weights());
        assert_eq!(back.intercept, m.intercept());
        assert_eq!(back.epsilon, m.epsilon());
    }

    // … and the typed restore path is bit-exact per family.
    let text = SavedModel::from(&linear).to_text().unwrap();
    let lin_back: LinearModel = SavedModel::from_text(&text).unwrap().into_model().unwrap();
    assert_eq!(lin_back, linear);

    let text = SavedModel::from(&logistic).to_text().unwrap();
    let log_back: LogisticModel = SavedModel::from_text(&text).unwrap().into_model().unwrap();
    assert_eq!(log_back, logistic);

    let text = SavedModel::from(&poisson).to_text().unwrap();
    let poi_back: PoissonModel = SavedModel::from_text(&text).unwrap().into_model().unwrap();
    assert_eq!(poi_back, poisson);

    // Kind mismatches are rejected by the generic path too.
    let text = SavedModel::from(&linear).to_text().unwrap();
    let saved = SavedModel::from_text(&text).unwrap();
    assert!(saved.clone().into_model::<LogisticModel>().is_err());
    assert!(saved.into_model::<PoissonModel>().is_err());
}

/// The session's total spent ε across a K-fold run equals the sum of the
/// per-fit ε, and a fit that would overdraw the cap errors out.
#[test]
fn privacy_session_ledger_composes_kfold_and_blocks_overdraft() {
    let mut r = rng(23);
    let data = fm_data::synth::linear_dataset(&mut r, 5_000, 3, 0.1);
    let per_fit = 0.4;
    let k = 5;
    let estimator = DpLinearRegression::builder().epsilon(per_fit).build();

    // Cap exactly at k·ε: the K-fold run must fit, and nothing more.
    let mut session = PrivacySession::with_budget(per_fit * k as f64).expect("budget");
    let scores = session
        .cross_validate(&estimator, &data, k, &mut r, |m, test| {
            metrics::mse(&m.predict_batch(test.x()), test.y())
        })
        .expect("cv within budget");
    assert_eq!(scores.len(), k);
    assert_eq!(session.num_fits(), k);
    // Σ per-fit ε, exactly.
    let ledger_sum: f64 = session.ledger().entries().iter().map(|e| e.epsilon).sum();
    assert!((session.spent_epsilon() - per_fit * k as f64).abs() < 1e-12);
    assert!((ledger_sum - session.spent_epsilon()).abs() < 1e-15);
    assert!(session.remaining_epsilon().unwrap() < 1e-9);

    // The next fit would overdraw: refused before running, not recorded.
    let err = session.fit(&estimator, &data, &mut r).unwrap_err();
    assert!(matches!(err, FmError::Privacy(_)), "{err}");
    assert_eq!(session.num_fits(), k);

    // Non-private baselines still run — for free.
    let ceiling = session
        .fit(&LinearRegression::new(), &data, &mut r)
        .expect("NoPrivacy is not budgeted");
    assert_eq!(ceiling.epsilon(), None);
    assert_eq!(session.num_fits(), k);
}

/// One generic CV loop drives the private estimator and a baseline through
/// `dyn DpEstimator`, with the session reporting the composed (ε, δ).
#[test]
fn generic_cv_over_dyn_estimators_with_composed_epsilon() {
    let mut r = rng(37);
    let data = fm_data::synth::linear_dataset(&mut r, 4_000, 2, 0.1);
    let lineup: Vec<(&str, Box<dyn DpEstimator<Model = LinearModel>>)> = vec![
        ("NoPrivacy", Box::new(LinearRegression::new())),
        (
            "FM",
            Box::new(DpLinearRegression::builder().epsilon(0.5).build()),
        ),
        ("DPME", Box::new(DpmeLinear(Dpme::new(0.5).unwrap()))),
    ];

    let mut session = PrivacySession::new();
    for (name, est) in &lineup {
        let scores = session
            .cross_validate(est.as_ref(), &data, 4, &mut r, |m, test| {
                metrics::mse(&m.predict_batch(test.x()), test.y())
            })
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(scores.len(), 4, "{name}");
        assert!(scores.iter().all(|s| s.is_finite()), "{name}");
    }

    // Two private methods × 4 folds × ε = 0.5 ⇒ basic composition (4.0, 0).
    let report = session.report(1e-6).expect("report");
    assert_eq!(report.fits, 8);
    assert!((report.basic.0 - 4.0).abs() < 1e-12);
    assert_eq!(report.basic.1, 0.0);
    assert!(report.best.0 <= report.basic.0 + 1e-12);
}

/// The Gaussian (ε, δ) variant's δ flows through the estimator metadata
/// into the session ledger.
#[test]
fn session_records_delta_of_gaussian_fits() {
    let mut r = rng(41);
    let data = fm_data::synth::linear_dataset(&mut r, 4_000, 4, 0.1);
    let est = DpLinearRegression::builder()
        .epsilon(0.5)
        .noise(NoiseDistribution::Gaussian { delta: 1e-7 })
        .build();
    assert_eq!(DpEstimator::delta(&est), Some(1e-7));
    let mut session = PrivacySession::new();
    for _ in 0..3 {
        session.fit(&est, &data, &mut r).expect("gaussian fit");
    }
    assert!((session.spent_epsilon() - 1.5).abs() < 1e-12);
    assert!((session.spent_delta() - 3e-7).abs() < 1e-18);
}

/// The builder shims and the direct `FmEstimator` construction are the
/// same estimator: identical seeds produce identical models.
#[test]
fn builder_shim_equals_direct_fm_estimator() {
    use functional_mechanism::core::linreg::LinearObjective;

    let mut r = rng(53);
    let data = fm_data::synth::linear_dataset(&mut r, 3_000, 3, 0.1);
    let config = FitConfig::new().epsilon(0.7).fit_intercept(true);

    let via_builder = DpLinearRegression::builder()
        .config(config)
        .build()
        .fit(&data, &mut rng(99))
        .unwrap();
    let direct = FmEstimator::new(LinearObjective, config)
        .fit(&data, &mut rng(99))
        .unwrap();
    assert_eq!(via_builder, direct);
}
