//! Federated fitting ≡ single-machine fitting: the integration suite for
//! `fm-federated`'s tentpole guarantees.
//!
//! * a K-client **central-noise** round over real byte-stream transports
//!   (a Unix socket pair per client, clients on their own threads)
//!   releases a model **bit-identical** to `fit` over the concatenated
//!   rows at the same seed — including under the intercept augmentation
//!   and a non-default chunk grid;
//! * each client's ε is debited **exactly once** through a
//!   parallel-composition scope (the tenant pays the max, not the sum),
//!   over-cap rounds are refused before any release, and duplicate
//!   client labels are refused before any debit;
//! * corrupted, truncated, version-skewed and wrong-mode payloads are
//!   refused with typed errors — and the `fm-accum v2` codec round-trips
//!   real accumulator state bit-exactly for arbitrary shard geometry
//!   (property-tested), with **every** strict byte-prefix of a payload
//!   refused, never accepted and never a panic;
//! * dropout under a [`QuorumPolicy`] **salvages** the round: the
//!   survivors' grid is re-planned, the salvaged release is bit-identical
//!   to a fresh fit over the survivors' pooled rows at the same seed
//!   (property-tested over arbitrary dropout geometry), exactly the
//!   survivors are debited — and the same dropout *without* a policy
//!   still refuses cleanly, debit-free.

use std::os::unix::net::UnixStream;
use std::time::Duration;

use functional_mechanism::core::estimator::{FitConfig, FmEstimator};
use functional_mechanism::core::linreg::{DpLinearRegression, LinearObjective};
use functional_mechanism::core::session::SharedPrivacySession;
use functional_mechanism::data::stream::InMemorySource;
use functional_mechanism::data::{synth, Dataset};
use functional_mechanism::federated::{
    AccumUpload, Coordinator, FederatedClient, FederatedError, InMemoryTransport, NoiseMode,
    QuorumPolicy, RetryPolicy, Transport,
};
use functional_mechanism::linalg::Matrix;
use functional_mechanism::privacy::wal::checksum64;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The contiguous row range `[start, start + rows)` of `data` as its own
/// dataset — one client's local shard.
fn slice_dataset(data: &Dataset, start: usize, rows: usize) -> Dataset {
    let d = data.x().cols();
    let mut xs = Vec::with_capacity(rows * d);
    for r in start..start + rows {
        xs.extend_from_slice(data.x().row(r));
    }
    let ys = data.y()[start..start + rows].to_vec();
    Dataset::new(Matrix::from_vec(rows, d, xs).unwrap(), ys).unwrap()
}

/// A central round: K clients on their own threads, each streaming its
/// share into an upload and sending it over a real byte-stream transport
/// (one Unix socket pair per client). The released model must be
/// bit-identical to a single-machine `fit` at the same seed, and the
/// tenant must be debited the parallel composition (max ε) exactly once.
#[test]
fn central_round_over_unix_sockets_matches_single_machine_fit() {
    let rows = 5 * 4096 + 100;
    let data = {
        let mut rng = StdRng::seed_from_u64(11);
        synth::linear_dataset(&mut rng, rows, 3, 0.1)
    };
    let estimator = DpLinearRegression::builder().epsilon(0.9).build();
    let coordinator = Coordinator::new(&estimator, NoiseMode::Central);
    let plan = coordinator.plan(rows, 3).unwrap();

    let mut coord_ends = Vec::new();
    let mut client_ends = Vec::new();
    for _ in 0..3 {
        let (a, b) = UnixStream::pair().unwrap();
        coord_ends.push(functional_mechanism::federated::StreamTransport::new(
            a.try_clone().unwrap(),
            a,
        ));
        client_ends.push(Some(functional_mechanism::federated::StreamTransport::new(
            b.try_clone().unwrap(),
            b,
        )));
    }

    let session = SharedPrivacySession::new();
    let released = std::thread::scope(|scope| {
        for (i, (share, transport)) in plan.shares.iter().zip(client_ends.iter_mut()).enumerate() {
            let shard = slice_dataset(&data, share.start_row, share.rows);
            let estimator = &estimator;
            let mut transport = transport.take().unwrap();
            scope.spawn(move || {
                let client = FederatedClient::new(estimator, format!("hospital-{i}"));
                let upload = client
                    .contribute_clean(&mut InMemorySource::new(&shard), share)
                    .unwrap();
                client.upload(&mut transport, &upload).unwrap();
            });
        }
        let mut rng = StdRng::seed_from_u64(424_242);
        coordinator
            .run_round(&mut coord_ends, &session, "study", &mut rng)
            .unwrap()
    });

    let mut rng = StdRng::seed_from_u64(424_242);
    let reference = estimator.fit(&data, &mut rng).unwrap();
    assert_eq!(
        released, reference,
        "central round must replay fit() bit for bit"
    );

    // Three disjoint clients at ε = 0.9 compose in parallel: the tenant
    // pays 0.9 once, not 2.7.
    assert_eq!(session.spent_for("study"), (0.9, 0.0));
    assert_eq!(session.spent_epsilon(), 0.9);
}

/// The same bit-identity under the intercept augmentation and a
/// non-default chunk grid, against the two-phase `partial_fit` protocol
/// at the same chunk size.
#[test]
fn intercept_round_on_custom_grid_matches_partial_fit() {
    let rows = 199; // 24 chunks of 8 + a 7-row ragged tail
    let data = {
        let mut rng = StdRng::seed_from_u64(23);
        synth::linear_dataset(&mut rng, rows, 4, 0.1)
    };
    let estimator = FmEstimator::new(
        LinearObjective,
        FitConfig::new().epsilon(1.1).fit_intercept(true),
    );
    let coordinator = Coordinator::with_chunk_rows(&estimator, NoiseMode::Central, 8);
    let plan = coordinator.plan(rows, 3).unwrap();

    let mut coord_ends = Vec::new();
    for (i, share) in plan.shares.iter().enumerate() {
        let client = FederatedClient::with_chunk_rows(&estimator, format!("site-{i}"), 8);
        let shard = slice_dataset(&data, share.start_row, share.rows);
        let upload = client
            .contribute_clean(&mut InMemorySource::new(&shard), share)
            .unwrap();
        let (mut tx, rx) = InMemoryTransport::pair();
        client.upload(&mut tx, &upload).unwrap();
        coord_ends.push(rx);
    }
    let session = SharedPrivacySession::new();
    let mut rng = StdRng::seed_from_u64(77);
    let released = coordinator
        .run_round(&mut coord_ends, &session, "grid", &mut rng)
        .unwrap();

    let mut direct = estimator.partial_fit().chunk_rows(8);
    direct.absorb(&mut InMemorySource::new(&data)).unwrap();
    let mut rng = StdRng::seed_from_u64(77);
    let reference = direct.finalize(&mut rng).unwrap();
    assert_eq!(released, reference);
}

/// Budget arithmetic across rounds: a capped session admits the first
/// round (debiting max ε across clients), refuses the round that would
/// overdraw, and refuses duplicate client labels before any debit.
#[test]
fn budget_caps_and_duplicate_labels_are_enforced() {
    let rows = 64;
    let data = {
        let mut rng = StdRng::seed_from_u64(5);
        synth::linear_dataset(&mut rng, rows, 2, 0.1)
    };
    let estimator = DpLinearRegression::builder().epsilon(1.0).build();
    let coordinator = Coordinator::with_chunk_rows(&estimator, NoiseMode::Central, 8);
    let plan = coordinator.plan(rows, 2).unwrap();
    let uploads = |names: [&str; 2]| -> Vec<AccumUpload> {
        plan.shares
            .iter()
            .zip(names)
            .map(|(share, name)| {
                let shard = slice_dataset(&data, share.start_row, share.rows);
                FederatedClient::with_chunk_rows(&estimator, name, 8)
                    .contribute_clean(&mut InMemorySource::new(&shard), share)
                    .unwrap()
            })
            .collect()
    };

    let session = SharedPrivacySession::with_cap(1.5).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    coordinator
        .release(uploads(["a", "b"]), &session, "t", &mut rng)
        .unwrap();
    assert_eq!(
        session.spent_epsilon(),
        1.0,
        "two disjoint clients pay max ε once"
    );

    // A duplicate label is a protocol violation, caught before the debit.
    let err = coordinator
        .release(uploads(["a", "a"]), &session, "t", &mut rng)
        .unwrap_err();
    assert!(matches!(err, FederatedError::Protocol { .. }), "{err}");
    assert_eq!(
        session.spent_epsilon(),
        1.0,
        "a malformed round costs nothing"
    );

    // A well-formed second round would need another 1.0 over a 1.5 cap.
    let err = coordinator
        .release(uploads(["a", "b"]), &session, "t", &mut rng)
        .unwrap_err();
    assert!(matches!(err, FederatedError::Fm(_)), "{err}");
    assert_eq!(
        session.spent_epsilon(),
        1.0,
        "a refused round costs nothing"
    );
}

/// Hostile payloads are refused with typed errors: corruption, torn
/// tails, version skew, non-UTF-8 frames (all `Wire`), and a wrong-mode
/// upload (`Protocol`) — none of them cost budget.
#[test]
fn hostile_payloads_are_refused_with_typed_errors() {
    let rows = 48;
    let data = {
        let mut rng = StdRng::seed_from_u64(9);
        synth::linear_dataset(&mut rng, rows, 2, 0.1)
    };
    let estimator = DpLinearRegression::builder().epsilon(0.5).build();
    let coordinator = Coordinator::with_chunk_rows(&estimator, NoiseMode::Central, 8);
    let plan = coordinator.plan(rows, 1).unwrap();
    let client = FederatedClient::with_chunk_rows(&estimator, "c", 8);
    let good = client
        .contribute_clean(&mut InMemorySource::new(&data), &plan.shares[0])
        .unwrap()
        .encode();

    let expect_wire = |bytes: Vec<u8>| {
        let (mut tx, mut rx) = InMemoryTransport::pair();
        tx.send(&bytes).unwrap();
        let err = coordinator
            .collect(std::slice::from_mut(&mut rx))
            .unwrap_err();
        assert!(matches!(err, FederatedError::Wire { .. }), "{err}");
    };

    // Mid-payload corruption: flip one byte; the checksum refuses it.
    let mut flipped = good.clone().into_bytes();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x01;
    expect_wire(flipped);

    // Truncation: a torn tail (here 60%) never decodes.
    expect_wire(good.as_bytes()[..good.len() * 6 / 10].to_vec());

    // Version skew: a well-checksummed v3 payload is refused up front.
    let (body, _) = good.rsplit_once("checksum ").unwrap();
    let skewed_body = body.replacen("fm-accum v2", "fm-accum v3", 1);
    let skewed = format!(
        "{skewed_body}checksum {:016x}\n",
        checksum64(skewed_body.as_bytes())
    );
    expect_wire(skewed.into_bytes());

    // Frames must be UTF-8 text.
    expect_wire(vec![0xFF, 0xFE, 0x00]);

    // A noisy payload in a central round decodes fine but violates the
    // round's protocol.
    let mut rng = StdRng::seed_from_u64(3);
    let noisy = client
        .contribute_noisy(&mut InMemorySource::new(&data), &mut rng)
        .unwrap();
    let session = SharedPrivacySession::new();
    let err = coordinator
        .release(vec![noisy], &session, "t", &mut rng)
        .unwrap_err();
    assert!(matches!(err, FederatedError::Protocol { .. }), "{err}");
    assert_eq!(session.spent_epsilon(), 0.0, "refused rounds cost nothing");
}

/// The row ranges `ranges` of `data`, concatenated in order, as one
/// dataset — the survivors' pooled rows after a dropout.
fn concat_slices(data: &Dataset, ranges: &[(usize, usize)]) -> Dataset {
    let d = data.x().cols();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &(start, rows) in ranges {
        for r in start..start + rows {
            xs.extend_from_slice(data.x().row(r));
        }
        ys.extend_from_slice(&data.y()[start..start + rows]);
    }
    let rows = ys.len();
    Dataset::new(Matrix::from_vec(rows, d, xs).unwrap(), ys).unwrap()
}

/// The tentpole dropout guarantee, scripted: a 3-client round in which
/// the middle client vanishes before uploading. Under a
/// [`QuorumPolicy`] the coordinator drops it, re-plans its grid range
/// onto the survivors (one recovery sub-round: the third client
/// re-contributes its own rows at the closed-up chunk position), and the
/// salvaged release is **bit-identical** to a fresh fit over the two
/// survivors' pooled rows at the same seed. Exactly the survivors are
/// debited — the dropped client's label never reaches the ledger.
#[test]
fn dropout_salvage_is_bit_identical_and_debits_only_survivors() {
    let rows = 199; // 24 chunks of 8 + a 7-row ragged tail, split 3 ways
    let data = {
        let mut rng = StdRng::seed_from_u64(41);
        synth::linear_dataset(&mut rng, rows, 3, 0.1)
    };
    let estimator = DpLinearRegression::builder().epsilon(0.9).build();
    let coordinator = Coordinator::with_chunk_rows(&estimator, NoiseMode::Central, 8).with_round(7);
    let plan = coordinator.plan(rows, 3).unwrap();

    let mut coord_ends = Vec::new();
    let mut client_ends = Vec::new();
    for _ in 0..3 {
        let (a, b) = InMemoryTransport::pair();
        coord_ends.push(a);
        client_ends.push(Some(b));
    }
    // Client 1 is gone before it ever uploads.
    client_ends[1] = None;

    let session = SharedPrivacySession::new();
    let policy = QuorumPolicy::new(2, Duration::from_secs(5));
    let ((released, report), reassignments) = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for i in [0usize, 2] {
            let share = plan.shares[i];
            let shard = slice_dataset(&data, share.start_row, share.rows);
            let estimator = &estimator;
            let mut transport = client_ends[i].take().unwrap();
            handles.push((
                i,
                scope.spawn(move || {
                    let client =
                        FederatedClient::with_chunk_rows(estimator, format!("site-{i}"), 8)
                            .with_round(7);
                    client.participate(
                        &mut transport,
                        &share,
                        || InMemorySource::new(&shard),
                        &RetryPolicy::default(),
                    )
                }),
            ));
        }
        let mut rng = StdRng::seed_from_u64(4242);
        let out = coordinator
            .run_round_with_quorum(&mut coord_ends, &policy, &session, "study", &mut rng)
            .unwrap();
        let reassignments: Vec<(usize, usize)> = handles
            .into_iter()
            .map(|(i, h)| (i, h.join().unwrap().unwrap()))
            .collect();
        (out, reassignments)
    });

    // Client 0's grid position never moved; client 2 re-contributed once
    // to close the hole.
    assert_eq!(reassignments, vec![(0, 0), (2, 1)]);
    assert_eq!(report.survivors, vec!["site-0", "site-2"]);
    assert_eq!(report.dropped, vec![1]);
    assert_eq!(report.recovery_subrounds, 1);
    assert_eq!(report.deduped_frames, 0);

    // Bit-identity: the salvaged model equals a streaming fit over the
    // survivors' pooled rows on the same chunk grid at the same seed.
    let survivors = concat_slices(
        &data,
        &[
            (plan.shares[0].start_row, plan.shares[0].rows),
            (plan.shares[2].start_row, plan.shares[2].rows),
        ],
    );
    let mut direct = estimator.partial_fit().chunk_rows(8);
    direct.absorb(&mut InMemorySource::new(&survivors)).unwrap();
    let mut rng = StdRng::seed_from_u64(4242);
    let reference = direct.finalize(&mut rng).unwrap();
    assert_eq!(
        released, reference,
        "salvage must replay a fresh survivor round bit for bit"
    );

    // One parallel debit over the survivors — the dropped client costs
    // nothing and the tenant pays max ε once.
    assert_eq!(session.spent_for("study"), (0.9, 0.0));
    assert_eq!(session.spent_epsilon(), 0.9);
}

/// The same dropout **without** a quorum policy refuses the whole round
/// with a typed error and debits nothing — all-or-nothing stays the
/// default contract.
#[test]
fn dropout_without_quorum_policy_refuses_cleanly() {
    let rows = 199;
    let data = {
        let mut rng = StdRng::seed_from_u64(41);
        synth::linear_dataset(&mut rng, rows, 3, 0.1)
    };
    let estimator = DpLinearRegression::builder().epsilon(0.9).build();
    let coordinator = Coordinator::with_chunk_rows(&estimator, NoiseMode::Central, 8);
    let plan = coordinator.plan(rows, 3).unwrap();

    let mut coord_ends = Vec::new();
    for (i, share) in plan.shares.iter().enumerate() {
        let (mut tx, rx) = InMemoryTransport::pair();
        if i != 1 {
            let client = FederatedClient::with_chunk_rows(&estimator, format!("site-{i}"), 8);
            let shard = slice_dataset(&data, share.start_row, share.rows);
            let upload = client
                .contribute_clean(&mut InMemorySource::new(&shard), share)
                .unwrap();
            client.upload(&mut tx, &upload).unwrap();
        }
        // Client 1 hangs up without uploading.
        drop(tx);
        coord_ends.push(rx);
    }

    let session = SharedPrivacySession::new();
    let mut rng = StdRng::seed_from_u64(4242);
    let err = coordinator
        .run_round(&mut coord_ends, &session, "study", &mut rng)
        .unwrap_err();
    assert!(
        matches!(err, FederatedError::Disconnected { op: "recv" }),
        "{err}"
    );
    assert_eq!(
        session.spent_epsilon(),
        0.0,
        "a refused round costs nothing"
    );
}

/// A local-noise round: every client perturbs before upload, the
/// coordinator post-processes to a finite model, and the tenant's debit
/// is identical to the central round's (same ε, same parallel scope).
#[test]
fn local_noise_round_releases_finite_model_with_same_debit() {
    let rows = 600;
    let data = {
        let mut rng = StdRng::seed_from_u64(31);
        synth::linear_dataset(&mut rng, rows, 3, 0.1)
    };
    let estimator = DpLinearRegression::builder().epsilon(2.0).build();
    let coordinator = Coordinator::new(&estimator, NoiseMode::Local);

    let mut coord_ends = Vec::new();
    for (i, (start, share_rows)) in [(0, rows / 2), (rows / 2, rows - rows / 2)]
        .into_iter()
        .enumerate()
    {
        let client = FederatedClient::new(&estimator, format!("phone-{i}"));
        // Local mode never needs the chunk grid — the whole shard is one
        // noisy contribution, so any row split works.
        let shard = slice_dataset(&data, start, share_rows);
        let mut rng = StdRng::seed_from_u64(100 + i as u64);
        let upload = client
            .contribute_noisy(&mut InMemorySource::new(&shard), &mut rng)
            .unwrap();
        let (mut tx, rx) = InMemoryTransport::pair();
        client.upload(&mut tx, &upload).unwrap();
        coord_ends.push(rx);
    }
    let session = SharedPrivacySession::new();
    let mut rng = StdRng::seed_from_u64(1);
    let model = coordinator
        .run_round(&mut coord_ends, &session, "fleet", &mut rng)
        .unwrap();
    assert!(model.weights().iter().all(|w| w.is_finite()));
    assert_eq!(session.spent_for("fleet"), (2.0, 0.0));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The codec round-trips real accumulator state bit-exactly for
    /// arbitrary shard geometry: decode(encode(u)) re-encodes to the
    /// identical byte string, for every client of a random plan.
    #[test]
    fn wire_round_trip_is_bit_identical(
        rows in 1usize..400,
        d in 1usize..5,
        clients in 1usize..4,
        chunk_rows in 1usize..12,
        seed in 0u64..1_000,
    ) {
        let data = {
            let mut rng = StdRng::seed_from_u64(seed);
            synth::linear_dataset(&mut rng, rows, d, 0.1)
        };
        let estimator = DpLinearRegression::builder().epsilon(1.0).build();
        let coordinator =
            Coordinator::with_chunk_rows(&estimator, NoiseMode::Central, chunk_rows);
        let plan = coordinator.plan(rows, clients).unwrap();
        for (i, share) in plan.shares.iter().enumerate() {
            let shard = slice_dataset(&data, share.start_row, share.rows);
            let upload = FederatedClient::with_chunk_rows(&estimator, format!("p{i}"), chunk_rows)
                .contribute_clean(&mut InMemorySource::new(&shard), share)
                .unwrap();
            let text = upload.encode();
            let decoded: AccumUpload = AccumUpload::decode(&text).unwrap();
            prop_assert_eq!(decoded.encode(), text);
        }
    }

    /// Salvage ≡ fresh round, over **arbitrary dropout geometry**: for a
    /// random plan and a random subset of vanished clients, the quorum
    /// round's release is bit-identical to a streaming fit over the
    /// survivors' pooled rows at the same seed, the report names exactly
    /// the dropped transports, and the ledger debits exactly one
    /// parallel composition over the survivors.
    #[test]
    fn dropout_salvage_matches_survivor_fit(
        rows in 16usize..220,
        d in 1usize..4,
        clients in 2usize..5,
        chunk_rows in 2usize..10,
        drop_mask in 0u16..16,
        seed in 0u64..1_000,
    ) {
        let mask = drop_mask & ((1u16 << clients) - 1);
        let dropped_idx: Vec<usize> =
            (0..clients).filter(|i| mask >> i & 1 == 1).collect();
        let survivor_idx: Vec<usize> =
            (0..clients).filter(|i| mask >> i & 1 == 0).collect();
        prop_assume!(!survivor_idx.is_empty());
        let data = {
            let mut rng = StdRng::seed_from_u64(seed);
            synth::linear_dataset(&mut rng, rows, d, 0.1)
        };
        let estimator = DpLinearRegression::builder().epsilon(1.0).build();
        let coordinator =
            Coordinator::with_chunk_rows(&estimator, NoiseMode::Central, chunk_rows)
                .with_round(3);
        let plan = coordinator.plan(rows, clients).unwrap();
        let pooled: Vec<(usize, usize)> = survivor_idx
            .iter()
            .map(|&i| (plan.shares[i].start_row, plan.shares[i].rows))
            .collect();
        prop_assume!(pooled.iter().map(|&(_, r)| r).sum::<usize>() > 0);

        let mut coord_ends = Vec::new();
        let mut client_ends = Vec::new();
        for i in 0..clients {
            let (a, b) = InMemoryTransport::pair();
            coord_ends.push(a);
            // Dropped clients hang up before uploading anything.
            client_ends.push((mask >> i & 1 == 0).then_some(b));
        }

        let session = SharedPrivacySession::new();
        let policy = QuorumPolicy::new(1, Duration::from_secs(5));
        let (released, report) = std::thread::scope(|scope| {
            for &i in &survivor_idx {
                let share = plan.shares[i];
                let shard = slice_dataset(&data, share.start_row, share.rows);
                let estimator = &estimator;
                let mut transport = client_ends[i].take().unwrap();
                scope.spawn(move || {
                    let client =
                        FederatedClient::with_chunk_rows(estimator, format!("c{i}"), chunk_rows)
                            .with_round(3);
                    client
                        .participate(
                            &mut transport,
                            &share,
                            || InMemorySource::new(&shard),
                            &RetryPolicy::default(),
                        )
                        .unwrap();
                });
            }
            let mut rng = StdRng::seed_from_u64(9_000 + seed);
            coordinator
                .run_round_with_quorum(&mut coord_ends, &policy, &session, "t", &mut rng)
                .unwrap()
        });

        prop_assert_eq!(report.dropped, dropped_idx);
        let labels: Vec<String> = survivor_idx.iter().map(|i| format!("c{i}")).collect();
        prop_assert_eq!(report.survivors, labels);
        prop_assert_eq!(session.spent_for("t"), (1.0, 0.0));

        let survivors = concat_slices(&data, &pooled);
        let mut direct = estimator.partial_fit().chunk_rows(chunk_rows);
        direct.absorb(&mut InMemorySource::new(&survivors)).unwrap();
        let mut rng = StdRng::seed_from_u64(9_000 + seed);
        let reference = direct.finalize(&mut rng).unwrap();
        prop_assert_eq!(released, reference);
    }

    /// Crash-sweep: every strict byte prefix of a valid payload is
    /// refused — a torn upload can never decode, and never panics.
    #[test]
    fn every_byte_prefix_of_a_payload_is_refused(
        rows in 1usize..40,
        d in 1usize..4,
        seed in 0u64..1_000,
    ) {
        let data = {
            let mut rng = StdRng::seed_from_u64(seed);
            synth::linear_dataset(&mut rng, rows, d, 0.1)
        };
        let estimator = DpLinearRegression::builder().epsilon(1.0).build();
        let plan = Coordinator::with_chunk_rows(&estimator, NoiseMode::Central, 8)
            .plan(rows, 1)
            .unwrap();
        let text = FederatedClient::with_chunk_rows(&estimator, "p", 8)
            .contribute_clean(&mut InMemorySource::new(&data), &plan.shares[0])
            .unwrap()
            .encode();
        for cut in 0..text.len() {
            let prefix = &text[..cut];
            prop_assert!(
                AccumUpload::<functional_mechanism::poly::QuadraticForm>::decode(prefix).is_err(),
                "prefix of {cut}/{} bytes decoded",
                text.len()
            );
        }
    }
}
