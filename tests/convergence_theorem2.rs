//! Theorem 2 of the paper: as the database cardinality `n → ∞`, the output
//! of Algorithm 1 converges to the minimiser of the population objective.
//!
//! These tests verify the finite-sample signature of that theorem — the
//! parameter error of the private estimate decreases as `n` grows, with ε
//! and the data distribution held fixed — and its logistic counterpart's
//! caveat (Section 5.2: *no* such convergence to the exact MLE, because the
//! truncation gap persists).

use functional_mechanism::data::synth;
use functional_mechanism::linalg::vecops;
use functional_mechanism::prelude::*;
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

/// Mean parameter distance of FM's linear output to the ground truth at a
/// given `n`, over `reps` mechanism draws (fresh data each rep).
fn linear_error_at(n: usize, reps: usize, seed: u64) -> f64 {
    let mut r = rng(seed);
    let w = vec![0.35, -0.25, 0.15];
    let mut total = 0.0;
    for _ in 0..reps {
        let data = synth::linear_dataset_with_weights(&mut r, n, &w, 0.05);
        let model = DpLinearRegression::builder()
            .epsilon(0.8)
            .build()
            .fit(&data, &mut r)
            .unwrap();
        total += vecops::dist2(model.weights(), &w);
    }
    total / reps as f64
}

#[test]
fn linear_error_shrinks_with_cardinality() {
    // n multiplied by 16 twice; error must drop monotonically (averaged
    // over draws). Theorem 2: the noise contribution scales as 1/n.
    let e_small = linear_error_at(1_000, 12, 100);
    let e_mid = linear_error_at(16_000, 12, 101);
    let e_large = linear_error_at(256_000, 6, 102);
    assert!(
        e_small > e_mid && e_mid > e_large,
        "errors not decreasing: {e_small} → {e_mid} → {e_large}"
    );
    // And at large n the private model is genuinely close to ω*.
    assert!(e_large < 0.05, "large-n error {e_large}");
}

#[test]
fn averaged_noisy_objective_converges_to_population_objective() {
    // Lemma 2 + Theorem 2's mechanism: (1/n)·f̄_D(ω) → g(ω) pointwise.
    // Empirically: evaluate the averaged noisy objective at a fixed probe ω
    // for growing n; the value must stabilise (variance across draws → 0).
    use functional_mechanism::core::linreg::LinearObjective;
    use functional_mechanism::core::FunctionalMechanism;

    let probe = [0.2, -0.1];
    let w = vec![0.3, -0.2];
    let eval_once = |n: usize, seed: u64| -> f64 {
        let mut r = rng(seed);
        let data = synth::linear_dataset_with_weights(&mut r, n, &w, 0.05);
        let fm = FunctionalMechanism::new(1.0).unwrap();
        let noisy = fm.perturb(&data, &LinearObjective, &mut r).unwrap();
        noisy.objective().eval(&probe) / n as f64
    };
    let spread = |n: usize| -> f64 {
        let vals: Vec<f64> = (0..8).map(|i| eval_once(n, 200 + i)).collect();
        let (_, std) = functional_mechanism::data::metrics::mean_and_std(&vals);
        std
    };
    let s_small = spread(500);
    let s_large = spread(50_000);
    assert!(
        s_large < s_small / 5.0,
        "averaged objective not concentrating: {s_small} vs {s_large}"
    );
}

#[test]
fn logistic_truncation_gap_does_not_vanish() {
    // Section 5.2: unlike the linear case, ω̂ (truncated optimum) does not
    // converge to ω̃ (exact MLE) as n grows — the gap stabilises at a
    // non-zero constant.
    let mut r = rng(300);
    let w = vec![0.5, -0.4];
    let gap_at = |n: usize, r: &mut rand::rngs::StdRng| -> f64 {
        let data = synth::logistic_dataset_with_weights(r, n, &w, 8.0);
        let trunc = TruncatedLogistic::new().fit(&data).unwrap();
        let exact = LogisticRegression::new().fit(&data).unwrap();
        vecops::dist2(trunc.weights(), exact.weights())
    };
    let g1 = gap_at(50_000, &mut r);
    let g2 = gap_at(200_000, &mut r);
    // The gap neither vanishes with n (no Theorem-2 analogue) nor drifts:
    // it stabilises at a data-distribution-dependent constant.
    assert!(g1 > 1e-2 && g2 > 1e-2, "gap vanished: {g1}, {g2}");
    assert!(
        (g1 - g2).abs() < 0.5 * g1.max(g2),
        "gap not stable: {g1} vs {g2}"
    );
    // But the *classification* penalty of the gap is tiny (Figures 4c–d).
    let data = synth::logistic_dataset_with_weights(&mut r, 50_000, &w, 8.0);
    let trunc = TruncatedLogistic::new().fit(&data).unwrap();
    let exact = LogisticRegression::new().fit(&data).unwrap();
    let err_t = functional_mechanism::data::metrics::misclassification_rate(
        &trunc.probabilities_batch(data.x()),
        data.y(),
    );
    let err_e = functional_mechanism::data::metrics::misclassification_rate(
        &exact.probabilities_batch(data.x()),
        data.y(),
    );
    assert!(
        (err_t - err_e).abs() < 0.01,
        "truncated {err_t} vs exact {err_e}"
    );
}

#[test]
fn logistic_private_error_still_shrinks_with_n() {
    // FM-logistic converges to the *truncated* optimum (noise → 0), so its
    // distance to the truncated solution must fall with n.
    let w = vec![0.4, 0.3];
    let dist_at = |n: usize, seed: u64| -> f64 {
        let mut r = rng(seed);
        let mut total = 0.0;
        let reps = 8;
        for _ in 0..reps {
            let data = synth::logistic_dataset_with_weights(&mut r, n, &w, 8.0);
            let trunc = TruncatedLogistic::new().fit(&data).unwrap();
            let private = DpLogisticRegression::builder()
                .epsilon(0.8)
                .build()
                .fit(&data, &mut r)
                .unwrap();
            total += vecops::dist2(private.weights(), trunc.weights());
        }
        total / reps as f64
    };
    let d_small = dist_at(2_000, 400);
    let d_large = dist_at(64_000, 401);
    assert!(
        d_large < d_small / 2.0,
        "private-to-truncated distance not shrinking: {d_small} → {d_large}"
    );
}

#[test]
fn poisson_private_error_shrinks_with_n() {
    // Theorem 2 for the §8 extension: FM-Poisson converges to the
    // truncated-objective optimum as the noise amortises over n.
    use functional_mechanism::core::poisson::DpPoissonRegression;
    let w = vec![0.4, -0.2];
    let dist_at = |n: usize, seed: u64| -> f64 {
        let mut r = rng(seed);
        let mut total = 0.0;
        let reps = 8;
        for _ in 0..reps {
            let data = synth::poisson_dataset_with_weights(&mut r, n, &w, 8.0);
            let trunc = DpPoissonRegression::builder()
                .build()
                .fit_truncated_without_privacy(&data)
                .unwrap();
            let private = DpPoissonRegression::builder()
                .epsilon(0.8)
                .build()
                .fit(&data, &mut r)
                .unwrap();
            total += vecops::dist2(private.weights(), trunc.weights());
        }
        total / reps as f64
    };
    let d_small = dist_at(2_000, 500);
    let d_large = dist_at(64_000, 501);
    assert!(
        d_large < d_small / 2.0,
        "Poisson private-to-truncated distance not shrinking: {d_small} → {d_large}"
    );
}
