//! Streaming ≡ in-memory: the property suite pinning the tentpole
//! guarantee of the ingestion redesign.
//!
//! For every supported family — linear, logistic, median, and the
//! general-degree sparse quartic — `fit_stream` over **any** chunking and
//! **any** shard split of a dataset must release coefficients
//! **bit-identical** to `fit` on the materialized `Dataset` under the same
//! seed, and the two-phase `partial_fit`/`finalize` protocol must match as
//! well. The streaming pipeline earns this by construction (fixed
//! re-chunking + a merge tree provably equal to the in-memory reduction);
//! this suite is the machine check that no refactor silently breaks it.

use functional_mechanism::core::assembly::{assemble_shards, CoefficientAccumulator};
use functional_mechanism::core::estimator::{DpEstimator, FitConfig, FmEstimator};
use functional_mechanism::core::generic::QuarticObjective;
use functional_mechanism::core::linreg::{DpLinearRegression, LinearObjective};
use functional_mechanism::core::logreg::DpLogisticRegression;
use functional_mechanism::core::robust::{DpMedianRegression, DpQuantileRegression};
use functional_mechanism::core::session::PrivacySession;
use functional_mechanism::core::sparse::SparseFmEstimator;
use functional_mechanism::core::Strategy;
use functional_mechanism::data::stream::{
    BlockVisitor, CsvStreamSource, InMemorySource, RowBlock, RowSource, ShardedSource,
};
use functional_mechanism::data::{synth, Dataset};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Forwards only `next_block`: the inner source's borrowed-block visitor
/// and dataset handoff are hidden, so consumers take the owned-block
/// fallback — the pre-zero-copy transport.
struct OwnedBlocks<S>(S);

impl<S: RowSource> RowSource for OwnedBlocks<S> {
    fn dim(&self) -> usize {
        self.0.dim()
    }
    fn next_block(
        &mut self,
        max_rows: usize,
    ) -> functional_mechanism::data::Result<Option<RowBlock>> {
        self.0.next_block(max_rows)
    }
}

/// Forwards the borrowed-block visitor but hides the dataset handoff:
/// the pure zero-copy streaming transport.
struct BorrowedBlocks<S>(S);

impl<S: RowSource> RowSource for BorrowedBlocks<S> {
    fn dim(&self) -> usize {
        self.0.dim()
    }
    fn next_block(
        &mut self,
        max_rows: usize,
    ) -> functional_mechanism::data::Result<Option<RowBlock>> {
        self.0.next_block(max_rows)
    }
    fn for_each_block(
        &mut self,
        max_rows: usize,
        f: &mut BlockVisitor<'_>,
    ) -> functional_mechanism::data::Result<()> {
        self.0.for_each_block(max_rows, f)
    }
}

/// A [`RowSource`] that yields a row range of a dataset in pseudo-random
/// jagged block sizes — the adversarial transport the equivalence claim
/// quantifies over.
struct JaggedSource<'a> {
    data: &'a Dataset,
    pos: usize,
    end: usize,
    state: u64,
}

impl<'a> JaggedSource<'a> {
    fn new(data: &'a Dataset, lo: usize, hi: usize, seed: u64) -> Self {
        JaggedSource {
            data,
            pos: lo,
            end: hi,
            state: seed | 1,
        }
    }
}

impl RowSource for JaggedSource<'_> {
    fn dim(&self) -> usize {
        self.data.d()
    }

    fn next_block(
        &mut self,
        max_rows: usize,
    ) -> functional_mechanism::data::Result<Option<RowBlock>> {
        if self.pos >= self.end {
            return Ok(None);
        }
        // xorshift: deliberately ignores the requested boundary except as
        // an upper bound, so blocks land wherever they land.
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        let cap = max_rows.max(1).min(self.end - self.pos);
        let take = 1 + (self.state as usize) % cap;
        let d = self.data.d();
        let hi = self.pos + take;
        let xs = self.data.x().as_slice()[self.pos * d..hi * d].to_vec();
        let ys = self.data.y()[self.pos..hi].to_vec();
        self.pos = hi;
        Ok(Some(RowBlock::new(xs, ys, d).expect("consistent shapes")))
    }
}

/// Splits `[0, n)` at the fractional cut points into at most 3 shards.
fn shard_bounds(n: usize, cuts: (f64, f64)) -> Vec<(usize, usize)> {
    let mut points = vec![
        0usize,
        ((n as f64) * cuts.0.min(cuts.1)) as usize,
        ((n as f64) * cuts.0.max(cuts.1)) as usize,
        n,
    ];
    points.dedup();
    points.windows(2).map(|w| (w[0], w[1])).collect()
}

/// Runs one family through all three entry points and asserts exact
/// agreement of the released models (or of the failure outcome — at these
/// sizes a hostile draw can legitimately leave no positive spectrum; the
/// deterministic pipelines must then fail *together*).
#[allow(clippy::type_complexity)]
fn assert_stream_matches_fit<M, E>(
    what: &str,
    data: &Dataset,
    seed: u64,
    cuts: (f64, f64),
    fit: impl Fn(&Dataset, &mut StdRng) -> Result<M, E>,
    fit_stream: impl Fn(&mut dyn RowSource, &mut StdRng) -> Result<M, E>,
    partial: Option<&dyn Fn(&mut [JaggedSource], &mut StdRng) -> Result<M, E>>,
) where
    M: PartialEq + std::fmt::Debug,
    E: std::fmt::Debug,
{
    let mut r1 = StdRng::seed_from_u64(seed);
    let in_memory = fit(data, &mut r1);

    // One sharded, jagged-blocked source over the same rows.
    let shards: Vec<JaggedSource> = shard_bounds(data.n(), cuts)
        .into_iter()
        .enumerate()
        .map(|(i, (lo, hi))| JaggedSource::new(data, lo, hi, seed ^ (i as u64 + 0x9E37)))
        .collect();
    let mut sharded = ShardedSource::new(shards).expect("non-empty, equal dims");
    let mut r2 = StdRng::seed_from_u64(seed);
    let streamed = fit_stream(&mut sharded, &mut r2);

    match (&in_memory, &streamed) {
        (Ok(a), Ok(b)) => assert_eq!(a, b, "{what}: fit_stream drifted from fit"),
        (Err(_), Err(_)) => {}
        other => panic!("{what}: outcome mismatch {other:?}"),
    }

    if let Some(partial_fit) = partial {
        let mut shards: Vec<JaggedSource> = shard_bounds(data.n(), cuts)
            .into_iter()
            .enumerate()
            .map(|(i, (lo, hi))| JaggedSource::new(data, lo, hi, seed ^ (i as u64 + 0x51DE)))
            .collect();
        let mut r3 = StdRng::seed_from_u64(seed);
        let sharded = partial_fit(&mut shards, &mut r3);
        match (&in_memory, &sharded) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "{what}: partial_fit drifted from fit"),
            (Err(_), Err(_)) => {}
            other => panic!("{what}: partial outcome mismatch {other:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Linear regression: `fit` ≡ `fit_stream` ≡ `partial_fit`+`finalize`
    /// over arbitrary chunking/shard splits, with and without intercept.
    #[test]
    fn linreg_streaming_equivalence(
        seed in 0u64..10_000,
        n in 1usize..400,
        d in 1usize..6,
        intercept in proptest::bool::ANY,
        cut_a in 0.0f64..1.0,
        cut_b in 0.0f64..1.0,
    ) {
        let mut r = StdRng::seed_from_u64(seed);
        let data = synth::linear_dataset(&mut r, n, d, 0.1);
        let est = FmEstimator::new(
            LinearObjective,
            FitConfig::new().epsilon(1.0).fit_intercept(intercept),
        );
        let partial = |shards: &mut [JaggedSource], rng: &mut StdRng| {
            let mut pf = est.partial_fit();
            for s in shards {
                pf.absorb(s)?;
            }
            pf.finalize(rng)
        };
        assert_stream_matches_fit(
            "linreg",
            &data,
            seed,
            (cut_a, cut_b),
            |data, rng| est.fit(data, rng),
            |src, rng| est.fit_stream(src, rng),
            Some(&partial),
        );
    }

    /// Logistic regression (Algorithm 2's Taylor surrogate) through the
    /// wrapper estimator.
    #[test]
    fn logistic_streaming_equivalence(
        seed in 0u64..10_000,
        n in 1usize..400,
        d in 1usize..6,
        cut_a in 0.0f64..1.0,
        cut_b in 0.0f64..1.0,
    ) {
        let mut r = StdRng::seed_from_u64(seed);
        let data = synth::logistic_dataset(&mut r, n, d, 4.0);
        let est = DpLogisticRegression::builder().epsilon(1.0).build();
        assert_stream_matches_fit(
            "logreg",
            &data,
            seed,
            (cut_a, cut_b),
            |data, rng| est.fit(data, rng),
            |src, rng| est.fit_stream(src, rng),
            None,
        );
    }

    /// Median and general-τ quantile regression (weighted Gram kernels).
    #[test]
    fn median_and_quantile_streaming_equivalence(
        seed in 0u64..10_000,
        n in 1usize..300,
        d in 1usize..5,
        tau_idx in 0usize..3,
        cut_a in 0.0f64..1.0,
        cut_b in 0.0f64..1.0,
    ) {
        let mut r = StdRng::seed_from_u64(seed);
        let data = synth::linear_dataset(&mut r, n, d, 0.1);
        let med = DpMedianRegression::builder().epsilon(1.0).build();
        assert_stream_matches_fit(
            "median",
            &data,
            seed,
            (cut_a, cut_b),
            |data, rng| med.fit(data, rng),
            |src, rng| med.fit_stream(src, rng),
            None,
        );
        let tau = [0.2, 0.5, 0.85][tau_idx];
        let quant = DpQuantileRegression::builder().epsilon(1.0).tau(tau).build();
        assert_stream_matches_fit(
            "quantile",
            &data,
            seed,
            (cut_a, cut_b),
            |data, rng| quant.fit(data, rng),
            |src, rng| quant.fit_stream(src, rng),
            None,
        );
    }

    /// The sparse general-degree path (quartic loss): polynomial
    /// accumulator + generic mechanism, including the two-phase protocol.
    #[test]
    fn sparse_quartic_streaming_equivalence(
        seed in 0u64..10_000,
        n in 1usize..200,
        d in 1usize..4,
        cut_a in 0.0f64..1.0,
        cut_b in 0.0f64..1.0,
    ) {
        let mut r = StdRng::seed_from_u64(seed);
        let data = synth::linear_dataset(&mut r, n, d, 0.05);
        let est = SparseFmEstimator::new(
            QuarticObjective,
            FitConfig::new()
                .epsilon(64.0)
                .strategy(Strategy::FailIfUnbounded),
        );
        let partial = |shards: &mut [JaggedSource], rng: &mut StdRng| {
            let mut pf = est.partial_fit()?;
            for s in shards {
                pf.absorb(s)?;
            }
            pf.finalize(rng)
        };
        assert_stream_matches_fit(
            "sparse-quartic",
            &data,
            seed,
            (cut_a, cut_b),
            |data, rng| est.fit(data, rng),
            |src, rng| est.fit_stream(src, rng),
            Some(&partial),
        );
    }
}

#[test]
fn csv_stream_fit_matches_materialized_fit_bitwise() {
    // End-to-end out-of-core path: write a CSV, fit once from the file
    // stream and once from the materialized reader — identical releases.
    let mut r = StdRng::seed_from_u64(2_024);
    let data = synth::linear_dataset(&mut r, 2_000, 3, 0.1);
    let dir = std::env::temp_dir().join("fm_streaming_equivalence");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("stream_fit.csv");
    functional_mechanism::data::csv::write_dataset(&data, &path).unwrap();

    let est = FmEstimator::new(LinearObjective, FitConfig::new().epsilon(1.0));
    let mut r1 = StdRng::seed_from_u64(7);
    let from_file = {
        let mut src = CsvStreamSource::open(&path).unwrap();
        est.fit_stream(&mut src, &mut r1).unwrap()
    };
    let mut r2 = StdRng::seed_from_u64(7);
    let materialized = {
        let back = functional_mechanism::data::csv::read_dataset(&path).unwrap();
        est.fit(&back, &mut r2).unwrap()
    };
    assert_eq!(from_file, materialized);
    std::fs::remove_file(&path).ok();
}

#[test]
fn owned_borrowed_and_handoff_transports_release_identical_bits() {
    // The three in-memory transports — owned-block fallback, borrowed-
    // block visitor, and the whole-dataset handoff — must be pure
    // transport: same released model, bit for bit, as fit().
    let mut r = StdRng::seed_from_u64(77);
    let data = synth::linear_dataset(&mut r, 2_000, 4, 0.1);
    for intercept in [false, true] {
        let est = FmEstimator::new(
            LinearObjective,
            FitConfig::new().epsilon(1.0).fit_intercept(intercept),
        );
        let fit = |rng_seed: u64| {
            let mut rng = StdRng::seed_from_u64(rng_seed);
            est.fit(&data, &mut rng).unwrap()
        };
        let reference = fit(5);
        let mut rng = StdRng::seed_from_u64(5);
        let handoff = est
            .fit_stream(&mut InMemorySource::new(&data), &mut rng)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let borrowed = est
            .fit_stream(&mut BorrowedBlocks(InMemorySource::new(&data)), &mut rng)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let owned = est
            .fit_stream(&mut OwnedBlocks(InMemorySource::new(&data)), &mut rng)
            .unwrap();
        assert_eq!(reference, handoff, "handoff transport drifted");
        assert_eq!(reference, borrowed, "borrowed transport drifted");
        assert_eq!(reference, owned, "owned transport drifted");
    }
}

#[test]
fn sharded_assembly_matches_per_shard_serial_reference() {
    // `assemble_shards` (concurrent under the `parallel` feature) must
    // equal one serial CoefficientAccumulator per shard, exactly — the
    // reference is feature-independent, so running this suite ± parallel
    // pins serial ≡ parallel bit-identity of the shard partials.
    let mut r = StdRng::seed_from_u64(4_242);
    let data = synth::linear_dataset(&mut r, 3_000, 3, 0.1);
    let idx: Vec<usize> = (0..data.n()).collect();
    let parts = [
        data.subset(&idx[..1_000]).unwrap(),
        data.subset(&idx[1_000..1_024]).unwrap(), // deliberately ragged
        data.subset(&idx[1_024..]).unwrap(),
    ];
    for chunk_rows in [64usize, 4096] {
        let mut shards: Vec<InMemorySource> = parts.iter().map(InMemorySource::new).collect();
        let got = assemble_shards(&LinearObjective, &mut shards, chunk_rows).unwrap();
        assert_eq!(got.len(), parts.len());
        for (shard, (rows, q)) in parts.iter().zip(&got) {
            assert_eq!(*rows, shard.n());
            // Serial reference over jagged blocks: the transport must not
            // matter, only the shard's rows and the chunk grid.
            let mut acc =
                CoefficientAccumulator::with_chunk_rows(&LinearObjective, shard.d(), chunk_rows);
            acc.absorb(&mut JaggedSource::new(shard, 0, shard.n(), 99))
                .unwrap();
            let reference = acc.finish().unwrap();
            assert_eq!(q.as_ref(), Some(&reference), "chunk_rows={chunk_rows}");
        }
    }
}

#[test]
fn dataset_handoff_preserves_continuation_chunking_across_shards() {
    // Regression pin: a mid-chunk shard split absorbed through the
    // whole-dataset handoff (`InMemorySource` per shard) must keep the
    // *concatenation's* chunk grid — the handoff may push only full
    // chunks into the merge counter and must stage the ragged tail for
    // the next shard to continue. Shard splits sit both below and above
    // the 4096-row chunk size, and deliberately off any boundary.
    let mut r = StdRng::seed_from_u64(86_420);
    let data = synth::linear_dataset(&mut r, 11_000, 3, 0.1);
    let est = FmEstimator::new(LinearObjective, FitConfig::new().epsilon(1.0));
    let mut rng = StdRng::seed_from_u64(4);
    let whole = est.fit(&data, &mut rng).unwrap();
    let idx: Vec<usize> = (0..data.n()).collect();
    for cuts in [[1_111usize, 5_000], [4_096, 8_192], [100, 10_999]] {
        let parts = [
            data.subset(&idx[..cuts[0]]).unwrap(),
            data.subset(&idx[cuts[0]..cuts[1]]).unwrap(),
            data.subset(&idx[cuts[1]..]).unwrap(),
        ];
        let mut partial = est.partial_fit();
        for p in &parts {
            partial.absorb(&mut InMemorySource::new(p)).unwrap();
        }
        let mut rng = StdRng::seed_from_u64(4);
        let sharded = partial.finalize(&mut rng).unwrap();
        assert_eq!(whole, sharded, "cuts={cuts:?}");
    }
}

#[test]
fn fit_sharded_is_transport_invariant_and_single_shard_matches_fit() {
    let mut r = StdRng::seed_from_u64(31_337);
    let data = synth::linear_dataset(&mut r, 2_500, 3, 0.1);
    for intercept in [false, true] {
        let est = FmEstimator::new(
            LinearObjective,
            FitConfig::new().epsilon(1.0).fit_intercept(intercept),
        );
        // One shard: fit_sharded ≡ fit_stream ≡ fit, bit for bit.
        let mut rng = StdRng::seed_from_u64(8);
        let whole = est.fit(&data, &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let mut one = [InMemorySource::new(&data)];
        assert_eq!(whole, est.fit_sharded(&mut one, &mut rng).unwrap());

        // Several shards: the released model depends only on the shard
        // rows, never on each shard's block transport.
        let idx: Vec<usize> = (0..data.n()).collect();
        let parts = [
            data.subset(&idx[..900]).unwrap(),
            data.subset(&idx[900..2_100]).unwrap(),
            data.subset(&idx[2_100..]).unwrap(),
        ];
        let mut rng = StdRng::seed_from_u64(8);
        let mut in_memory: Vec<InMemorySource> = parts.iter().map(InMemorySource::new).collect();
        let from_memory = est.fit_sharded(&mut in_memory, &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let mut jagged: Vec<JaggedSource> = parts
            .iter()
            .map(|p| JaggedSource::new(p, 0, p.n(), 0xFEED))
            .collect();
        assert_eq!(from_memory, est.fit_sharded(&mut jagged, &mut rng).unwrap());
    }
}

#[test]
fn session_parallel_disjoint_shards_match_the_serial_path_bitwise() {
    // The flagship parallel-shard pin: fit_disjoint_shards_parallel
    // (concurrent assembly, serial releases) must release exactly the
    // models of the serial fit_disjoint_shards at the same seed — in both
    // builds — and keep the same parallel-composition accounting.
    let mut r = StdRng::seed_from_u64(606);
    let data = synth::linear_dataset(&mut r, 3_000, 2, 0.1);
    let idx: Vec<usize> = (0..data.n()).collect();
    let parts = [
        data.subset(&idx[..1_300]).unwrap(),
        data.subset(&idx[1_300..2_000]).unwrap(),
        data.subset(&idx[2_000..]).unwrap(),
    ];
    let est = DpLinearRegression::builder().epsilon(0.4).build();

    let mut serial_session = PrivacySession::with_budget(1.0).unwrap();
    let mut shards: Vec<InMemorySource> = parts.iter().map(InMemorySource::new).collect();
    let mut rng = StdRng::seed_from_u64(9);
    let serial = serial_session
        .fit_disjoint_shards(&est, &mut shards, &mut rng)
        .unwrap();

    let mut parallel_session = PrivacySession::with_budget(1.0).unwrap();
    let mut shards: Vec<InMemorySource> = parts.iter().map(InMemorySource::new).collect();
    let mut rng = StdRng::seed_from_u64(9);
    let parallel = parallel_session
        .fit_disjoint_shards_parallel(&est, &mut shards, &mut rng)
        .unwrap();

    assert_eq!(serial, parallel, "released shard models drifted");
    assert_eq!(serial_session.num_fits(), parallel_session.num_fits());
    assert_eq!(
        serial_session.spent_epsilon(),
        parallel_session.spent_epsilon()
    );
    assert_eq!(
        serial_session.remaining_epsilon(),
        parallel_session.remaining_epsilon()
    );

    // The single-model union entry point debits once and is transport-
    // deterministic.
    let mut session = PrivacySession::with_budget(1.0).unwrap();
    let mut shards: Vec<InMemorySource> = parts.iter().map(InMemorySource::new).collect();
    let mut rng = StdRng::seed_from_u64(9);
    let union = session.fit_sharded(&est, &mut shards, &mut rng).unwrap();
    assert_eq!(session.num_fits(), 1);
    let mut shards: Vec<InMemorySource> = parts.iter().map(InMemorySource::new).collect();
    let mut rng = StdRng::seed_from_u64(9);
    assert_eq!(union, est.fit_sharded(&mut shards, &mut rng).unwrap());
}

#[test]
fn sparse_fit_sharded_single_shard_matches_fit() {
    let mut r = StdRng::seed_from_u64(2_718);
    let data = synth::linear_dataset(&mut r, 400, 2, 0.05);
    let est = SparseFmEstimator::new(
        QuarticObjective,
        FitConfig::new()
            .epsilon(64.0)
            .strategy(Strategy::FailIfUnbounded),
    );
    let mut rng = StdRng::seed_from_u64(12);
    let whole = est.fit(&data, &mut rng);
    let mut rng = StdRng::seed_from_u64(12);
    let mut one = [InMemorySource::new(&data)];
    let sharded = est.fit_sharded(&mut one, &mut rng);
    match (whole, sharded) {
        (Ok(a), Ok(b)) => assert_eq!(a, b),
        (Err(_), Err(_)) => {}
        other => panic!("outcome mismatch {other:?}"),
    }
    // Multi-shard: transport-invariant across jagged vs in-memory shards.
    let idx: Vec<usize> = (0..data.n()).collect();
    let parts = [
        data.subset(&idx[..150]).unwrap(),
        data.subset(&idx[150..]).unwrap(),
    ];
    let mut rng = StdRng::seed_from_u64(12);
    let mut a: Vec<InMemorySource> = parts.iter().map(InMemorySource::new).collect();
    let from_memory = est.fit_sharded(&mut a, &mut rng);
    let mut rng = StdRng::seed_from_u64(12);
    let mut b: Vec<JaggedSource> = parts
        .iter()
        .map(|p| JaggedSource::new(p, 0, p.n(), 0xBEEF))
        .collect();
    let from_jagged = est.fit_sharded(&mut b, &mut rng);
    match (from_memory, from_jagged) {
        (Ok(a), Ok(b)) => assert_eq!(a, b),
        (Err(_), Err(_)) => {}
        other => panic!("outcome mismatch {other:?}"),
    }
}

#[test]
fn trait_level_fit_sharded_matches_the_inherent_assembly_path() {
    // The DpEstimator-level assembled-fit hook: dispatching through the
    // trait object surface (dyn shards, dyn RNG) must take the native
    // per-shard assembly path for FM estimators and release exactly the
    // inherent fit_sharded's coefficients.
    let mut r = StdRng::seed_from_u64(77_001);
    let data = synth::linear_dataset(&mut r, 2_000, 3, 0.1);
    let idx: Vec<usize> = (0..data.n()).collect();
    let parts = [
        data.subset(&idx[..700]).unwrap(),
        data.subset(&idx[700..1_500]).unwrap(),
        data.subset(&idx[1_500..]).unwrap(),
    ];
    for intercept in [false, true] {
        let est = FmEstimator::new(
            LinearObjective,
            FitConfig::new().epsilon(1.0).fit_intercept(intercept),
        );
        let mut rng = StdRng::seed_from_u64(8);
        let mut shards: Vec<InMemorySource> = parts.iter().map(InMemorySource::new).collect();
        let inherent = est.fit_sharded(&mut shards, &mut rng).unwrap();

        let mut rng = StdRng::seed_from_u64(8);
        let mut a = InMemorySource::new(&parts[0]);
        let mut b = InMemorySource::new(&parts[1]);
        let mut c = InMemorySource::new(&parts[2]);
        let mut dyn_shards: Vec<&mut (dyn RowSource + Send)> = vec![&mut a, &mut b, &mut c];
        let via_trait = DpEstimator::fit_sharded(&est, &mut dyn_shards, &mut rng).unwrap();
        assert_eq!(inherent, via_trait, "intercept={intercept}");
    }

    // Same pin for the general-degree override.
    let est = SparseFmEstimator::new(
        QuarticObjective,
        FitConfig::new()
            .epsilon(64.0)
            .strategy(Strategy::FailIfUnbounded),
    );
    let mut rng = StdRng::seed_from_u64(12);
    let mut shards: Vec<InMemorySource> = parts.iter().map(InMemorySource::new).collect();
    let inherent = est.fit_sharded(&mut shards, &mut rng);
    let mut rng = StdRng::seed_from_u64(12);
    let mut a = InMemorySource::new(&parts[0]);
    let mut b = InMemorySource::new(&parts[1]);
    let mut c = InMemorySource::new(&parts[2]);
    let mut dyn_shards: Vec<&mut (dyn RowSource + Send)> = vec![&mut a, &mut b, &mut c];
    let via_trait = DpEstimator::fit_sharded(&est, &mut dyn_shards, &mut rng);
    match (inherent, via_trait) {
        (Ok(x), Ok(y)) => assert_eq!(x, y),
        (Err(_), Err(_)) => {}
        other => panic!("outcome mismatch {other:?}"),
    }
}

#[test]
fn baselines_join_the_sharded_path_through_fit_sharded_dyn() {
    // Estimators without a native streaming pipeline fall back to the
    // trait default (materialize the shard union, fit once) — so a
    // baseline fitted through the session's dyn entry point must match
    // its direct fit on the concatenated dataset exactly.
    use functional_mechanism::baselines::noprivacy::LinearRegression;
    let mut r = StdRng::seed_from_u64(77_002);
    let data = synth::linear_dataset(&mut r, 1_200, 2, 0.05);
    let idx: Vec<usize> = (0..data.n()).collect();
    let parts = [
        data.subset(&idx[..500]).unwrap(),
        data.subset(&idx[500..]).unwrap(),
    ];

    let ols = LinearRegression::new();
    let direct = ols.fit(&data).unwrap();

    let mut session = PrivacySession::with_budget(1.0).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    let mut a = InMemorySource::new(&parts[0]);
    let mut b = InMemorySource::new(&parts[1]);
    let mut shards: Vec<&mut (dyn RowSource + Send)> = vec![&mut a, &mut b];
    let union = session
        .fit_sharded_dyn(&ols, &mut shards, &mut rng)
        .unwrap();
    assert_eq!(direct, union);
    // Non-private baseline: the session debits nothing.
    assert_eq!(session.num_fits(), 0);
    assert_eq!(session.spent_epsilon(), 0.0);

    // A private FM estimator through the same dyn call site debits once
    // and matches its inherent sharded fit.
    let est = DpLinearRegression::builder().epsilon(0.4).build();
    let mut rng = StdRng::seed_from_u64(9);
    let mut a = InMemorySource::new(&parts[0]);
    let mut b = InMemorySource::new(&parts[1]);
    let mut shards: Vec<&mut (dyn RowSource + Send)> = vec![&mut a, &mut b];
    let dp_union = session
        .fit_sharded_dyn(&est, &mut shards, &mut rng)
        .unwrap();
    assert_eq!(session.num_fits(), 1);
    let mut rng = StdRng::seed_from_u64(9);
    let mut shards: Vec<InMemorySource> = parts.iter().map(InMemorySource::new).collect();
    assert_eq!(dp_union, est.fit_sharded(&mut shards, &mut rng).unwrap());
}

#[cfg(feature = "parallel")]
#[test]
fn prefetched_source_is_bit_identical_at_any_depth_and_block_size() {
    use functional_mechanism::data::stream::PrefetchSource;
    // PrefetchSource is pure transport: a fit over a prefetched CSV
    // stream must release the exact bits of the materialized fit, at any
    // read-ahead block size and channel depth.
    let mut r = StdRng::seed_from_u64(1_234);
    let data = synth::linear_dataset(&mut r, 1_500, 3, 0.1);
    let mut csv = Vec::new();
    functional_mechanism::data::csv::write_dataset_to(&data, &mut csv).unwrap();
    let materialized = functional_mechanism::data::csv::read_dataset_from(&csv[..]).unwrap();
    let est = FmEstimator::new(LinearObjective, FitConfig::new().epsilon(1.0));
    let mut rng = StdRng::seed_from_u64(21);
    let reference = est.fit(&materialized, &mut rng).unwrap();
    for block_rows in [7usize, 256, 4096, 10_000] {
        for depth in [1usize, 2, 8] {
            let inner = CsvStreamSource::from_reader(std::io::Cursor::new(csv.clone())).unwrap();
            let mut pf = PrefetchSource::spawn(inner, block_rows, depth);
            let mut rng = StdRng::seed_from_u64(21);
            let streamed = est.fit_stream(&mut pf, &mut rng).unwrap();
            assert_eq!(reference, streamed, "block_rows={block_rows} depth={depth}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The CSV header mapper is equivalent to reading a pre-permuted
    /// file: for any column permutation (and an injected non-numeric junk
    /// column), `select_columns` over the shuffled layout yields the
    /// canonical dataset bit for bit.
    #[test]
    fn csv_header_mapper_equivalent_to_pre_permuted_csv(
        seed in 0u64..10_000,
        n in 1usize..60,
        d in 1usize..5,
        junk_slot in 0usize..6,
    ) {
        let mut r = StdRng::seed_from_u64(seed);
        let data = synth::linear_dataset(&mut r, n, d, 0.1);

        // Canonical layout (features in order, label last) through the
        // plain reader: the reference.
        let mut canonical = Vec::new();
        functional_mechanism::data::csv::write_dataset_to(&data, &mut canonical).unwrap();
        let mut src = CsvStreamSource::from_reader(&canonical[..]).unwrap();
        let reference = functional_mechanism::data::stream::materialize(&mut src).unwrap();

        // Shuffled layout: permute the d+1 data columns by a seeded
        // Fisher–Yates and insert one non-numeric junk column.
        let mut order: Vec<usize> = (0..=d).collect(); // d = label column
        let mut state = seed | 1;
        let mut rand_below = |m: usize| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as usize) % m
        };
        for i in (1..order.len()).rev() {
            order.swap(i, rand_below(i + 1));
        }
        let junk_at = junk_slot % (d + 2);
        let names = data.feature_names();
        let mut header: Vec<String> = order
            .iter()
            .map(|&c| if c == d { "label".to_string() } else { names[c].clone() })
            .collect();
        header.insert(junk_at, "junk".to_string());
        let mut shuffled = header.join(",");
        shuffled.push('\n');
        for (x, y) in data.tuples() {
            let mut fields: Vec<String> = order
                .iter()
                .map(|&c| if c == d { format!("{y}") } else { format!("{}", x[c]) })
                .collect();
            fields.insert(junk_at, "not-a-number".to_string());
            shuffled.push_str(&fields.join(","));
            shuffled.push('\n');
        }

        let feature_names: Vec<&str> = names.iter().map(String::as_str).collect();
        let mut src = CsvStreamSource::from_reader(shuffled.as_bytes())
            .unwrap()
            .select_columns(&feature_names, "label")
            .unwrap();
        prop_assert_eq!(src.dim(), d);
        let mapped = functional_mechanism::data::stream::materialize(&mut src).unwrap();

        prop_assert_eq!(mapped.y(), reference.y());
        for (a, b) in mapped.x().as_slice().iter().zip(reference.x().as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

#[test]
fn in_memory_source_round_trip_is_bit_identical_for_every_family() {
    // The plainest statement of the tentpole: wrapping the dataset in an
    // InMemorySource and streaming it is indistinguishable from fit().
    let mut r = StdRng::seed_from_u64(515);
    let linear = synth::linear_dataset(&mut r, 1_000, 4, 0.1);
    let logistic = synth::logistic_dataset(&mut r, 1_000, 4, 4.0);

    let lin = FmEstimator::new(LinearObjective, FitConfig::new().epsilon(1.0));
    let mut a = StdRng::seed_from_u64(1);
    let mut b = StdRng::seed_from_u64(1);
    assert_eq!(
        lin.fit(&linear, &mut a).unwrap(),
        lin.fit_stream(&mut InMemorySource::new(&linear), &mut b)
            .unwrap()
    );

    let log = DpLogisticRegression::builder().epsilon(1.0).build();
    let mut a = StdRng::seed_from_u64(2);
    let mut b = StdRng::seed_from_u64(2);
    assert_eq!(
        log.fit(&logistic, &mut a).unwrap(),
        log.fit_stream(&mut InMemorySource::new(&logistic), &mut b)
            .unwrap()
    );

    let med = DpMedianRegression::builder().epsilon(1.0).build();
    let mut a = StdRng::seed_from_u64(3);
    let mut b = StdRng::seed_from_u64(3);
    assert_eq!(
        med.fit(&linear, &mut a).unwrap(),
        med.fit_stream(&mut InMemorySource::new(&linear), &mut b)
            .unwrap()
    );
}
