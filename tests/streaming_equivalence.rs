//! Streaming ≡ in-memory: the property suite pinning the tentpole
//! guarantee of the ingestion redesign.
//!
//! For every supported family — linear, logistic, median, and the
//! general-degree sparse quartic — `fit_stream` over **any** chunking and
//! **any** shard split of a dataset must release coefficients
//! **bit-identical** to `fit` on the materialized `Dataset` under the same
//! seed, and the two-phase `partial_fit`/`finalize` protocol must match as
//! well. The streaming pipeline earns this by construction (fixed
//! re-chunking + a merge tree provably equal to the in-memory reduction);
//! this suite is the machine check that no refactor silently breaks it.

use functional_mechanism::core::estimator::{FitConfig, FmEstimator};
use functional_mechanism::core::generic::QuarticObjective;
use functional_mechanism::core::linreg::LinearObjective;
use functional_mechanism::core::logreg::DpLogisticRegression;
use functional_mechanism::core::robust::{DpMedianRegression, DpQuantileRegression};
use functional_mechanism::core::sparse::SparseFmEstimator;
use functional_mechanism::core::Strategy;
use functional_mechanism::data::stream::{
    CsvStreamSource, InMemorySource, RowBlock, RowSource, ShardedSource,
};
use functional_mechanism::data::{synth, Dataset};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A [`RowSource`] that yields a row range of a dataset in pseudo-random
/// jagged block sizes — the adversarial transport the equivalence claim
/// quantifies over.
struct JaggedSource<'a> {
    data: &'a Dataset,
    pos: usize,
    end: usize,
    state: u64,
}

impl<'a> JaggedSource<'a> {
    fn new(data: &'a Dataset, lo: usize, hi: usize, seed: u64) -> Self {
        JaggedSource {
            data,
            pos: lo,
            end: hi,
            state: seed | 1,
        }
    }
}

impl RowSource for JaggedSource<'_> {
    fn dim(&self) -> usize {
        self.data.d()
    }

    fn next_block(
        &mut self,
        max_rows: usize,
    ) -> functional_mechanism::data::Result<Option<RowBlock>> {
        if self.pos >= self.end {
            return Ok(None);
        }
        // xorshift: deliberately ignores the requested boundary except as
        // an upper bound, so blocks land wherever they land.
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        let cap = max_rows.max(1).min(self.end - self.pos);
        let take = 1 + (self.state as usize) % cap;
        let d = self.data.d();
        let hi = self.pos + take;
        let xs = self.data.x().as_slice()[self.pos * d..hi * d].to_vec();
        let ys = self.data.y()[self.pos..hi].to_vec();
        self.pos = hi;
        Ok(Some(RowBlock::new(xs, ys, d).expect("consistent shapes")))
    }
}

/// Splits `[0, n)` at the fractional cut points into at most 3 shards.
fn shard_bounds(n: usize, cuts: (f64, f64)) -> Vec<(usize, usize)> {
    let mut points = vec![
        0usize,
        ((n as f64) * cuts.0.min(cuts.1)) as usize,
        ((n as f64) * cuts.0.max(cuts.1)) as usize,
        n,
    ];
    points.dedup();
    points.windows(2).map(|w| (w[0], w[1])).collect()
}

/// Runs one family through all three entry points and asserts exact
/// agreement of the released models (or of the failure outcome — at these
/// sizes a hostile draw can legitimately leave no positive spectrum; the
/// deterministic pipelines must then fail *together*).
#[allow(clippy::type_complexity)]
fn assert_stream_matches_fit<M, E>(
    what: &str,
    data: &Dataset,
    seed: u64,
    cuts: (f64, f64),
    fit: impl Fn(&Dataset, &mut StdRng) -> Result<M, E>,
    fit_stream: impl Fn(&mut dyn RowSource, &mut StdRng) -> Result<M, E>,
    partial: Option<&dyn Fn(&mut [JaggedSource], &mut StdRng) -> Result<M, E>>,
) where
    M: PartialEq + std::fmt::Debug,
    E: std::fmt::Debug,
{
    let mut r1 = StdRng::seed_from_u64(seed);
    let in_memory = fit(data, &mut r1);

    // One sharded, jagged-blocked source over the same rows.
    let shards: Vec<JaggedSource> = shard_bounds(data.n(), cuts)
        .into_iter()
        .enumerate()
        .map(|(i, (lo, hi))| JaggedSource::new(data, lo, hi, seed ^ (i as u64 + 0x9E37)))
        .collect();
    let mut sharded = ShardedSource::new(shards).expect("non-empty, equal dims");
    let mut r2 = StdRng::seed_from_u64(seed);
    let streamed = fit_stream(&mut sharded, &mut r2);

    match (&in_memory, &streamed) {
        (Ok(a), Ok(b)) => assert_eq!(a, b, "{what}: fit_stream drifted from fit"),
        (Err(_), Err(_)) => {}
        other => panic!("{what}: outcome mismatch {other:?}"),
    }

    if let Some(partial_fit) = partial {
        let mut shards: Vec<JaggedSource> = shard_bounds(data.n(), cuts)
            .into_iter()
            .enumerate()
            .map(|(i, (lo, hi))| JaggedSource::new(data, lo, hi, seed ^ (i as u64 + 0x51DE)))
            .collect();
        let mut r3 = StdRng::seed_from_u64(seed);
        let sharded = partial_fit(&mut shards, &mut r3);
        match (&in_memory, &sharded) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "{what}: partial_fit drifted from fit"),
            (Err(_), Err(_)) => {}
            other => panic!("{what}: partial outcome mismatch {other:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Linear regression: `fit` ≡ `fit_stream` ≡ `partial_fit`+`finalize`
    /// over arbitrary chunking/shard splits, with and without intercept.
    #[test]
    fn linreg_streaming_equivalence(
        seed in 0u64..10_000,
        n in 1usize..400,
        d in 1usize..6,
        intercept in proptest::bool::ANY,
        cut_a in 0.0f64..1.0,
        cut_b in 0.0f64..1.0,
    ) {
        let mut r = StdRng::seed_from_u64(seed);
        let data = synth::linear_dataset(&mut r, n, d, 0.1);
        let est = FmEstimator::new(
            LinearObjective,
            FitConfig::new().epsilon(1.0).fit_intercept(intercept),
        );
        let partial = |shards: &mut [JaggedSource], rng: &mut StdRng| {
            let mut pf = est.partial_fit();
            for s in shards {
                pf.absorb(s)?;
            }
            pf.finalize(rng)
        };
        assert_stream_matches_fit(
            "linreg",
            &data,
            seed,
            (cut_a, cut_b),
            |data, rng| est.fit(data, rng),
            |src, rng| est.fit_stream(src, rng),
            Some(&partial),
        );
    }

    /// Logistic regression (Algorithm 2's Taylor surrogate) through the
    /// wrapper estimator.
    #[test]
    fn logistic_streaming_equivalence(
        seed in 0u64..10_000,
        n in 1usize..400,
        d in 1usize..6,
        cut_a in 0.0f64..1.0,
        cut_b in 0.0f64..1.0,
    ) {
        let mut r = StdRng::seed_from_u64(seed);
        let data = synth::logistic_dataset(&mut r, n, d, 4.0);
        let est = DpLogisticRegression::builder().epsilon(1.0).build();
        assert_stream_matches_fit(
            "logreg",
            &data,
            seed,
            (cut_a, cut_b),
            |data, rng| est.fit(data, rng),
            |src, rng| est.fit_stream(src, rng),
            None,
        );
    }

    /// Median and general-τ quantile regression (weighted Gram kernels).
    #[test]
    fn median_and_quantile_streaming_equivalence(
        seed in 0u64..10_000,
        n in 1usize..300,
        d in 1usize..5,
        tau_idx in 0usize..3,
        cut_a in 0.0f64..1.0,
        cut_b in 0.0f64..1.0,
    ) {
        let mut r = StdRng::seed_from_u64(seed);
        let data = synth::linear_dataset(&mut r, n, d, 0.1);
        let med = DpMedianRegression::builder().epsilon(1.0).build();
        assert_stream_matches_fit(
            "median",
            &data,
            seed,
            (cut_a, cut_b),
            |data, rng| med.fit(data, rng),
            |src, rng| med.fit_stream(src, rng),
            None,
        );
        let tau = [0.2, 0.5, 0.85][tau_idx];
        let quant = DpQuantileRegression::builder().epsilon(1.0).tau(tau).build();
        assert_stream_matches_fit(
            "quantile",
            &data,
            seed,
            (cut_a, cut_b),
            |data, rng| quant.fit(data, rng),
            |src, rng| quant.fit_stream(src, rng),
            None,
        );
    }

    /// The sparse general-degree path (quartic loss): polynomial
    /// accumulator + generic mechanism, including the two-phase protocol.
    #[test]
    fn sparse_quartic_streaming_equivalence(
        seed in 0u64..10_000,
        n in 1usize..200,
        d in 1usize..4,
        cut_a in 0.0f64..1.0,
        cut_b in 0.0f64..1.0,
    ) {
        let mut r = StdRng::seed_from_u64(seed);
        let data = synth::linear_dataset(&mut r, n, d, 0.05);
        let est = SparseFmEstimator::new(
            QuarticObjective,
            FitConfig::new()
                .epsilon(64.0)
                .strategy(Strategy::FailIfUnbounded),
        );
        let partial = |shards: &mut [JaggedSource], rng: &mut StdRng| {
            let mut pf = est.partial_fit()?;
            for s in shards {
                pf.absorb(s)?;
            }
            pf.finalize(rng)
        };
        assert_stream_matches_fit(
            "sparse-quartic",
            &data,
            seed,
            (cut_a, cut_b),
            |data, rng| est.fit(data, rng),
            |src, rng| est.fit_stream(src, rng),
            Some(&partial),
        );
    }
}

#[test]
fn csv_stream_fit_matches_materialized_fit_bitwise() {
    // End-to-end out-of-core path: write a CSV, fit once from the file
    // stream and once from the materialized reader — identical releases.
    let mut r = StdRng::seed_from_u64(2_024);
    let data = synth::linear_dataset(&mut r, 2_000, 3, 0.1);
    let dir = std::env::temp_dir().join("fm_streaming_equivalence");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("stream_fit.csv");
    functional_mechanism::data::csv::write_dataset(&data, &path).unwrap();

    let est = FmEstimator::new(LinearObjective, FitConfig::new().epsilon(1.0));
    let mut r1 = StdRng::seed_from_u64(7);
    let from_file = {
        let mut src = CsvStreamSource::open(&path).unwrap();
        est.fit_stream(&mut src, &mut r1).unwrap()
    };
    let mut r2 = StdRng::seed_from_u64(7);
    let materialized = {
        let back = functional_mechanism::data::csv::read_dataset(&path).unwrap();
        est.fit(&back, &mut r2).unwrap()
    };
    assert_eq!(from_file, materialized);
    std::fs::remove_file(&path).ok();
}

#[test]
fn in_memory_source_round_trip_is_bit_identical_for_every_family() {
    // The plainest statement of the tentpole: wrapping the dataset in an
    // InMemorySource and streaming it is indistinguishable from fit().
    let mut r = StdRng::seed_from_u64(515);
    let linear = synth::linear_dataset(&mut r, 1_000, 4, 0.1);
    let logistic = synth::logistic_dataset(&mut r, 1_000, 4, 4.0);

    let lin = FmEstimator::new(LinearObjective, FitConfig::new().epsilon(1.0));
    let mut a = StdRng::seed_from_u64(1);
    let mut b = StdRng::seed_from_u64(1);
    assert_eq!(
        lin.fit(&linear, &mut a).unwrap(),
        lin.fit_stream(&mut InMemorySource::new(&linear), &mut b)
            .unwrap()
    );

    let log = DpLogisticRegression::builder().epsilon(1.0).build();
    let mut a = StdRng::seed_from_u64(2);
    let mut b = StdRng::seed_from_u64(2);
    assert_eq!(
        log.fit(&logistic, &mut a).unwrap(),
        log.fit_stream(&mut InMemorySource::new(&logistic), &mut b)
            .unwrap()
    );

    let med = DpMedianRegression::builder().epsilon(1.0).build();
    let mut a = StdRng::seed_from_u64(3);
    let mut b = StdRng::seed_from_u64(3);
    assert_eq!(
        med.fit(&linear, &mut a).unwrap(),
        med.fit_stream(&mut InMemorySource::new(&linear), &mut b)
            .unwrap()
    );
}
