//! Equivalence and determinism suite for the batched coefficient-assembly
//! pipeline (`fm_core::assembly`).
//!
//! The contract under test, for every built-in objective:
//!
//! 1. **Equivalence** — the batched Gram-kernel path produces the same
//!    `(M, α, β)` as the per-tuple reference loop, up to floating-point
//!    regrouping (≤ 1e-12 relative per coefficient).
//! 2. **Chunk-size invariance** — any chunk size yields the same
//!    coefficients to the same tolerance.
//! 3. **Determinism** — re-running assembly is bit-identical, and the
//!    result equals a hand-rolled *sequential* chunked tree reduction
//!    bit-for-bit. Since the parallel build produces exactly the same
//!    per-chunk partials and merges them in the same order, this pins the
//!    worker-count independence guarantee for both feature configurations
//!    (CI runs this suite with and without `--features parallel`).

use functional_mechanism::core::assembly::{
    assemble_per_tuple, assemble_with_chunk_rows, map_reduce_chunks, DEFAULT_CHUNK_ROWS,
};
use functional_mechanism::core::generic::{GeneralLinearObjective, GeneralObjective};
use functional_mechanism::core::linreg::LinearObjective;
use functional_mechanism::core::logreg::{ChebyshevLogisticObjective, LogisticObjective};
use functional_mechanism::core::poisson::PoissonObjective;
use functional_mechanism::core::robust::{HuberObjective, MedianObjective};
use functional_mechanism::core::PolynomialObjective;
use functional_mechanism::data::{synth, Dataset};
use functional_mechanism::poly::QuadraticForm;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 3_000;
const D: usize = 13;
/// Relative per-coefficient tolerance for regrouped floating-point sums.
const TOL: f64 = 1e-12;

/// A dataset satisfying the linear contract (‖x‖₂ ≤ 1, y ∈ [−1, 1]).
fn linear_data(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    synth::linear_dataset(&mut rng, N, D, 0.1)
}

/// A dataset with {0, 1} labels on the same feature distribution.
fn logistic_data(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    synth::logistic_dataset(&mut rng, N, D, 4.0)
}

/// A dataset with bounded counts y ∈ [0, 8].
fn count_data(seed: u64) -> Dataset {
    let base = linear_data(seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0DE);
    let y: Vec<f64> = (0..base.n())
        .map(|_| f64::from(rng.gen_range(0u32..=8)))
        .collect();
    Dataset::new(base.x().clone(), y).expect("shapes preserved")
}

fn assert_close(batched: &QuadraticForm, reference: &QuadraticForm, what: &str) {
    let db = (batched.beta() - reference.beta()).abs();
    assert!(
        db <= TOL * (1.0 + reference.beta().abs()),
        "{what}: β differs by {db:e}"
    );
    for (j, (a, b)) in batched.alpha().iter().zip(reference.alpha()).enumerate() {
        assert!(
            (a - b).abs() <= TOL * (1.0 + b.abs()),
            "{what}: α[{j}] {a} vs {b}"
        );
    }
    for i in 0..reference.dim() {
        for j in 0..reference.dim() {
            let (a, b) = (batched.m()[(i, j)], reference.m()[(i, j)]);
            assert!(
                (a - b).abs() <= TOL * (1.0 + b.abs()),
                "{what}: M[({i},{j})] {a} vs {b}"
            );
        }
    }
}

fn check_objective(objective: &impl PolynomialObjective, data: &Dataset, what: &str) {
    let reference = assemble_per_tuple(objective, data);

    // 1. The trait's default assemble (batched, default chunking) matches
    //    the per-tuple reference.
    let batched = objective.assemble(data);
    assert_close(&batched, &reference, what);

    // 2. Chunk-size invariance, including degenerate and off-boundary
    //    sizes.
    for chunk in [1usize, 7, 64, 1000, 4096, N, N + 13] {
        let q = assemble_with_chunk_rows(objective, data, chunk);
        assert_close(&q, &reference, &format!("{what} chunk={chunk}"));
    }

    // 3. Bit-exact determinism of the shipped path: re-running assembly
    //    and hand-rolling the same chunking + in-order pairwise tree
    //    reduction sequentially must reproduce the result exactly. The
    //    parallel build computes identical partials and merges them in the
    //    identical order, so equality here is what makes the result
    //    independent of worker count.
    let again = objective.assemble(data);
    assert_eq!(batched, again, "{what}: assembly must be deterministic");

    let d = data.d();
    let xs = data.x().as_slice();
    let ys = data.y();
    let mut partials: Vec<QuadraticForm> = (0..data.n().div_ceil(DEFAULT_CHUNK_ROWS))
        .map(|c| {
            let lo = c * DEFAULT_CHUNK_ROWS;
            let hi = ((c + 1) * DEFAULT_CHUNK_ROWS).min(data.n());
            let mut q = QuadraticForm::zero(d);
            objective.accumulate_batch(&xs[lo * d..hi * d], &ys[lo..hi], d, &mut q);
            q
        })
        .collect();
    while partials.len() > 1 {
        let mut next = Vec::with_capacity(partials.len().div_ceil(2));
        let mut it = partials.into_iter();
        while let Some(mut left) = it.next() {
            if let Some(right) = it.next() {
                left.merge(right);
            }
            next.push(left);
        }
        partials = next;
    }
    let sequential = partials.pop().expect("non-empty dataset");
    assert_eq!(
        batched, sequential,
        "{what}: shipped assembly must equal the sequential chunked reduction bit-for-bit"
    );
}

#[test]
fn linear_batched_assembly_matches_per_tuple() {
    check_objective(&LinearObjective, &linear_data(11), "linreg");
}

#[test]
fn logistic_batched_assembly_matches_per_tuple() {
    check_objective(&LogisticObjective, &logistic_data(13), "logreg");
}

#[test]
fn chebyshev_batched_assembly_matches_per_tuple() {
    let objective = ChebyshevLogisticObjective::new(1.0).expect("valid width");
    check_objective(&objective, &logistic_data(17), "chebyshev-logreg");
}

#[test]
fn poisson_batched_assembly_matches_per_tuple() {
    let objective = PoissonObjective::taylor(8.0).expect("valid cap");
    check_objective(&objective, &count_data(19), "poisson");
}

#[test]
fn median_batched_assembly_matches_per_tuple() {
    let objective = MedianObjective::new(0.25).expect("valid smoothing");
    check_objective(&objective, &linear_data(21), "median");
}

#[test]
fn huber_batched_assembly_matches_per_tuple() {
    let objective = HuberObjective::new(0.5).expect("valid threshold");
    check_objective(&objective, &linear_data(27), "huber");
}

#[test]
fn columnar_assembly_is_bit_identical_to_row_major() {
    // The shipped assemble path reads the dataset's cached column-major
    // view (`Dataset::columnar()`) for the built-in objectives; its
    // kernels replicate the row-major kernels' floating-point grouping
    // exactly, so accumulating the same row range from either layout must
    // agree bit-for-bit — layout choice can never perturb an experiment.
    fn check(objective: &impl PolynomialObjective, data: &Dataset, what: &str) {
        assert!(objective.supports_columnar(), "{what} must opt in");
        let d = data.d();
        let xs = data.x().as_slice();
        let ys = data.y();
        let xt = data.columnar();
        for (lo, hi) in [(0usize, data.n()), (0, 1), (5, 4096.min(data.n())), (7, 7)] {
            let mut row_major = QuadraticForm::zero(d);
            objective.accumulate_batch(&xs[lo * d..hi * d], &ys[lo..hi], d, &mut row_major);
            let mut columnar = QuadraticForm::zero(d);
            objective.accumulate_batch_columnar(xt, ys, lo, hi, &mut columnar);
            assert_eq!(row_major, columnar, "{what} rows [{lo}, {hi})");
        }
    }
    check(&LinearObjective, &linear_data(41), "linreg");
    check(&LogisticObjective, &logistic_data(43), "logreg");
    check(
        &ChebyshevLogisticObjective::new(1.0).expect("valid width"),
        &logistic_data(47),
        "chebyshev-logreg",
    );
    check(
        &PoissonObjective::taylor(8.0).expect("valid cap"),
        &count_data(53),
        "poisson",
    );
    check(
        &MedianObjective::new(0.25).expect("valid smoothing"),
        &linear_data(61),
        "median",
    );
    check(
        &HuberObjective::new(0.5).expect("valid threshold"),
        &linear_data(67),
        "huber",
    );
}

#[test]
fn default_columnar_hook_matches_accumulate_batch_bit_for_bit() {
    // A custom objective that overrides accumulate_batch (blocked kernels)
    // and opts into the columnar path WITHOUT overriding the columnar
    // hook: the default must materialise rows and delegate to
    // accumulate_batch, so both layouts still agree bit-for-bit and the
    // assembly branch choice cannot perturb repeated fits.
    struct BlockedOnly;
    impl PolynomialObjective for BlockedOnly {
        fn accumulate_tuple(&self, x: &[f64], y: f64, q: &mut QuadraticForm) {
            LinearObjective.accumulate_tuple(x, y, q);
        }
        fn accumulate_batch(&self, xs: &[f64], ys: &[f64], d: usize, q: &mut QuadraticForm) {
            LinearObjective.accumulate_batch(xs, ys, d, q);
        }
        fn supports_columnar(&self) -> bool {
            true
        }
        fn sensitivity(
            &self,
            d: usize,
            bound: functional_mechanism::core::SensitivityBound,
        ) -> f64 {
            LinearObjective.sensitivity(d, bound)
        }
        fn sensitivity_l2(&self, d: usize) -> f64 {
            LinearObjective.sensitivity_l2(d)
        }
        fn validate(&self, data: &Dataset) -> functional_mechanism::data::Result<()> {
            data.check_normalized_linear()
        }
    }
    let data = linear_data(59);
    let d = data.d();
    let xs = data.x().as_slice();
    let ys = data.y();
    let xt = data.columnar();
    for (lo, hi) in [(0usize, data.n()), (3, 2048)] {
        let mut row_major = QuadraticForm::zero(d);
        BlockedOnly.accumulate_batch(&xs[lo * d..hi * d], &ys[lo..hi], d, &mut row_major);
        let mut columnar = QuadraticForm::zero(d);
        BlockedOnly.accumulate_batch_columnar(xt, ys, lo, hi, &mut columnar);
        assert_eq!(row_major, columnar, "rows [{lo}, {hi})");
    }
}

#[test]
fn default_batch_hook_delegates_to_per_tuple() {
    // An objective that does NOT override accumulate_batch must still go
    // through the chunked pipeline unchanged: the default hook is the
    // per-tuple loop, so the only difference is merge grouping.
    struct Plain;
    impl PolynomialObjective for Plain {
        fn accumulate_tuple(&self, x: &[f64], y: f64, q: &mut QuadraticForm) {
            LinearObjective.accumulate_tuple(x, y, q);
        }
        fn sensitivity(
            &self,
            d: usize,
            bound: functional_mechanism::core::SensitivityBound,
        ) -> f64 {
            LinearObjective.sensitivity(d, bound)
        }
        fn sensitivity_l2(&self, d: usize) -> f64 {
            LinearObjective.sensitivity_l2(d)
        }
        fn validate(&self, data: &Dataset) -> functional_mechanism::data::Result<()> {
            data.check_normalized_linear()
        }
    }
    let data = linear_data(23);
    assert_close(
        &Plain.assemble(&data),
        &assemble_per_tuple(&Plain, &data),
        "default-hook",
    );
}

#[test]
fn generic_chunked_assembly_matches_per_tuple_polynomials() {
    let data = linear_data(29);
    let chunked = GeneralLinearObjective.assemble(&data);
    // Reference: the pre-batching per-tuple polynomial sum.
    let mut reference = functional_mechanism::poly::Polynomial::zero(data.d());
    for (x, y) in data.tuples() {
        reference.add_assign(&GeneralLinearObjective.tuple_polynomial(x, y, data.d()));
    }
    let mut rng = StdRng::seed_from_u64(31);
    for _ in 0..20 {
        let omega = synth::sample_in_ball(&mut rng, data.d(), 1.5);
        let (a, b) = (chunked.eval(&omega), reference.eval(&omega));
        assert!(
            (a - b).abs() <= 1e-9 * (1.0 + b.abs()),
            "generic objectives disagree at {omega:?}: {a} vs {b}"
        );
    }
}

#[test]
fn map_reduce_grouping_is_a_pure_function_of_chunk_count() {
    // The reduction grouping must depend only on (n, chunk_rows): summing
    // f64 indices twice is bit-identical, whatever the worker count.
    for n in [1usize, 100, 8192, 10_001] {
        let run = || {
            map_reduce_chunks(
                n,
                512,
                |lo, hi| (lo..hi).map(|i| (i as f64).sin()).sum::<f64>(),
                |a, b| *a += b,
            )
            .unwrap()
        };
        let (a, b) = (run(), run());
        assert!(a.to_bits() == b.to_bits(), "n={n}: {a} vs {b}");
    }
}
