//! Machine-checkable slices of the paper's privacy argument, tested across
//! crate boundaries.
//!
//! ε-DP itself is a distributional property proved on paper (Theorem 1);
//! what code *can* verify is (a) the sensitivity contracts that the proof
//! consumes, (b) calibration of the injected noise, and (c) an empirical
//! likelihood-ratio check of the end-to-end coefficient release on a pair
//! of neighbour databases.

use functional_mechanism::core::linreg::{DpLinearRegression, LinearObjective};
use functional_mechanism::core::logreg::{
    ChebyshevLogisticObjective, DpLogisticRegression, LogisticObjective,
};
use functional_mechanism::core::poisson::PoissonObjective;
use functional_mechanism::core::robust::{
    DpHuberRegression, DpMedianRegression, DpQuantileRegression, HuberObjective, MedianObjective,
    QuantileObjective,
};
use functional_mechanism::core::{
    FunctionalMechanism, NoiseDistribution, PolynomialObjective, SensitivityBound,
};
use functional_mechanism::data::{synth, Dataset};
use functional_mechanism::linalg::Matrix;
use functional_mechanism::poly::QuadraticForm;
use functional_mechanism::privacy::budget::PrivacyBudget;
use proptest::prelude::*;
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

/// Per-bin likelihood-ratio bound for the empirical-ε checks: `e^ε`
/// relaxed by a count-dependent binomial confidence factor instead of a
/// flat fudge. The log-ratio of two bin counts `n_a, n_b` has standard
/// error ≈ `√(1/n_a + 1/n_b)`, so a 3σ envelope —
/// `e^ε · exp(3·√(1/n_a + 1/n_b))` — keeps the per-bin false-positive
/// rate ≲ 0.3% (comfortable across ≤ 64 bins) while tightening as bins
/// get better populated: ×1.31 at 250/250 counts, ×1.08 at 3000/3000,
/// where the old flat slack allowed ×1.4 everywhere.
fn ratio_bound(eps: f64, n_a: u32, n_b: u32) -> f64 {
    let se = (1.0 / f64::from(n_a) + 1.0 / f64::from(n_b)).sqrt();
    eps.exp() * (3.0 * se).exp()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Lemma 1's per-tuple contract for linear regression, fuzzed over the
    /// whole normalized domain (boundary-heavy sampling).
    #[test]
    fn linear_sensitivity_contract(
        seed in 0u64..10_000,
        d in 1usize..14,
        y in -1.0f64..=1.0,
        boundary in proptest::bool::ANY,
    ) {
        let mut r = rng(seed);
        let mut x = synth::sample_in_ball(&mut r, d, 1.0);
        if boundary {
            // Push to the sphere surface — the sensitivity extremum.
            let norm = functional_mechanism::linalg::vecops::norm2(&x);
            if norm > 0.0 {
                functional_mechanism::linalg::vecops::scale(1.0 / norm, &mut x);
            }
        }
        let mut q = QuadraticForm::zero(d);
        LinearObjective.accumulate_tuple(&x, y, &mut q);
        // Constant included: Δ = 2(1+S)² budgets y²'s share as the +1.
        let l1 = q.coefficient_l1_norm_with_constant();
        let delta = LinearObjective.sensitivity(d, SensitivityBound::Paper);
        prop_assert!(l1 <= delta / 2.0 + 1e-9);
        let tight = LinearObjective.sensitivity(d, SensitivityBound::Tight);
        prop_assert!(l1 <= tight / 2.0 + 1e-9);
    }

    /// Lemma 1's per-tuple contract for the truncated logistic objective.
    #[test]
    fn logistic_sensitivity_contract(
        seed in 0u64..10_000,
        d in 1usize..14,
        label in proptest::bool::ANY,
        boundary in proptest::bool::ANY,
    ) {
        let mut r = rng(seed);
        let mut x = synth::sample_in_ball(&mut r, d, 1.0);
        if boundary {
            let norm = functional_mechanism::linalg::vecops::norm2(&x);
            if norm > 0.0 {
                functional_mechanism::linalg::vecops::scale(1.0 / norm, &mut x);
            }
        }
        let mut q = QuadraticForm::zero(d);
        LogisticObjective.accumulate_tuple(&x, f64::from(label), &mut q);
        let l1 = q.coefficient_l1_norm();
        let delta = LogisticObjective.sensitivity(d, SensitivityBound::Paper);
        prop_assert!(l1 <= delta / 2.0 + 1e-9);
        let tight = LogisticObjective.sensitivity(d, SensitivityBound::Tight);
        prop_assert!(l1 <= tight / 2.0 + 1e-9);
    }

    /// The per-tuple contract for the Poisson objective, over random caps
    /// and in-range counts — both the L1 (Laplace) and L2 (Gaussian)
    /// sensitivities must dominate their respective per-tuple norms.
    #[test]
    fn poisson_sensitivity_contract(
        seed in 0u64..10_000,
        d in 1usize..14,
        y_max in 1.0f64..20.0,
        count_frac in 0.0f64..=1.0,
        boundary in proptest::bool::ANY,
    ) {
        let mut r = rng(seed);
        let mut x = synth::sample_in_ball(&mut r, d, 1.0);
        if boundary {
            let norm = functional_mechanism::linalg::vecops::norm2(&x);
            if norm > 0.0 {
                functional_mechanism::linalg::vecops::scale(1.0 / norm, &mut x);
            }
        }
        let y = (count_frac * y_max).floor();
        let obj = PoissonObjective::taylor(y_max).unwrap();
        let mut q = QuadraticForm::zero(d);
        obj.accumulate_tuple(&x, y, &mut q);
        let l1 = q.coefficient_l1_norm();
        prop_assert!(l1 <= obj.sensitivity(d, SensitivityBound::Paper) / 2.0 + 1e-9);
        prop_assert!(l1 <= obj.sensitivity(d, SensitivityBound::Tight) / 2.0 + 1e-9);
        // L2 contract (degree ≥ 1 blocks; the constant cancels between
        // neighbours for Poisson).
        let l2 = (functional_mechanism::linalg::vecops::dot(q.alpha(), q.alpha())
            + q.m().frobenius_norm().powi(2)).sqrt();
        prop_assert!(l2 <= obj.sensitivity_l2(d) / 2.0 + 1e-9);
    }

    /// The per-tuple L1 and L2 contracts for the Chebyshev logistic
    /// surrogate, across interval widths.
    #[test]
    fn chebyshev_logistic_sensitivity_contract(
        seed in 0u64..10_000,
        d in 1usize..14,
        label in proptest::bool::ANY,
        width_idx in 0usize..3,
    ) {
        let widths = [0.5, 1.0, 4.0];
        let obj = ChebyshevLogisticObjective::new(widths[width_idx]).unwrap();
        let mut r = rng(seed);
        let x = synth::sample_in_ball(&mut r, d, 1.0);
        let mut q = QuadraticForm::zero(d);
        obj.accumulate_tuple(&x, f64::from(label), &mut q);
        let l1 = q.coefficient_l1_norm();
        prop_assert!(l1 <= obj.sensitivity(d, SensitivityBound::Paper) / 2.0 + 1e-9);
        let l2 = (functional_mechanism::linalg::vecops::dot(q.alpha(), q.alpha())
            + q.m().frobenius_norm().powi(2)).sqrt();
        prop_assert!(l2 <= obj.sensitivity_l2(d) / 2.0 + 1e-9);
    }

    /// The L2 neighbour-distance statement backing the Gaussian variant:
    /// coefficient vectors of neighbour databases differ by at most Δ₂
    /// in L2 (including the data-dependent β for linear regression).
    #[test]
    fn gaussian_neighbour_l2_distance(seed in 0u64..10_000, d in 1usize..8) {
        let mut r = rng(seed);
        let n = 20;
        let data = synth::linear_dataset(&mut r, n, d, 0.1);
        let mut x2 = data.x().clone();
        let replacement = synth::sample_in_ball(&mut r, d, 1.0);
        for (j, v) in replacement.iter().enumerate() {
            x2[(n - 1, j)] = *v;
        }
        let mut y2 = data.y().to_vec();
        y2[n - 1] = -y2[n - 1].clamp(-1.0, 1.0);
        let neighbour = Dataset::new(x2, y2).unwrap();

        let q1 = LinearObjective.assemble(&data);
        let q2 = LinearObjective.assemble(&neighbour);
        let mut dist_sq = (q1.beta() - q2.beta()).powi(2);
        for (a, b) in q1.m().as_slice().iter().zip(q2.m().as_slice()) {
            dist_sq += (a - b) * (a - b);
        }
        for (a, b) in q1.alpha().iter().zip(q2.alpha()) {
            dist_sq += (a - b) * (a - b);
        }
        let delta2 = LinearObjective.sensitivity_l2(d);
        prop_assert!(dist_sq.sqrt() <= delta2 + 1e-9,
            "neighbour L2 distance {} > Δ₂ {delta2}", dist_sq.sqrt());
    }

    /// Lemma-1 contract for the smoothed-median objective, fuzzed over
    /// smoothing widths and the whole normalized domain: per-tuple
    /// coefficient L1 — **constant included**, since Algorithm 1 perturbs
    /// and releases the degree-0 term β = Σρ(yᵢ) too — stays below Δ/2
    /// under both bound choices, and the per-tuple L2 norm below Δ₂/2.
    #[test]
    fn median_sensitivity_contract(
        seed in 0u64..10_000,
        d in 1usize..14,
        y in -1.0f64..=1.0,
        gamma_idx in 0usize..4,
        boundary in proptest::bool::ANY,
    ) {
        let gammas = [0.05, 0.25, 0.5, 2.0];
        let obj = MedianObjective::new(gammas[gamma_idx]).unwrap();
        let mut r = rng(seed);
        let mut x = synth::sample_in_ball(&mut r, d, 1.0);
        if boundary {
            let norm = functional_mechanism::linalg::vecops::norm2(&x);
            if norm > 0.0 {
                functional_mechanism::linalg::vecops::scale(1.0 / norm, &mut x);
            }
        }
        let mut q = QuadraticForm::zero(d);
        obj.accumulate_tuple(&x, y, &mut q);
        let l1 = q.coefficient_l1_norm_with_constant();
        prop_assert!(l1 <= obj.sensitivity(d, SensitivityBound::Paper) / 2.0 + 1e-9);
        prop_assert!(l1 <= obj.sensitivity(d, SensitivityBound::Tight) / 2.0 + 1e-9);
        let l2 = (q.beta() * q.beta()
            + functional_mechanism::linalg::vecops::dot(q.alpha(), q.alpha())
            + q.m().frobenius_norm().powi(2)).sqrt();
        prop_assert!(l2 <= obj.sensitivity_l2(d) / 2.0 + 1e-9);
    }

    /// Lemma-1 contract for the general-τ smoothed-pinball (quantile)
    /// objective, fuzzed over quantile levels, smoothing widths and the
    /// whole normalized domain — the asymmetric slope bound
    /// `c₁ = |2τ−1| + 1/√(1+γ²)` must dominate every per-tuple release,
    /// constant included, in both L1 and L2.
    #[test]
    fn quantile_sensitivity_contract(
        seed in 0u64..10_000,
        d in 1usize..14,
        y in -1.0f64..=1.0,
        tau_idx in 0usize..5,
        gamma_idx in 0usize..3,
        boundary in proptest::bool::ANY,
    ) {
        let taus = [0.05, 0.25, 0.5, 0.8, 0.95];
        let gammas = [0.05, 0.25, 1.0];
        let obj = QuantileObjective::new(taus[tau_idx], gammas[gamma_idx]).unwrap();
        let mut r = rng(seed);
        let mut x = synth::sample_in_ball(&mut r, d, 1.0);
        if boundary {
            let norm = functional_mechanism::linalg::vecops::norm2(&x);
            if norm > 0.0 {
                functional_mechanism::linalg::vecops::scale(1.0 / norm, &mut x);
            }
        }
        let mut q = QuadraticForm::zero(d);
        obj.accumulate_tuple(&x, y, &mut q);
        let l1 = q.coefficient_l1_norm_with_constant();
        prop_assert!(l1 <= obj.sensitivity(d, SensitivityBound::Paper) / 2.0 + 1e-9);
        prop_assert!(l1 <= obj.sensitivity(d, SensitivityBound::Tight) / 2.0 + 1e-9);
        let l2 = (q.beta() * q.beta()
            + functional_mechanism::linalg::vecops::dot(q.alpha(), q.alpha())
            + q.m().frobenius_norm().powi(2)).sqrt();
        prop_assert!(l2 <= obj.sensitivity_l2(d) / 2.0 + 1e-9);
    }

    /// Lemma-1 contract for the Huber objective, fuzzed over thresholds
    /// (including δ ≥ 1, the least-squares-degenerate regime) and the
    /// whole normalized domain — constant included, as for the median.
    #[test]
    fn huber_sensitivity_contract(
        seed in 0u64..10_000,
        d in 1usize..14,
        y in -1.0f64..=1.0,
        delta_idx in 0usize..4,
        boundary in proptest::bool::ANY,
    ) {
        let deltas = [0.1, 0.5, 1.0, 3.0];
        let obj = HuberObjective::new(deltas[delta_idx]).unwrap();
        let mut r = rng(seed);
        let mut x = synth::sample_in_ball(&mut r, d, 1.0);
        if boundary {
            let norm = functional_mechanism::linalg::vecops::norm2(&x);
            if norm > 0.0 {
                functional_mechanism::linalg::vecops::scale(1.0 / norm, &mut x);
            }
        }
        let mut q = QuadraticForm::zero(d);
        obj.accumulate_tuple(&x, y, &mut q);
        let l1 = q.coefficient_l1_norm_with_constant();
        prop_assert!(l1 <= obj.sensitivity(d, SensitivityBound::Paper) / 2.0 + 1e-9);
        prop_assert!(l1 <= obj.sensitivity(d, SensitivityBound::Tight) / 2.0 + 1e-9);
        let l2 = (q.beta() * q.beta()
            + functional_mechanism::linalg::vecops::dot(q.alpha(), q.alpha())
            + q.m().frobenius_norm().powi(2)).sqrt();
        prop_assert!(l2 <= obj.sensitivity_l2(d) / 2.0 + 1e-9);
    }

    /// The robust objectives' batched kernels vs the scalar per-tuple loop
    /// (≤ 1e-12 relative, the suite-wide regrouping tolerance) and — the
    /// stronger pin — row-major vs columnar accumulation **bit-identical**
    /// over random row ranges, so no chunking of the assembly pipeline can
    /// make the layouts disagree.
    #[test]
    fn robust_batch_and_columnar_kernels_agree(
        seed in 0u64..10_000,
        d in 1usize..9,
        n in 1usize..160,
        lo_frac in 0.0f64..1.0,
        len_frac in 0.0f64..=1.0,
        huber in proptest::bool::ANY,
    ) {
        let mut r = rng(seed);
        let data = synth::linear_dataset(&mut r, n, d, 0.1);
        let obj: Box<dyn PolynomialObjective> = if huber {
            Box::new(HuberObjective::new(0.5).unwrap())
        } else {
            Box::new(MedianObjective::new(0.25).unwrap())
        };

        // Scalar reference vs the batched kernel over the full block.
        let xs = data.x().as_slice();
        let ys = data.y();
        let mut batched = QuadraticForm::zero(d);
        obj.accumulate_batch(xs, ys, d, &mut batched);
        let mut scalar = QuadraticForm::zero(d);
        for (x, y) in data.tuples() {
            obj.accumulate_tuple(x, y, &mut scalar);
        }
        prop_assert!((batched.beta() - scalar.beta()).abs()
            <= 1e-12 * (1.0 + scalar.beta().abs()));
        for (a, b) in batched.alpha().iter().zip(scalar.alpha()) {
            prop_assert!((a - b).abs() <= 1e-12 * (1.0 + b.abs()));
        }
        for (a, b) in batched.m().as_slice().iter().zip(scalar.m().as_slice()) {
            prop_assert!((a - b).abs() <= 1e-12 * (1.0 + b.abs()));
        }

        // Row-major vs columnar over a random sub-range: bit-identical.
        let lo = ((n as f64) * lo_frac) as usize;
        let hi = lo + (((n - lo) as f64) * len_frac) as usize;
        let xt = data.columnar();
        let mut row_major = QuadraticForm::zero(d);
        obj.accumulate_batch(&xs[lo * d..hi * d], &ys[lo..hi], d, &mut row_major);
        let mut columnar = QuadraticForm::zero(d);
        obj.accumulate_batch_columnar(xt, ys, lo, hi, &mut columnar);
        prop_assert_eq!(row_major, columnar);
    }

    /// Neighbour databases: the *clean* coefficient vectors of two
    /// databases differing in one tuple differ by at most Δ in L1 —
    /// the exact statement of Lemma 1.
    #[test]
    fn lemma1_neighbour_l1_distance(seed in 0u64..10_000, d in 1usize..8) {
        let mut r = rng(seed);
        let n = 20;
        let data = synth::linear_dataset(&mut r, n, d, 0.1);
        // Replace the last tuple with a fresh one.
        let mut x2 = data.x().clone();
        let replacement = synth::sample_in_ball(&mut r, d, 1.0);
        for (j, v) in replacement.iter().enumerate() {
            x2[(n - 1, j)] = *v;
        }
        let mut y2 = data.y().to_vec();
        y2[n - 1] = -y2[n - 1].clamp(-1.0, 1.0);
        let neighbour = Dataset::new(x2, y2).unwrap();

        let q1 = LinearObjective.assemble(&data);
        let q2 = LinearObjective.assemble(&neighbour);
        // L1 distance over every released coefficient, β included.
        let mut dist = (q1.beta() - q2.beta()).abs();
        for (a, b) in q1.m().as_slice().iter().zip(q2.m().as_slice()) {
            dist += (a - b).abs();
        }
        for (a, b) in q1.alpha().iter().zip(q2.alpha()) {
            dist += (a - b).abs();
        }
        let delta = LinearObjective.sensitivity(d, SensitivityBound::Paper);
        prop_assert!(dist <= delta + 1e-9, "neighbour distance {dist} > Δ {delta}");
    }
}

/// Mechanism-level empirical-ε harness on the released **degree-0
/// coefficient**: run Algorithm 1 many times on a pair of neighbour
/// databases, histogram the noisy β of the released [`NoisyQuadratic`]
/// (centred at the base database's clean β, in units of the Laplace
/// scale Δ/ε), and assert every well-populated bin's frequency ratio
/// respects `e^ε` up to the binomial confidence slack.
///
/// The weight-release harness below can never see β — the §6 solve uses
/// only α and M — so this is the check that covers the *full*
/// `NoisyQuadratic` release, constant term included.
fn empirical_epsilon_on_released_beta<O: PolynomialObjective>(
    what: &str,
    eps: f64,
    obj: &O,
    base: &Dataset,
    neighbour: &Dataset,
    seed: u64,
) {
    let fm = FunctionalMechanism::new(eps).unwrap();
    let n_draws = 60_000;
    let bins = 64;
    let mut hist_a = vec![0u32; bins];
    let mut hist_b = vec![0u32; bins];
    let clean_beta = obj.assemble(base).beta();
    let scale = obj.sensitivity(base.d(), SensitivityBound::Paper) / eps;
    let bin_of = |v: f64| -> Option<usize> {
        let t = (v - clean_beta) / scale; // noise in units of the scale
        let idx = ((t + 4.0) / 0.125).floor();
        if (0.0..bins as f64).contains(&idx) {
            Some(idx as usize)
        } else {
            None
        }
    };
    let mut r = rng(seed);
    for _ in 0..n_draws {
        let a = fm.perturb(base, obj, &mut r).unwrap();
        if let Some(i) = bin_of(a.objective().beta()) {
            hist_a[i] += 1;
        }
        let b = fm.perturb(neighbour, obj, &mut r).unwrap();
        if let Some(i) = bin_of(b.objective().beta()) {
            hist_b[i] += 1;
        }
    }
    let mut compared = 0;
    for i in 0..bins {
        if hist_a[i] >= 300 && hist_b[i] >= 300 {
            compared += 1;
            let bound = ratio_bound(eps, hist_a[i], hist_b[i]);
            let ratio = f64::from(hist_a[i]) / f64::from(hist_b[i]);
            assert!(
                ratio < bound && 1.0 / ratio < bound,
                "{what}: bin {i} ratio {ratio} vs bound {bound}"
            );
        }
    }
    assert!(
        compared >= 3,
        "{what}: only {compared} well-populated bins — harness mis-calibrated"
    );
}

#[test]
fn empirical_epsilon_on_neighbour_databases() {
    // End-to-end likelihood-ratio check on the released β coefficient for
    // two neighbour databases, at ε = 1. (β is one coordinate of the
    // released vector; every coordinate receives the same calibration.)
    let d = 2;
    let mut r = rng(42);
    let base = synth::linear_dataset(&mut r, 30, d, 0.1);
    // Neighbour: flip the last label to the opposite extreme.
    let mut y2 = base.y().to_vec();
    y2[29] = if y2[29] > 0.0 { -1.0 } else { 1.0 };
    let neighbour = Dataset::new(base.x().clone(), y2).unwrap();
    empirical_epsilon_on_released_beta("linreg β", 1.0, &LinearObjective, &base, &neighbour, 42);
}

#[test]
fn empirical_epsilon_mechanism_beta_median() {
    let (base, neighbour) = real_label_neighbours(1_005);
    let obj = MedianObjective::new(0.25).unwrap();
    empirical_epsilon_on_released_beta("median β", 1.0, &obj, &base, &neighbour, 37);
}

#[test]
fn empirical_epsilon_mechanism_beta_huber() {
    let (base, neighbour) = real_label_neighbours(1_006);
    let obj = HuberObjective::new(0.5).unwrap();
    empirical_epsilon_on_released_beta("huber β", 1.0, &obj, &base, &neighbour, 41);
}

/// The shared empirical-ε harness for **full estimator fits**: run the
/// whole release pipeline (assemble → Algorithm 1 → §6 post-processing)
/// many times on a pair of neighbour databases, histogram one coordinate
/// of the released weight vector, and assert every well-populated bin's
/// frequency ratio respects `e^ε` up to sampling slack.
///
/// Everything after the coefficient perturbation is deterministic
/// post-processing, so the Theorem-1 guarantee transfers to the released
/// weights verbatim — this is the strongest end-to-end statement a
/// finite-sample test can check. Failed fits (`EmptySpectrum` on hostile
/// draws) are a legitimate outcome of the mechanism and simply fall in no
/// bin; raw bin *counts* are compared (not success-conditional
/// frequencies), so the DP inequality applies to each bin event directly.
fn empirical_epsilon_on_released_weights(
    what: &str,
    eps: f64,
    base: &Dataset,
    neighbour: &Dataset,
    seed: u64,
    mut release: impl FnMut(&Dataset, &mut rand::rngs::StdRng) -> Option<f64>,
) {
    let n_draws = 30_000;
    let bins = 64;
    // The §6.1 ridge keeps released weights small (‖ω‖ ≲ ‖α*‖/2λ); the
    // window [−0.5, 0.5] comfortably covers the bulk for every family at
    // ε = 1 on n = 40 rows.
    let bin_of = |v: f64| -> Option<usize> {
        let idx = ((v + 0.5) * bins as f64).floor();
        if (0.0..bins as f64).contains(&idx) {
            Some(idx as usize)
        } else {
            None
        }
    };
    let mut hist_a = vec![0u32; bins];
    let mut hist_b = vec![0u32; bins];
    let mut r = rng(seed);
    for _ in 0..n_draws {
        if let Some(v) = release(base, &mut r) {
            if let Some(i) = bin_of(v) {
                hist_a[i] += 1;
            }
        }
        if let Some(v) = release(neighbour, &mut r) {
            if let Some(i) = bin_of(v) {
                hist_b[i] += 1;
            }
        }
    }
    let mut compared = 0;
    for i in 0..bins {
        if hist_a[i] >= 250 && hist_b[i] >= 250 {
            compared += 1;
            let bound = ratio_bound(eps, hist_a[i], hist_b[i]);
            let ratio = f64::from(hist_a[i]) / f64::from(hist_b[i]);
            assert!(
                ratio < bound && 1.0 / ratio < bound,
                "{what}: bin {i} ratio {ratio} vs bound {bound}"
            );
        }
    }
    assert!(
        compared >= 3,
        "{what}: only {compared} well-populated bins — harness mis-calibrated"
    );
}

/// Neighbours for the real-label families: flip the last label to the
/// opposite extreme of the normalized range (the worst-case single-tuple
/// change the sensitivity analysis covers).
fn real_label_neighbours(seed: u64) -> (Dataset, Dataset) {
    let mut r = rng(seed);
    let base = synth::linear_dataset(&mut r, 40, 1, 0.1);
    let mut y2 = base.y().to_vec();
    y2[39] = if y2[39] > 0.0 { -1.0 } else { 1.0 };
    let neighbour = Dataset::new(base.x().clone(), y2).unwrap();
    (base, neighbour)
}

#[test]
fn empirical_epsilon_full_fit_linear() {
    let (base, neighbour) = real_label_neighbours(1_001);
    let est = DpLinearRegression::builder().epsilon(1.0).build();
    empirical_epsilon_on_released_weights("linreg", 1.0, &base, &neighbour, 11, |d, r| {
        est.fit(d, r).ok().map(|m| m.weights()[0])
    });
}

#[test]
fn empirical_epsilon_full_fit_logistic() {
    let mut r = rng(1_002);
    let base = synth::logistic_dataset(&mut r, 40, 1, 5.0);
    let mut y2 = base.y().to_vec();
    y2[39] = 1.0 - y2[39]; // flip the binary label
    let neighbour = Dataset::new(base.x().clone(), y2).unwrap();
    let est = DpLogisticRegression::builder().epsilon(1.0).build();
    empirical_epsilon_on_released_weights("logreg", 1.0, &base, &neighbour, 13, |d, r| {
        est.fit(d, r).ok().map(|m| m.weights()[0])
    });
}

#[test]
fn empirical_epsilon_full_fit_median() {
    let (base, neighbour) = real_label_neighbours(1_003);
    let est = DpMedianRegression::builder().epsilon(1.0).build();
    empirical_epsilon_on_released_weights("median", 1.0, &base, &neighbour, 17, |d, r| {
        est.fit(d, r).ok().map(|m| m.weights()[0])
    });
}

#[test]
fn empirical_epsilon_full_fit_huber() {
    let (base, neighbour) = real_label_neighbours(1_004);
    let est = DpHuberRegression::builder().epsilon(1.0).build();
    empirical_epsilon_on_released_weights("huber", 1.0, &base, &neighbour, 19, |d, r| {
        est.fit(d, r).ok().map(|m| m.weights()[0])
    });
}

#[test]
fn empirical_epsilon_full_fit_quantile() {
    let (base, neighbour) = real_label_neighbours(1_007);
    let est = DpQuantileRegression::builder()
        .epsilon(1.0)
        .tau(0.8)
        .build();
    empirical_epsilon_on_released_weights("quantile", 1.0, &base, &neighbour, 29, |d, r| {
        est.fit(d, r).ok().map(|m| m.weights()[0])
    });
}

#[test]
fn empirical_epsilon_joint_two_coordinate_release() {
    // Vector-valued empirical-ε: the per-coordinate harnesses above bin
    // one marginal of the released weight vector, which can miss
    // calibration bugs that only show in the *joint* law — e.g. noise
    // drawn once and reused across coordinates, or a mirrored-triangle
    // bug correlating coefficients, would leave every marginal perfectly
    // Laplace while the joint likelihood ratio blows past e^ε. Here the
    // full d = 2 release pipeline runs 30k times per neighbour database
    // and the pair (ω₀, ω₁) is binned on a joint 12×12 grid: every
    // well-populated *cell* ratio — a genuine multi-bin likelihood-ratio
    // statement about the 2-D output event — must respect e^ε up to the
    // binomial slack.
    let d = 2;
    let mut r = rng(1_008);
    let base = synth::linear_dataset(&mut r, 40, d, 0.1);
    let mut y2 = base.y().to_vec();
    y2[39] = if y2[39] > 0.0 { -1.0 } else { 1.0 };
    let neighbour = Dataset::new(base.x().clone(), y2).unwrap();

    let eps = 1.0;
    let est = DpLinearRegression::builder().epsilon(eps).build();
    let side = 12usize; // 12×12 joint grid over [−0.5, 0.5]²
    let cell_of = |w: &[f64]| -> Option<usize> {
        let i = ((w[0] + 0.5) * side as f64).floor();
        let j = ((w[1] + 0.5) * side as f64).floor();
        if (0.0..side as f64).contains(&i) && (0.0..side as f64).contains(&j) {
            Some(i as usize * side + j as usize)
        } else {
            None
        }
    };
    let n_draws = 30_000;
    let mut hist_a = vec![0u32; side * side];
    let mut hist_b = vec![0u32; side * side];
    let mut r = rng(31);
    for _ in 0..n_draws {
        if let Ok(m) = est.fit(&base, &mut r) {
            if let Some(c) = cell_of(m.weights()) {
                hist_a[c] += 1;
            }
        }
        if let Ok(m) = est.fit(&neighbour, &mut r) {
            if let Some(c) = cell_of(m.weights()) {
                hist_b[c] += 1;
            }
        }
    }
    let mut compared = 0;
    for c in 0..side * side {
        if hist_a[c] >= 200 && hist_b[c] >= 200 {
            compared += 1;
            let bound = ratio_bound(eps, hist_a[c], hist_b[c]);
            let ratio = f64::from(hist_a[c]) / f64::from(hist_b[c]);
            assert!(
                ratio < bound && 1.0 / ratio < bound,
                "joint cell ({}, {}): ratio {ratio} vs bound {bound}",
                c / side,
                c % side
            );
        }
    }
    assert!(
        compared >= 3,
        "joint harness: only {compared} well-populated cells — mis-calibrated"
    );
}

#[test]
fn budget_composes_across_two_model_fits() {
    // An analyst fits a linear and a logistic model on the same database:
    // sequential composition must account ε₁ + ε₂.
    let mut budget = PrivacyBudget::new(1.0).unwrap();
    let mut r = rng(9);
    let linear_data = synth::linear_dataset(&mut r, 2_000, 3, 0.1);
    let logistic_data = synth::logistic_dataset(&mut r, 2_000, 3, 6.0);

    let eps1 = 0.6;
    budget.spend(eps1).unwrap();
    let m1 = functional_mechanism::core::linreg::DpLinearRegression::builder()
        .epsilon(eps1)
        .build()
        .fit(&linear_data, &mut r)
        .unwrap();
    assert_eq!(m1.epsilon(), Some(eps1));

    let eps2 = 0.4;
    budget.spend(eps2).unwrap();
    let m2 = functional_mechanism::core::logreg::DpLogisticRegression::builder()
        .epsilon(eps2)
        .build()
        .fit(&logistic_data, &mut r)
        .unwrap();
    assert_eq!(m2.epsilon(), Some(eps2));

    // Third fit would overdraw.
    assert!(budget.spend(0.1).is_err());
}

#[test]
fn noise_scale_is_cardinality_independent_linear() {
    // Section 4.2 / 5.3: Δ depends only on d.
    let mut r = rng(17);
    let small = synth::linear_dataset(&mut r, 50, 5, 0.1);
    let large = synth::linear_dataset(&mut r, 50_000, 5, 0.1);
    let fm = FunctionalMechanism::new(0.5).unwrap();
    let a = fm.perturb(&small, &LinearObjective, &mut r).unwrap();
    let b = fm.perturb(&large, &LinearObjective, &mut r).unwrap();
    assert_eq!(a.noise_scale(), b.noise_scale());
    assert_eq!(a.sensitivity(), 2.0 * 36.0); // 2(d+1)², d = 5
}

#[test]
fn unnormalized_data_is_rejected_not_silently_accepted() {
    // The sensitivity bound is void outside the normalized domain; the
    // mechanism must refuse rather than under-noise.
    let x = Matrix::from_rows(&[&[1.2, 0.0], &[0.0, 0.5]]).unwrap();
    let bad = Dataset::new(x, vec![0.1, 0.2]).unwrap();
    let fm = FunctionalMechanism::new(1.0).unwrap();
    let mut r = rng(23);
    assert!(fm.perturb(&bad, &LinearObjective, &mut r).is_err());
}

#[test]
fn empirical_epsilon_delta_on_neighbour_databases_gaussian() {
    // The Gaussian-variant analogue of the Laplace likelihood-ratio check:
    // at (ε, δ) = (0.8, 1e−3), binned output frequencies of the released β
    // for neighbour databases must respect e^ε outside a δ-mass tail.
    // With the classical calibration the ratio bound holds on all but a
    // δ-probability region; the bins we test are well inside the bulk.
    let d = 2;
    let mut r = rng(77);
    let base = synth::linear_dataset(&mut r, 30, d, 0.1);
    let mut y2 = base.y().to_vec();
    y2[29] = if y2[29] > 0.0 { -1.0 } else { 1.0 };
    let neighbour = Dataset::new(base.x().clone(), y2).unwrap();

    let (eps, delta) = (0.8, 1e-3);
    let fm = FunctionalMechanism::with_config(
        eps,
        SensitivityBound::Paper,
        NoiseDistribution::Gaussian { delta },
    )
    .unwrap();
    let n_draws = 60_000;
    let mut hist_a = vec![0u32; 64];
    let mut hist_b = vec![0u32; 64];
    let clean_beta = LinearObjective.assemble(&base).beta();
    let sigma = LinearObjective.sensitivity_l2(d) * (2.0 * (1.25f64 / delta).ln()).sqrt() / eps;
    let bin_of = |v: f64| -> Option<usize> {
        let t = (v - clean_beta) / sigma;
        let idx = ((t + 2.0) / 0.0625).floor();
        if (0.0..64.0).contains(&idx) {
            Some(idx as usize)
        } else {
            None
        }
    };
    for _ in 0..n_draws {
        let a = fm.perturb(&base, &LinearObjective, &mut r).unwrap();
        if let Some(i) = bin_of(a.objective().beta()) {
            hist_a[i] += 1;
        }
        let b = fm.perturb(&neighbour, &LinearObjective, &mut r).unwrap();
        if let Some(i) = bin_of(b.objective().beta()) {
            hist_b[i] += 1;
        }
    }
    let mut compared = 0;
    for i in 0..64 {
        if hist_a[i] >= 300 && hist_b[i] >= 300 {
            compared += 1;
            let bound = ratio_bound(eps, hist_a[i], hist_b[i]);
            let ratio = f64::from(hist_a[i]) / f64::from(hist_b[i]);
            assert!(
                ratio < bound && 1.0 / ratio < bound,
                "bin {i}: ratio {ratio} vs bound {bound}"
            );
        }
    }
    assert!(
        compared >= 3,
        "gaussian: only {compared} well-populated bins — harness mis-calibrated"
    );
}

#[test]
fn empirical_epsilon_delta_sparse_gaussian_release() {
    // The general-degree Gaussian release — the Δ₂ path that
    // `SparseFmEstimator` now exposes — through the same
    // likelihood-ratio harness as the degree-2 Gaussian variant: at
    // (ε, δ) = (0.8, 1e-3), binned output frequencies of one released
    // quartic coefficient for neighbour databases must respect e^ε
    // outside a δ-mass tail; the bins tested sit well inside the bulk.
    use functional_mechanism::core::generic::{
        GeneralObjective, GenericFunctionalMechanism, QuarticObjective,
    };
    use functional_mechanism::poly::Monomial;

    let d = 1;
    let mut r = rng(83);
    let base = synth::linear_dataset(&mut r, 30, d, 0.1);
    let mut y2 = base.y().to_vec();
    y2[29] = if y2[29] > 0.0 { -1.0 } else { 1.0 };
    let neighbour = Dataset::new(base.x().clone(), y2).unwrap();

    let (eps, delta) = (0.8, 1e-3);
    let fm =
        GenericFunctionalMechanism::with_noise(eps, NoiseDistribution::Gaussian { delta }).unwrap();
    let phi = Monomial::linear(d, 0);
    let clean = QuarticObjective.assemble(&base).coefficient(&phi);
    let delta2 = QuarticObjective.sensitivity_l2(d).unwrap();
    let sigma = delta2 * (2.0 * (1.25f64 / delta).ln()).sqrt() / eps;

    let n_draws = 60_000;
    let mut hist_a = vec![0u32; 64];
    let mut hist_b = vec![0u32; 64];
    let bin_of = |v: f64| -> Option<usize> {
        let t = (v - clean) / sigma;
        let idx = ((t + 2.0) / 0.0625).floor();
        if (0.0..64.0).contains(&idx) {
            Some(idx as usize)
        } else {
            None
        }
    };
    for _ in 0..n_draws {
        let a = fm.perturb(&base, &QuarticObjective, &mut r).unwrap();
        if let Some(i) = bin_of(a.polynomial().coefficient(&phi)) {
            hist_a[i] += 1;
        }
        let b = fm.perturb(&neighbour, &QuarticObjective, &mut r).unwrap();
        if let Some(i) = bin_of(b.polynomial().coefficient(&phi)) {
            hist_b[i] += 1;
        }
    }
    let mut compared = 0;
    for i in 0..64 {
        if hist_a[i] >= 300 && hist_b[i] >= 300 {
            compared += 1;
            let bound = ratio_bound(eps, hist_a[i], hist_b[i]);
            let ratio = f64::from(hist_a[i]) / f64::from(hist_b[i]);
            assert!(
                ratio < bound && 1.0 / ratio < bound,
                "bin {i}: ratio {ratio} vs bound {bound}"
            );
        }
    }
    assert!(
        compared >= 3,
        "sparse gaussian: only {compared} well-populated bins — harness mis-calibrated"
    );
}

#[test]
fn noise_scale_is_cardinality_independent_poisson() {
    let mut r = rng(29);
    let small = synth::poisson_dataset(&mut r, 50, 5, 8.0);
    let large = synth::poisson_dataset(&mut r, 50_000, 5, 8.0);
    let fm = FunctionalMechanism::new(0.5).unwrap();
    let obj = PoissonObjective::taylor(8.0).unwrap();
    let a = fm.perturb(&small, &obj, &mut r).unwrap();
    let b = fm.perturb(&large, &obj, &mut r).unwrap();
    assert_eq!(a.noise_scale(), b.noise_scale());
    // Δ = 2((1+8)·5 + 12.5) = 115.
    assert_eq!(a.sensitivity(), 115.0);
}

#[test]
fn gaussian_noisy_quadratic_records_delta() {
    let mut r = rng(31);
    let data = synth::linear_dataset(&mut r, 500, 3, 0.1);
    let fm = FunctionalMechanism::with_config(
        0.5,
        SensitivityBound::Paper,
        NoiseDistribution::Gaussian { delta: 1e-5 },
    )
    .unwrap();
    let noisy = fm.perturb(&data, &LinearObjective, &mut r).unwrap();
    assert_eq!(noisy.delta(), Some(1e-5));
    assert_eq!(noisy.sensitivity(), LinearObjective.sensitivity_l2(3));
    // Laplace draws record no δ.
    let fm_l = FunctionalMechanism::new(0.5).unwrap();
    let noisy_l = fm_l.perturb(&data, &LinearObjective, &mut r).unwrap();
    assert_eq!(noisy_l.delta(), None);
}
