//! fm-serve integration suite: the service's three load-bearing promises.
//!
//! 1. **Bounded ingestion** — a full block queue rejects (`try_send`) or
//!    blocks (`send`) the producer; memory never grows unboundedly.
//! 2. **Checkpointing shutdown** — killing the service mid-stream
//!    suspends the fit; a restarted service over the same WAL finishes it
//!    **bit-identical** to the uninterrupted direct fit, with ε debited
//!    exactly once across the whole interruption.
//! 3. **Compaction under load** — background WAL compaction never runs
//!    while a checkpointed reservation dangles, and the deferred
//!    compaction after resume keeps the accounting intact.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use functional_mechanism::data::queue::SendRejected;
use functional_mechanism::data::stream::RowSource;
use functional_mechanism::data::synth::linear_dataset;
use functional_mechanism::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn temp_wal(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("fm_serve_test_{}_{tag}.wal", std::process::id()))
}

/// Streams `data` through `sender` in `block_rows`-sized blocks.
fn send_all(
    data: &Dataset,
    block_rows: usize,
    sender: &functional_mechanism::data::queue::BlockSender,
) {
    let mut source = InMemorySource::new(data);
    while let Some(block) = source.next_block(block_rows).unwrap() {
        sender.send(block).unwrap();
    }
}

#[test]
fn full_queue_rejects_try_send_and_blocks_send_until_drained() {
    let path = temp_wal("backpressure");
    let _ = std::fs::remove_file(&path);
    let (session, _) = SharedPrivacySession::with_wal(&path, None).unwrap();
    let session = Arc::new(session);
    // One worker, one-block queues: job A occupies the worker, so job B's
    // queue is admitted but never drained.
    let service = FitService::new(
        Arc::clone(&session),
        ServeConfig::new().workers(1).queue_blocks(1),
    );
    // Large ε: this test is about queue mechanics, so keep the noise far
    // from the degenerate-spectrum regime of a 2-row fit.
    let est = || DpLinearRegression::builder().epsilon(100.0).build();
    let block = |i: usize| {
        let x = 0.2 + 0.3 * i as f64;
        RowBlock::new(vec![x], vec![0.5 * x], 1).unwrap()
    };

    let (handle_a, sender_a) = service
        .submit(est(), FitRequest::new("t0", "occupier", 1))
        .unwrap();
    let (handle_b, sender_b) = service
        .submit(est(), FitRequest::new("t1", "starved", 1))
        .unwrap();
    // Give the single worker a moment to claim job A.
    std::thread::sleep(Duration::from_millis(50));

    // B's queue holds exactly one block; the second is rejected — and the
    // rejected block comes back, nothing is silently dropped.
    sender_b.send(block(0)).unwrap();
    match sender_b.try_send(block(1)) {
        Err(SendRejected::Full(returned)) => assert_eq!(returned.rows(), 1),
        other => panic!("expected Full rejection, got {other:?}"),
    }

    // A blocking send parks the producer instead of buffering.
    let unblocked = Arc::new(AtomicBool::new(false));
    let producer = {
        let sender_b = sender_b.clone();
        let unblocked = Arc::clone(&unblocked);
        std::thread::spawn(move || {
            sender_b.send(block(2)).unwrap();
            unblocked.store(true, Ordering::Release);
        })
    };
    std::thread::sleep(Duration::from_millis(100));
    assert!(
        !unblocked.load(Ordering::Acquire),
        "send into a full queue of an unscheduled job must block"
    );

    // Finishing A frees the worker: it drains B's queue, unblocking the
    // producer. A saw zero rows, so its reservation is refunded.
    sender_a.finish();
    assert!(matches!(handle_a.wait().unwrap(), FitOutcome::Cancelled));
    producer.join().unwrap();
    assert!(unblocked.load(Ordering::Acquire));
    drop(sender_b);
    assert!(matches!(handle_b.wait().unwrap(), FitOutcome::Released(_)));

    // Exactly one ε = 100 release was committed (A refunded).
    assert!((session.spent_epsilon() - 100.0).abs() < 1e-12);
    drop(service);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn shutdown_mid_fit_resumes_bit_identical_on_a_restarted_service() {
    let path = temp_wal("restart");
    let _ = std::fs::remove_file(&path);
    let mut r = StdRng::seed_from_u64(71);
    let data = linear_dataset(&mut r, 300, 2, 0.1);
    let est = || DpLinearRegression::builder().epsilon(0.5).build();

    // Incarnation 1: feed the first half in odd-sized blocks, then shut
    // down with the producer still live.
    let suspended = {
        let (session, _) = SharedPrivacySession::with_wal(&path, Some(1.0)).unwrap();
        let session = Arc::new(session);
        let service = FitService::new(Arc::clone(&session), ServeConfig::new().workers(1));
        let (handle, sender) = service
            .submit(est(), FitRequest::new("census", "resumable", 2).seed(77))
            .unwrap();
        let first = data.subset(&(0..150).collect::<Vec<_>>()).unwrap();
        send_all(&first, 64, &sender);

        let mut suspended = service.shutdown();
        assert_eq!(suspended.len(), 1, "the in-flight fit must be checkpointed");
        let suspended = suspended.pop().unwrap();
        assert!(matches!(handle.wait().unwrap(), FitOutcome::Suspended(_)));
        assert_eq!(
            suspended.rows, 150,
            "every queued block is absorbed before suspending"
        );
        // ε was debited at admission and survives the shutdown un-refunded.
        assert!((session.spent_epsilon() - 0.5).abs() < 1e-12);
        assert_eq!(session.dangling_reservations(), 1);
        drop(sender);
        suspended
    };

    // Incarnation 2: recovery seals the dangling reservation as spent;
    // resume re-attaches it with no second debit.
    let (session, report) = SharedPrivacySession::with_wal(&path, Some(1.0)).unwrap();
    assert_eq!(report.sealed_dangling, 1);
    let session = Arc::new(session);
    assert!((session.spent_epsilon() - 0.5).abs() < 1e-12);
    let service = FitService::new(Arc::clone(&session), ServeConfig::new().workers(1));
    let rows_done = suspended.rows;
    let (handle, sender) = service.resume(est(), suspended, 77).unwrap();
    assert!(
        (session.spent_epsilon() - 0.5).abs() < 1e-12,
        "resume must not re-debit"
    );
    let rest = data.subset(&(rows_done..300).collect::<Vec<_>>()).unwrap();
    send_all(&rest, 64, &sender);
    sender.finish();
    let model = match handle.wait().unwrap() {
        FitOutcome::Released(model) => model,
        other => panic!("expected a release, got {other:?}"),
    };
    assert!(
        (session.spent_epsilon() - 0.5).abs() < 1e-12,
        "debited exactly once"
    );
    assert_eq!(session.dangling_reservations(), 0);
    drop(service);

    // The interrupted, re-served fit releases the uninterrupted direct
    // fit's exact bits.
    let est = est();
    let mut direct = est.partial_fit();
    direct.absorb(&mut InMemorySource::new(&data)).unwrap();
    let mut rng = StdRng::seed_from_u64(77);
    assert_eq!(model, direct.finalize(&mut rng).unwrap());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn compaction_under_load_waits_for_dangling_reservations() {
    let path = temp_wal("compaction");
    let _ = std::fs::remove_file(&path);
    let mut r = StdRng::seed_from_u64(72);
    let data = linear_dataset(&mut r, 200, 2, 0.1);
    let est = || DpLinearRegression::builder().epsilon(0.05).build();
    let aggressive = CompactionPolicy::default().settled_records(1).file_bytes(1);

    let (session, _) = SharedPrivacySession::with_wal(&path, None).unwrap();
    let session = Arc::new(session);

    // Suspend one fit so its reservation dangles.
    let service = FitService::new(
        Arc::clone(&session),
        ServeConfig::new().workers(1).compaction(aggressive),
    );
    let (handle, sender) = service
        .submit(est(), FitRequest::new("sleeper", "parked", 2).seed(5))
        .unwrap();
    send_all(
        &data.subset(&(0..100).collect::<Vec<_>>()).unwrap(),
        32,
        &sender,
    );
    let suspended = service.shutdown().pop().unwrap();
    assert!(matches!(handle.wait().unwrap(), FitOutcome::Suspended(_)));
    drop(sender);
    assert_eq!(session.dangling_reservations(), 1);

    // A second service hammers commits; every one offers the overdue
    // policy a compaction, and every one must be refused.
    let service = FitService::new(
        Arc::clone(&session),
        ServeConfig::new().workers(2).compaction(aggressive),
    );
    for fit in 0..3 {
        let (handle, sender) = service
            .submit(
                est(),
                FitRequest::new("busy", format!("fit-{fit}"), 2).seed(fit as u64),
            )
            .unwrap();
        send_all(&data, 64, &sender);
        sender.finish();
        assert!(matches!(handle.wait().unwrap(), FitOutcome::Released(_)));
    }
    let stats = session.wal_stats().unwrap();
    assert!(
        stats.settled_records >= 3,
        "settled garbage must pile up while the reservation dangles (got {})",
        stats.settled_records
    );
    assert_eq!(
        session.dangling_reservations(),
        1,
        "the parked reservation survives the load"
    );
    let spent_before = session.spent_epsilon();

    // Resuming and committing the parked fit clears the dangle; the very
    // same commit's compaction offer now goes through — with the ledger
    // totals intact.
    let rows_done = suspended.rows;
    let (handle, sender) = service.resume(est(), suspended, 5).unwrap();
    send_all(
        &data.subset(&(rows_done..200).collect::<Vec<_>>()).unwrap(),
        32,
        &sender,
    );
    sender.finish();
    let model = match handle.wait().unwrap() {
        FitOutcome::Released(model) => model,
        other => panic!("expected a release, got {other:?}"),
    };
    assert_eq!(
        session.wal_stats().unwrap().settled_records,
        0,
        "deferred compaction ran"
    );
    assert_eq!(session.dangling_reservations(), 0);
    assert!(
        (session.spent_epsilon() - spent_before).abs() < 1e-12,
        "resume + compaction must not change spending"
    );

    // And the parked fit still released the direct fit's exact bits.
    let est = est();
    let mut direct = est.partial_fit();
    direct.absorb(&mut InMemorySource::new(&data)).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    assert_eq!(model, direct.finalize(&mut rng).unwrap());
    drop(service);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn rdp_admission_outlives_the_naive_cap() {
    // A moments-accountant session admits a many-release Gaussian
    // workload far past the naive Σε cap, while the converted ε stays
    // inside it: with cap = 1.0 and ε = 0.1 per fit, naive admission
    // refuses at fit 11, but the RDP conversion of 20 such classically
    // calibrated Gaussians at δ = 1e-6 is ≈ 0.45.
    let session = Arc::new(
        SharedPrivacySession::with_cap(1.0)
            .unwrap()
            .admit_by_rdp(1e-6)
            .unwrap(),
    );
    let service = FitService::new(Arc::clone(&session), ServeConfig::new().workers(1));
    let mut r = StdRng::seed_from_u64(7);
    let data = linear_dataset(&mut r, 64, 1, 0.05);
    for i in 0..20u64 {
        // Ridge-only resolution: at ε = 0.1 the Gaussian noise dwarfs a
        // 64-row Gram matrix, and spectral trimming would legitimately
        // reject most draws; this test is about admission, not accuracy.
        let est = DpLinearRegression::builder()
            .epsilon(0.1)
            .noise(NoiseDistribution::Gaussian { delta: 1e-6 })
            .strategy(Strategy::RegularizeOnly)
            .build();
        let (handle, sender) = service
            .submit(est, FitRequest::new("t", format!("fit-{i}"), 1).seed(i))
            .unwrap();
        send_all(&data, 16, &sender);
        sender.finish();
        assert!(matches!(handle.wait().unwrap(), FitOutcome::Released(_)));
    }
    // The naive running total is double the cap — inadmissible under the
    // default Σε criterion — yet the composed moments-accountant ε
    // honours the cap with plenty of room.
    assert!((session.spent_epsilon() - 2.0).abs() < 1e-9);
    let report = session.report(1e-6).unwrap();
    assert_eq!(report.fits, 20);
    assert!(report.rdp.epsilon <= 1.0, "rdp ε = {}", report.rdp.epsilon);
    assert!(report.rdp.epsilon < report.best.0);
    drop(service);
}

#[test]
fn spawn_job_runs_on_the_pool_and_drains_before_shutdown() {
    let path = temp_wal("spawn-job");
    let _ = std::fs::remove_file(&path);
    let (session, _) = SharedPrivacySession::with_wal(&path, None).unwrap();
    let session = Arc::new(session);
    let service = FitService::new(Arc::clone(&session), ServeConfig::new().workers(1));

    // An ad-hoc job shares the workers and can reach the session.
    let ran = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&ran);
    let shared = Arc::clone(service.session());
    let (tx, rx) = std::sync::mpsc::channel();
    service
        .spawn_job(move || {
            flag.store(shared.spent_epsilon() == 0.0, Ordering::Release);
            let _ = tx.send(());
        })
        .unwrap();
    rx.recv_timeout(Duration::from_secs(10)).unwrap();
    assert!(ran.load(Ordering::Acquire));

    // A queued job still runs to completion across shutdown's join.
    let done = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&done);
    service
        .spawn_job(move || flag.store(true, Ordering::Release))
        .unwrap();
    let suspended = service.shutdown();
    assert!(suspended.is_empty());
    assert!(
        done.load(Ordering::Acquire),
        "shutdown must drain the queue"
    );
    let _ = std::fs::remove_file(&path);
}
