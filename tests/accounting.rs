//! Integration suite for exact privacy accounting: the moments
//! accountant's tightness pins, the drift-proof (integer micro-ε) budget
//! arithmetic of [`SharedPrivacySession`], and the monotonicity
//! contracts of the RDP → (ε, δ) conversion.
//!
//! The two pinned acceptance criteria of the accounting PR live here:
//!
//! 1. ≥ 32 homogeneous Gaussian releases at δ = 1e-6 compose to an
//!    RDP-converted ε **strictly tighter** than `best_composition`, at
//!    both the ledger and the session level.
//! 2. A reserve → abort cycle on a [`SharedPrivacySession`] restores the
//!    pre-reserve spent total **bit-identically**, and a second
//!    settlement of the same reservation is refused.

use std::sync::Arc;

use functional_mechanism::prelude::*;
use functional_mechanism::privacy::rdp::default_alpha_grid;
use proptest::prelude::*;

const EPS0: f64 = 0.1;
const DELTA0: f64 = 1e-6;
const DELTA_PRIME: f64 = 1e-6;

fn temp_wal(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("fm_accounting_{}_{tag}.wal", std::process::id()))
}

/// Closed-form Mironov optimum for k homogeneous Gaussians, minimised
/// over continuous α: `ε* = c + 2√(c·ln(1/δ))` with `c = k/(2σ̃²)`.
fn gaussian_analytic_optimum(k: usize, noise_multiplier: f64, delta: f64) -> f64 {
    let c = k as f64 / (2.0 * noise_multiplier * noise_multiplier);
    c + 2.0 * (c * (1.0 / delta).ln()).sqrt()
}

#[test]
fn pinned_rdp_strictly_beats_best_composition_for_32_gaussians() {
    // Ledger level: the raw accountants side by side.
    let mut ledger = EpsDeltaLedger::new();
    let mut rdp = RdpLedger::new();
    for _ in 0..32 {
        ledger.record(EPS0, DELTA0).unwrap();
        rdp.record(RenyiMechanism::gaussian_from_calibration(EPS0, DELTA0).unwrap())
            .unwrap();
    }
    let (best, _) = ledger.best_composition(DELTA_PRIME).unwrap();
    let account = rdp.convert(DELTA_PRIME).unwrap();
    assert!(
        account.epsilon < best,
        "rdp ε {} must beat best composition {best}",
        account.epsilon
    );
    // The margin is wide, not marginal: ≈ 0.567 vs 3.2 at these params.
    assert!(account.epsilon < 0.25 * best);

    // Session level: the same 32 debits through the shared session's
    // report, which maps classically calibrated (ε, δ) debits onto
    // Gaussian curves.
    let session = SharedPrivacySession::new();
    for i in 0..32 {
        session
            .begin("tenant", &format!("release-{i}"), EPS0, DELTA0)
            .unwrap()
            .commit()
            .unwrap();
    }
    let report = session.report(DELTA_PRIME).unwrap();
    assert_eq!(report.fits, 32);
    assert!(report.rdp.epsilon < report.best.0);
    assert!((report.rdp.epsilon - account.epsilon).abs() < 1e-12);
}

#[test]
fn pinned_abort_restores_spent_total_bit_identically() {
    let session = SharedPrivacySession::with_cap(1.0).unwrap();
    // Committed history with awkward decimal ε so the pre-reserve total
    // is not a "nice" float.
    session.begin("t", "a", 0.1, 0.0).unwrap().commit().unwrap();
    session
        .begin("t", "b", 0.037, 1e-7)
        .unwrap()
        .commit()
        .unwrap();
    let before = session.spent_epsilon().to_bits();

    let permit = session.begin("t", "c", 0.030_000_000_7, 1e-8).unwrap();
    assert_ne!(session.spent_epsilon().to_bits(), before);
    let id = permit.detach();

    // Settle (abort) exactly once through a re-attached permit.
    session.resume_reservation(id).unwrap().abort().unwrap();
    assert_eq!(
        session.spent_epsilon().to_bits(),
        before,
        "abort must refund the exact quanta the reserve debited"
    );

    // A second settlement of the same reservation is refused.
    assert!(
        session.resume_reservation(id).is_err(),
        "settled reservations must not be re-attachable"
    );
}

#[test]
fn concurrent_hammering_never_overshoots_the_cap() {
    // Many small concurrent fits against a cap the workload can exactly
    // fill: admission is integer arithmetic, so the running total can
    // never creep past the cap by accumulated float slack.
    let cap = 0.25;
    let session = Arc::new(SharedPrivacySession::with_cap(cap).unwrap());
    let committed: usize = (0..4u64)
        .map(|t| {
            let session = Arc::clone(&session);
            std::thread::spawn(move || {
                let mut committed = 0usize;
                for i in 0..200 {
                    match session.begin("t", &format!("{t}-{i}"), 0.001, 0.0) {
                        Ok(permit) => {
                            if i % 2 == 0 {
                                permit.commit().unwrap();
                                committed += 1;
                            } else {
                                permit.abort().unwrap();
                            }
                        }
                        Err(FmError::Privacy(_)) => {}
                        Err(e) => panic!("unexpected admission error: {e}"),
                    }
                    let spent = session.spent_epsilon();
                    assert!(spent <= cap, "spent {spent} overshot cap {cap}");
                }
                committed
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().unwrap())
        .sum();
    // Every admission either committed its exact quanta or refunded them
    // bit-for-bit: the final total is precisely committed × ε.
    let expected = committed as f64 * 0.001;
    assert!((session.spent_epsilon() - expected).abs() < 1e-12);
    assert!(session.spent_epsilon() <= cap);
}

#[test]
fn rdp_admission_outlasts_naive_admission_and_still_refuses() {
    let session = SharedPrivacySession::with_cap(1.0)
        .unwrap()
        .admit_by_rdp(DELTA_PRIME)
        .unwrap();
    // Naive Σε admission would refuse at fit 11; the moments accountant
    // sustains 40 of these Gaussian releases at a converted ε ≈ 0.63.
    for i in 0..40 {
        session
            .begin("t", &format!("fit-{i}"), EPS0, DELTA0)
            .unwrap()
            .commit()
            .unwrap();
    }
    let report = session.report(DELTA_PRIME).unwrap();
    assert_eq!(report.fits, 40);
    assert!(report.rdp.epsilon <= 1.0);
    assert!(report.best.0 > 1.0, "naive/best admission would have died");
    // The accountant still refuses: a large candidate pushes the
    // projected converted ε past the cap.
    let err = session.begin("t", "too-big", 0.95, 1e-2);
    assert!(matches!(err, Err(FmError::Privacy(_))), "got {err:?}");
    // Refusal is side-effect free: the naive counter still reads the 40
    // committed releases only.
    assert!((session.spent_epsilon() - 4.0).abs() < 1e-9);
}

#[test]
fn grid_conversion_tracks_the_analytic_gaussian_optimum() {
    for k in [8usize, 32, 128] {
        let mechanism = RenyiMechanism::gaussian_from_calibration(EPS0, DELTA0).unwrap();
        let RenyiMechanism::Gaussian { noise_multiplier } = mechanism else {
            panic!("calibration must produce a Gaussian curve");
        };
        let mut rdp = RdpLedger::new();
        for _ in 0..k {
            rdp.record(mechanism).unwrap();
        }
        let account = rdp.convert(DELTA_PRIME).unwrap();
        let exact = gaussian_analytic_optimum(k, noise_multiplier, DELTA_PRIME);
        assert!(account.epsilon >= exact - 1e-12, "grid cannot beat exact");
        assert!(
            account.epsilon <= exact * 1.01,
            "k = {k}: grid ε {} vs analytic {exact}",
            account.epsilon
        );
    }
}

#[test]
fn reconcile_wal_accepts_consistent_state_across_restart() {
    let path = temp_wal("reconcile");
    let _ = std::fs::remove_file(&path);
    let dangling;
    {
        let (session, _) = SharedPrivacySession::with_wal(&path, Some(1.0)).unwrap();
        session.begin("t", "a", 0.1, 0.0).unwrap().commit().unwrap();
        session
            .begin("t", "b", 0.05, 1e-7)
            .unwrap()
            .abort()
            .unwrap();
        dangling = session.begin("t", "c", 0.2, 0.0).unwrap().detach();
        session.reconcile_wal().unwrap();
    }
    // Recovery rebuilds the counter from WAL aggregates plus the open
    // reservation; reconciliation must still agree.
    let (session, _) = SharedPrivacySession::with_wal(&path, Some(1.0)).unwrap();
    session.reconcile_wal().unwrap();
    assert!((session.spent_epsilon() - 0.3).abs() < 1e-9);
    session
        .resume_reservation(dangling)
        .unwrap()
        .commit()
        .unwrap();
    session.reconcile_wal().unwrap();
    let _ = std::fs::remove_file(&path);

    // Without a WAL the check is a no-op.
    SharedPrivacySession::new().reconcile_wal().unwrap();
}

/// Builds the same mechanism sequence into a ledger on `alphas` (or the
/// default grid when `None`).
fn ledger_with(mechs: &[(bool, f64)], alphas: Option<Vec<f64>>) -> RdpLedger {
    let mut ledger = match alphas {
        Some(alphas) => RdpLedger::with_alphas(alphas).unwrap(),
        None => RdpLedger::new(),
    };
    for &(pure, eps) in mechs {
        let mechanism = if pure {
            RenyiMechanism::PureDp { epsilon: eps }
        } else {
            RenyiMechanism::gaussian_from_calibration(eps, DELTA0).unwrap()
        };
        ledger.record(mechanism).unwrap();
    }
    ledger
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ε(δ) is non-increasing in δ: tolerating more failure mass can
    /// never cost more privacy loss.
    #[test]
    fn conversion_is_monotone_in_delta(
        mechs in proptest::collection::vec((proptest::bool::ANY, 0.05f64..0.9), 1..12),
        delta in 1e-9f64..1e-3,
        factor in 2.0f64..1e4,
    ) {
        let ledger = ledger_with(&mechs, None);
        let tight = ledger.convert(delta).unwrap().epsilon;
        let loose = ledger.convert((delta * factor).min(0.5)).unwrap().epsilon;
        prop_assert!(loose <= tight + 1e-12, "loose {loose} > tight {tight}");
    }

    /// Refining the order grid can only tighten the conversion: the
    /// minimum over a superset of orders is no larger.
    #[test]
    fn conversion_tightens_under_grid_refinement(
        mechs in proptest::collection::vec((proptest::bool::ANY, 0.05f64..0.9), 1..12),
        extra in proptest::collection::vec(1.01f64..2000.0, 1..8),
    ) {
        let coarse_grid = vec![1.5, 2.0, 4.0, 8.0, 32.0, 256.0];
        let mut fine_grid = coarse_grid.clone();
        fine_grid.extend(extra);
        let coarse = ledger_with(&mechs, Some(coarse_grid));
        let fine = ledger_with(&mechs, Some(fine_grid));
        let coarse_eps = coarse.convert(DELTA_PRIME).unwrap().epsilon;
        let fine_eps = fine.convert(DELTA_PRIME).unwrap().epsilon;
        prop_assert!(fine_eps <= coarse_eps + 1e-12);
        // And the shipped default grid refines any subset of itself.
        let full = ledger_with(&mechs, None);
        let sub: Vec<f64> = default_alpha_grid().into_iter().step_by(7).collect();
        let subset = ledger_with(&mechs, Some(sub));
        prop_assert!(
            full.convert(DELTA_PRIME).unwrap().epsilon
                <= subset.convert(DELTA_PRIME).unwrap().epsilon + 1e-12
        );
    }
}
