//! Cross-crate integration tests: the full paper pipeline from raw census
//! records to evaluated private models.

use functional_mechanism::baselines::{dpme::Dpme, fp::FilterPriority};
use functional_mechanism::data::{census, cv::KFold, metrics, normalize::Normalizer, sampling};
use functional_mechanism::prelude::*;
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

/// Build a normalized linear-regression census dataset of `n` rows.
fn census_linear(n: usize, seed: u64) -> Dataset {
    let mut r = rng(seed);
    let profile = census::CensusProfile::us();
    let raw = census::generate(&profile, n, &mut r).unwrap();
    let normalizer = Normalizer::from_schema(&census::schema(&profile), census::LABEL).unwrap();
    normalizer.normalize_linear(&raw).unwrap()
}

/// Build a normalized logistic-regression census dataset of `n` rows.
fn census_logistic(n: usize, seed: u64) -> Dataset {
    let mut r = rng(seed);
    let profile = census::CensusProfile::us();
    let raw = census::generate(&profile, n, &mut r).unwrap();
    let normalizer = Normalizer::from_schema(&census::schema(&profile), census::LABEL).unwrap();
    normalizer
        .normalize_logistic(&raw, profile.income_threshold())
        .unwrap()
}

#[test]
fn census_pipeline_satisfies_paper_contracts() {
    let linear = census_linear(2_000, 1);
    linear.check_normalized_linear().unwrap();
    assert_eq!(linear.d(), 13);

    let logistic = census_logistic(2_000, 1);
    logistic.check_normalized_logistic().unwrap();
    // Both classes present.
    let ones = logistic.y().iter().filter(|&&y| y == 1.0).count();
    assert!(
        ones > 100 && ones < 1_900,
        "degenerate class balance: {ones}"
    );
}

#[test]
fn attribute_subsets_flow_through_fitting() {
    let full = census_linear(4_000, 2);
    let mut r = rng(3);
    for dim in [5usize, 8, 11, 14] {
        let subset = census::attribute_subset(dim).unwrap();
        let data = full.select_features(subset).unwrap();
        // NOTE: selecting a column subset keeps the √13 scaling, so ‖x‖ ≤ 1
        // still holds (it only gets smaller). The paper renormalizes per
        // subset; both satisfy the contract.
        data.check_normalized_linear().unwrap();
        let model = DpLinearRegression::builder()
            .epsilon(1.0)
            .build()
            .fit(&data, &mut r)
            .unwrap();
        assert_eq!(model.dim(), dim - 1);
    }
}

#[test]
fn full_method_matrix_runs_on_census_linear() {
    let data = census_linear(6_000, 4);
    let mut r = rng(5);
    let eps = 0.8;

    let no_priv = LinearRegression::new().fit(&data).unwrap();
    let fm = DpLinearRegression::builder()
        .epsilon(eps)
        .build()
        .fit(&data, &mut r)
        .unwrap();
    let dpme = Dpme::new(eps).unwrap().fit_linear(&data, &mut r).unwrap();
    let fp = FilterPriority::new(eps)
        .unwrap()
        .fit_linear(&data, &mut r)
        .unwrap();

    for (name, model) in [
        ("NoPrivacy", &no_priv),
        ("FM", &fm),
        ("DPME", &dpme),
        ("FP", &fp),
    ] {
        let preds = model.predict_batch(data.x());
        let mse = metrics::mse(&preds, data.y());
        assert!(mse.is_finite(), "{name} produced non-finite MSE");
        assert!(mse < 10.0, "{name} MSE {mse} implausible");
    }
    // NoPrivacy is the floor.
    let floor = metrics::mse(&no_priv.predict_batch(data.x()), data.y());
    let fm_mse = metrics::mse(&fm.predict_batch(data.x()), data.y());
    assert!(
        fm_mse >= floor - 1e-9,
        "FM cannot beat the non-private optimum in-sample"
    );
}

#[test]
fn full_method_matrix_runs_on_census_logistic() {
    let data = census_logistic(6_000, 6);
    let mut r = rng(7);
    let eps = 0.8;

    let no_priv = LogisticRegression::new().fit(&data).unwrap();
    let trunc = TruncatedLogistic::new().fit(&data).unwrap();
    let fm = DpLogisticRegression::builder()
        .epsilon(eps)
        .build()
        .fit(&data, &mut r)
        .unwrap();
    let dpme = Dpme::new(eps).unwrap().fit_logistic(&data, &mut r).unwrap();
    let fp = FilterPriority::new(eps)
        .unwrap()
        .fit_logistic(&data, &mut r)
        .unwrap();

    for (name, model) in [
        ("NoPrivacy", &no_priv),
        ("Truncated", &trunc),
        ("FM", &fm),
        ("DPME", &dpme),
        ("FP", &fp),
    ] {
        let probs = model.probabilities_batch(data.x());
        assert!(
            probs.iter().all(|p| (0.0..=1.0).contains(p)),
            "{name} produced out-of-range probabilities"
        );
        let err = metrics::misclassification_rate(&probs, data.y());
        assert!((0.0..=1.0).contains(&err), "{name} misclassification {err}");
    }
}

#[test]
fn five_fold_cv_protocol_runs() {
    // The paper's protocol at miniature scale: 5-fold CV, mean test MSE.
    let data = census_linear(3_000, 8);
    let mut r = rng(9);
    let kf = KFold::new(data.n(), 5, &mut r).unwrap();
    let mut scores = Vec::new();
    for f in 0..kf.k() {
        let (train, test) = kf.split(&data, f).unwrap();
        let model = DpLinearRegression::builder()
            .epsilon(3.2)
            .build()
            .fit(&train, &mut r)
            .unwrap();
        scores.push(metrics::mse(&model.predict_batch(test.x()), test.y()));
    }
    let (mean, std) = metrics::mean_and_std(&scores);
    assert!(mean.is_finite() && std.is_finite());
    assert!(mean < 5.0, "CV mean MSE {mean} implausible");
}

#[test]
fn sampling_rate_axis_behaves() {
    // Table 2's sampling-rate axis: every rate produces a usable dataset
    // and FM fits at each.
    let data = census_linear(5_000, 10);
    let mut r = rng(11);
    for rate in [0.1, 0.5, 1.0] {
        let sub = sampling::subsample(&data, rate, &mut r).unwrap();
        assert_eq!(sub.n(), (rate * 5_000.0).ceil() as usize);
        let model = DpLinearRegression::builder()
            .epsilon(1.6)
            .build()
            .fit(&sub, &mut r)
            .unwrap();
        assert_eq!(model.dim(), 13);
    }
}

#[test]
fn seeded_runs_are_bitwise_reproducible_end_to_end() {
    let run = || {
        let data = census_linear(2_000, 12);
        let mut r = rng(13);
        DpLinearRegression::builder()
            .epsilon(0.4)
            .build()
            .fit(&data, &mut r)
            .unwrap()
            .weights()
            .to_vec()
    };
    assert_eq!(run(), run());
}
