//! Fault-injection and crash-recovery suite: the durability contracts of
//! the WAL-backed privacy ledger and the checkpointable streaming fits.
//!
//! Two properties are load-bearing and pinned here:
//!
//! 1. **Fail-closed ε accounting.** For *every* byte prefix of a
//!    write-ahead log — i.e. a crash at any point inside any record —
//!    recovery succeeds and the recovered spent ε never under-reports
//!    what the pre-crash process had durably committed. Reservations
//!    that were in flight come back sealed (spent, unabortable).
//! 2. **Bit-identical resume.** A streaming `partial_fit` checkpointed
//!    at any block boundary and resumed in a fresh process state
//!    releases a model bit-identical to the uninterrupted fit at the
//!    same seed.
//!
//! Plus the data-layer fault surface: injected I/O errors, truncation,
//! and malformed rows all surface as typed errors that leave the privacy
//! accounting consistent (abort-before-scan refunds, fail-closed
//! otherwise).

use functional_mechanism::data::synth::linear_dataset;
use functional_mechanism::prelude::Strategy as FitStrategy;
use functional_mechanism::prelude::*;
use proptest::prelude::*;
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

/// A unique temp path per test (+ discriminator), cleaned by the caller.
fn temp_wal(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "fm-fault-{}-{tag}-{:?}.wal",
        std::process::id(),
        std::thread::current().id()
    ))
}

// ---------------------------------------------------------------------------
// 1. Crash-point sweep over every WAL write boundary
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum WalOp {
    Reserve(f64),
    Commit,
    Abort,
}

/// Replays a scripted op sequence against a fresh WAL, capturing the log
/// bytes and the expected spent ε at every write boundary; then recovers
/// from **every byte prefix** and checks the fail-closed invariant.
fn crash_sweep(ops: &[WalOp]) {
    let path = temp_wal("sweep");
    let _ = std::fs::remove_file(&path);

    // Boundaries: (byte length of the log, expected spent ε, committed ε).
    // `committed` is the never-reclaimable floor — ε whose commit record
    // is durable can never drop out of a recovery, whatever else tears.
    // The (0, 0, 0) entry covers cuts inside the magic header line, where
    // recovery re-initialises a fresh log.
    let mut boundaries: Vec<(usize, f64, f64)> = vec![(0, 0.0, 0.0)];
    let mut ids: Vec<(u64, f64)> = Vec::new(); // open (id, ε), newest last
    {
        let (mut wal, report) = WalLedger::open(&path).expect("fresh open");
        assert!(report.fresh);
        let log_len = |p: &std::path::Path| std::fs::metadata(p).unwrap().len() as usize;
        let mut committed = 0.0f64;
        boundaries.push((log_len(&path), 0.0, 0.0));
        for op in ops {
            match *op {
                WalOp::Reserve(eps) => {
                    let id = wal.reserve("tenant", "fit", eps, 0.0).unwrap();
                    ids.push((id, eps));
                }
                WalOp::Commit => {
                    if let Some((id, eps)) = ids.pop() {
                        wal.commit(id).unwrap();
                        committed += eps;
                    }
                }
                WalOp::Abort => {
                    if let Some((id, _)) = ids.pop() {
                        wal.abort(id).unwrap();
                    }
                }
            }
            boundaries.push((log_len(&path), wal.spent().0, committed));
        }
    }

    let full = std::fs::read(&path).expect("read full log");
    assert_eq!(full.len(), boundaries.last().unwrap().0);

    let crash_path = temp_wal("sweep-crash");
    for cut in 0..=full.len() {
        let _ = std::fs::remove_file(&crash_path);
        std::fs::write(&crash_path, &full[..cut]).unwrap();

        // Recovery must never fail on a pure prefix: a crash mid-append
        // is a torn tail, not corruption.
        let (wal, _report) = WalLedger::open(&crash_path)
            .unwrap_or_else(|e| panic!("recovery failed at cut {cut}/{}: {e}", full.len()));

        // The last boundary fully contained in the prefix. A cut that
        // keeps a whole record but drops only its trailing newline is
        // legal too (the checksum proves the record complete, so recovery
        // re-terminates it) — then the *next* boundary's state holds.
        let i = boundaries
            .iter()
            .rposition(|&(len, _, _)| len <= cut)
            .expect("the zero-length boundary always matches");
        let (spent, _) = wal.spent();
        let at = boundaries[i].1;
        let reterminated = boundaries
            .get(i + 1)
            .filter(|&&(len, _, _)| cut + 1 == len)
            .map(|&(_, s, _)| s);
        let ok =
            (spent - at).abs() < 1e-12 || reterminated.is_some_and(|s| (spent - s).abs() < 1e-12);
        assert!(
            ok,
            "cut {cut}: recovered spent {spent}, boundary {i} expected {at} \
             (re-terminated: {reterminated:?})"
        );
        // Fail-closed floor: durably committed ε can never be lost.
        let committed_floor = boundaries[i].2;
        assert!(
            spent + 1e-12 >= committed_floor,
            "cut {cut}: recovered spent {spent} under-reports committed {committed_floor}"
        );
        // Dangling reservations come back sealed.
        assert!(wal.open_reservations().all(|r| r.sealed));
        drop(wal);
    }
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&crash_path);
}

#[test]
fn crash_point_sweep_never_underreports_spent_epsilon() {
    use WalOp::{Abort, Commit, Reserve};
    crash_sweep(&[
        Reserve(0.25),
        Commit,
        Reserve(0.5),
        Reserve(0.125),
        Abort,
        Commit,
        Reserve(1.0),
    ]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random op sequences: the sweep invariant holds for any history,
    /// not just the scripted one.
    #[test]
    fn crash_point_sweep_holds_for_random_histories(
        script in proptest::collection::vec(0u8..4, 1..8),
    ) {
        let ops: Vec<WalOp> = script
            .iter()
            .enumerate()
            .map(|(i, &b)| match b {
                0 | 3 => WalOp::Reserve(0.0625 * (i + 1) as f64),
                1 => WalOp::Commit,
                _ => WalOp::Abort,
            })
            .collect();
        crash_sweep(&ops);
    }
}

#[test]
fn mid_log_corruption_is_refused_not_repaired() {
    let path = temp_wal("corrupt");
    let _ = std::fs::remove_file(&path);
    {
        let (mut wal, _) = WalLedger::open(&path).unwrap();
        let id = wal.reserve("tenant", "fit", 0.5, 0.0).unwrap();
        wal.commit(id).unwrap();
    }
    let mut bytes = std::fs::read(&path).unwrap();
    // Flip a byte in the *middle* of the log (inside the reserve record,
    // which is not the tail) — this is corruption, not a crash artefact.
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();
    assert!(
        WalLedger::open(&path).is_err(),
        "a checksum failure before the tail must refuse to open"
    );
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------------
// 2. Checkpointed streaming fits resume bit-identical
// ---------------------------------------------------------------------------

/// Feeds a seeded dataset into a partial fit in `block`-row pushes,
/// interrupting with a checkpoint/resume round-trip after `kill_after`
/// blocks, and checks the released model against the uninterrupted fit.
fn resume_matches_uninterrupted(n: usize, block: usize, kill_after: usize, seed: u64) {
    let mut r = rng(seed);
    let data = linear_dataset(&mut r, n, 3, 0.1);
    let est = DpLinearRegression::builder().epsilon(1.0).build();

    let reference = {
        let mut fit_rng = rng(seed + 1);
        est.fit(&data, &mut fit_rng).unwrap()
    };

    // Interrupted run: absorb `kill_after` blocks, checkpoint, "crash",
    // resume from the snapshot text alone, absorb the rest, finalize.
    let xs = data.x().as_slice();
    let ys = data.y();
    let d = data.d();
    let mut partial = est.partial_fit().with_reservation(7);
    let mut pos = 0usize;
    for _ in 0..kill_after {
        let hi = (pos + block).min(n);
        let blk = RowBlock::new(xs[pos * d..hi * d].to_vec(), ys[pos..hi].to_vec(), d).unwrap();
        partial.push_block(&blk).unwrap();
        pos = hi;
    }
    let snapshot = partial.checkpoint().unwrap();
    drop(partial); // the "crash"

    let mut resumed = est.resume_partial_fit(&snapshot).unwrap();
    assert_eq!(
        resumed.reservation(),
        Some(7),
        "reservation tag must survive"
    );
    assert_eq!(resumed.rows(), pos);
    while pos < n {
        let hi = (pos + block).min(n);
        let blk = RowBlock::new(xs[pos * d..hi * d].to_vec(), ys[pos..hi].to_vec(), d).unwrap();
        resumed.push_block(&blk).unwrap();
        pos = hi;
    }
    let mut fit_rng = rng(seed + 1);
    let model = resumed.finalize(&mut fit_rng).unwrap();
    assert_eq!(
        model, reference,
        "n={n} block={block} kill_after={kill_after}: resumed release must be bit-identical"
    );
}

#[test]
fn checkpointed_linear_fit_resumes_bit_identical() {
    // Kill points landing mid-chunk, ragged blocks, and a stream long
    // enough that the resumed run crosses the default 4096-row chunk
    // boundary (flushing a chunk into the merge tree after resume).
    for (n, block, kill_after) in [
        (500usize, 100usize, 2usize),
        (500, 137, 1),
        (500, 137, 3),
        (4_500, 1_000, 4),
    ] {
        resume_matches_uninterrupted(n, block, kill_after, 9_000 + n as u64);
    }
}

#[test]
fn checkpoint_of_an_empty_fit_is_refused() {
    let est = DpLinearRegression::builder().epsilon(1.0).build();
    let partial = est.partial_fit();
    assert!(matches!(
        partial.checkpoint(),
        Err(FmError::Checkpoint { .. })
    ));
}

#[test]
fn checkpointed_sparse_fit_resumes_bit_identical() {
    let mut r = rng(77);
    let data = linear_dataset(&mut r, 1_500, 2, 0.05);
    let est = SparseFmEstimator::new(
        QuarticObjective,
        FitConfig::new()
            .epsilon(64.0)
            .strategy(FitStrategy::Resample { max_attempts: 8 }),
    );

    let reference = {
        let mut fit_rng = rng(78);
        est.fit(&data, &mut fit_rng).unwrap()
    };

    let mut partial = est.partial_fit().unwrap();
    let idx: Vec<usize> = (0..data.n()).collect();
    let first = data.subset(&idx[..600]).unwrap();
    let rest = data.subset(&idx[600..]).unwrap();
    partial.absorb(&mut InMemorySource::new(&first)).unwrap();
    let snapshot = partial.checkpoint().unwrap();
    drop(partial);

    let mut resumed = est.resume_partial_fit(&snapshot).unwrap();
    assert_eq!(resumed.reservation(), None);
    resumed.absorb(&mut InMemorySource::new(&rest)).unwrap();
    let mut fit_rng = rng(78);
    let model = resumed.finalize(&mut fit_rng).unwrap();
    assert_eq!(
        model, reference,
        "sparse resumed release must be bit-identical"
    );
}

#[test]
fn corrupted_checkpoints_are_refused() {
    let mut r = rng(55);
    let data = linear_dataset(&mut r, 200, 2, 0.1);
    let est = DpLinearRegression::builder().epsilon(1.0).build();
    let mut partial = est.partial_fit();
    partial.absorb(&mut InMemorySource::new(&data)).unwrap();
    let snapshot = partial.checkpoint().unwrap();

    // Pristine round-trips; any flipped byte or truncation is refused.
    // (The snapshot is pure ASCII, so byte surgery stays valid UTF-8.)
    assert!(est.resume_partial_fit(&snapshot).is_ok());
    for cut in [0, snapshot.len() / 3, snapshot.len() - 2] {
        assert!(
            matches!(
                est.resume_partial_fit(&snapshot[..cut]),
                Err(FmError::Checkpoint { .. })
            ),
            "truncation at {cut} accepted"
        );
        let mut evil = snapshot.clone().into_bytes();
        evil[cut] ^= 0x01;
        let evil = String::from_utf8(evil).unwrap();
        assert!(
            est.resume_partial_fit(&evil).is_err(),
            "byte flip at {cut} accepted"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The bit-identity property at random sizes, block shapes and kill
    /// points — including kill points landing mid-chunk.
    #[test]
    fn resume_bit_identity_holds_for_random_kill_points(
        n in 50usize..400,
        block in 1usize..120,
        kill_frac in 0.0f64..1.0,
        seed in 0u64..1_000,
    ) {
        let blocks_total = n.div_ceil(block);
        let kill_after = ((blocks_total as f64) * kill_frac) as usize;
        prop_assume!(kill_after > 0 && kill_after <= blocks_total);
        resume_matches_uninterrupted(n, block, kill_after, seed);
    }
}

// ---------------------------------------------------------------------------
// 3. Injected data faults × privacy accounting
// ---------------------------------------------------------------------------

#[test]
fn abort_before_scan_refunds_while_later_faults_stay_spent() {
    let path = temp_wal("faults");
    let _ = std::fs::remove_file(&path);
    let (session, _) = SharedPrivacySession::with_wal(&path, Some(2.0)).unwrap();
    let mut r = rng(31);
    let data = linear_dataset(&mut r, 600, 2, 0.1);
    let est = DpLinearRegression::builder().epsilon(0.5).build();

    // Fault before the first block: the fit provably never saw data, so
    // aborting the permit reclaims the budget.
    {
        let permit = session.begin("census", "io-at-0", 0.5, 0.0).unwrap();
        let mut source = FaultInjectingSource::new(InMemorySource::new(&data), Fault::Io, 0);
        let mut partial = est.partial_fit().with_reservation(permit.id());
        let err = partial.absorb(&mut source).unwrap_err();
        assert!(matches!(err, FmError::Data(_)), "{err}");
        permit.abort().unwrap();
    }
    assert!(
        session.spent_epsilon().abs() < 1e-12,
        "pre-scan abort refunds"
    );

    // Fault mid-stream: blocks were already scanned, so the budget is
    // spent whatever became of the fit (fail-closed commit).
    {
        let permit = session.begin("census", "io-at-2", 0.5, 0.0).unwrap();
        let mut source = FaultInjectingSource::new(InMemorySource::new(&data), Fault::Io, 2);
        let mut partial = est
            .partial_fit()
            .chunk_rows(100)
            .with_reservation(permit.id());
        assert!(partial.absorb(&mut source).is_err());
        assert!(source.fired());
        permit.commit().unwrap();
    }
    assert!((session.spent_epsilon() - 0.5).abs() < 1e-12);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn malformed_rows_and_truncation_surface_as_typed_outcomes() {
    let mut r = rng(32);
    let data = linear_dataset(&mut r, 400, 2, 0.1);
    let est = DpLinearRegression::builder().epsilon(1.0).build();

    // Malformed rows (contract-violating features) are refused by
    // validation, not silently absorbed.
    let mut source = FaultInjectingSource::new(InMemorySource::new(&data), Fault::MalformedRows, 1);
    let mut partial = est.partial_fit().chunk_rows(100);
    let err = partial.absorb(&mut source).unwrap_err();
    assert!(matches!(err, FmError::Data(_)), "{err}");

    // Truncation is a silent early EOF: fewer rows, but a well-formed
    // fit. The released model equals a fit over exactly the surviving
    // prefix — truncation can never corrupt accumulation state.
    let mut source = FaultInjectingSource::new(InMemorySource::new(&data), Fault::Truncate, 2);
    let mut partial = est.partial_fit().chunk_rows(100);
    partial.absorb(&mut source).unwrap();
    assert_eq!(partial.rows(), 200, "2 × 100-row blocks before the cut");
    let mut fit_rng = rng(33);
    let truncated_model = partial.finalize(&mut fit_rng).unwrap();

    let idx: Vec<usize> = (0..200).collect();
    let prefix = data.subset(&idx).unwrap();
    let mut partial = est.partial_fit().chunk_rows(100);
    partial.absorb(&mut InMemorySource::new(&prefix)).unwrap();
    let mut fit_rng = rng(33);
    let prefix_model = partial.finalize(&mut fit_rng).unwrap();
    assert_eq!(truncated_model, prefix_model);
}

#[test]
fn checkpoint_resume_with_wal_never_redebits() {
    let path = temp_wal("resume");
    let _ = std::fs::remove_file(&path);
    let mut r = rng(41);
    let data = linear_dataset(&mut r, 300, 2, 0.1);
    let est = DpLinearRegression::builder().epsilon(0.5).build();

    // Session 1: reserve, absorb half, checkpoint (carrying the WAL
    // reservation id), then crash without settling.
    let snapshot;
    {
        let (session, _) = SharedPrivacySession::with_wal(&path, Some(1.0)).unwrap();
        let permit = session.begin("census", "resumable", 0.5, 0.0).unwrap();
        let idx: Vec<usize> = (0..150).collect();
        let first = data.subset(&idx).unwrap();
        let mut partial = est.partial_fit().with_reservation(permit.id());
        partial.absorb(&mut InMemorySource::new(&first)).unwrap();
        snapshot = partial.checkpoint().unwrap();
        std::mem::forget(permit); // crash: reservation left dangling
    }

    // Session 2: recovery seals the reservation (still spent), the
    // checkpoint re-attaches to it, and finishing the fit costs nothing
    // new.
    let (session, report) = SharedPrivacySession::with_wal(&path, Some(1.0)).unwrap();
    assert_eq!(report.sealed_dangling, 1);
    assert!((session.spent_epsilon() - 0.5).abs() < 1e-12);

    let mut resumed = est.resume_partial_fit(&snapshot).unwrap();
    let id = resumed.reservation().expect("snapshot carries the id");
    let permit = session.resume_reservation(id).unwrap();
    assert!(
        (session.spent_epsilon() - 0.5).abs() < 1e-12,
        "resume must not re-debit"
    );
    let idx: Vec<usize> = (150..300).collect();
    let rest = data.subset(&idx).unwrap();
    resumed.absorb(&mut InMemorySource::new(&rest)).unwrap();
    let mut fit_rng = rng(42);
    let model = resumed.finalize(&mut fit_rng).unwrap();
    permit.commit().unwrap();
    assert!((session.spent_epsilon() - 0.5).abs() < 1e-12);

    // And the release is bit-identical to the uninterrupted fit.
    let mut partial = est.partial_fit();
    partial.absorb(&mut InMemorySource::new(&data)).unwrap();
    let mut fit_rng = rng(42);
    let reference = partial.finalize(&mut fit_rng).unwrap();
    assert_eq!(model, reference);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn detached_permits_resume_in_process_and_block_compaction_until_settled() {
    use functional_mechanism::privacy::wal::CompactionPolicy;
    let path = temp_wal("detach");
    let _ = std::fs::remove_file(&path);
    let mut r = rng(51);
    let data = linear_dataset(&mut r, 300, 2, 0.1);
    let est = DpLinearRegression::builder().epsilon(0.5).build();

    let (session, _) = SharedPrivacySession::with_wal(&path, Some(2.0)).unwrap();
    let session = std::sync::Arc::new(session);
    let aggressive = CompactionPolicy::default().settled_records(1).file_bytes(1);

    // A settled fit leaves garbage; with nothing dangling the policy fires.
    session
        .begin("t0", "warm", 0.25, 0.0)
        .unwrap()
        .commit()
        .unwrap();
    assert_eq!(session.wal_stats().unwrap().settled_records, 1);
    assert!(session.maybe_compact_wal(&aggressive).unwrap());
    assert_eq!(session.wal_stats().unwrap().settled_records, 0);

    // Graceful shutdown: absorb half, checkpoint, detach. The reservation
    // stays open (and spent) but is no longer attached to a live permit.
    let permit = session
        .begin_owned("census", "resumable", 0.5, 0.0)
        .unwrap();
    let first = data.subset(&(0..150).collect::<Vec<_>>()).unwrap();
    let mut partial = est.partial_fit().with_reservation(permit.id());
    partial.absorb(&mut InMemorySource::new(&first)).unwrap();
    let snapshot = partial.checkpoint().unwrap();
    let id = permit.detach();
    assert_eq!(session.dangling_reservations(), 1);
    assert!((session.spent_epsilon() - 0.75).abs() < 1e-12);

    // Compaction must refuse while the checkpointed reservation dangles,
    // even though the policy is overdue again.
    session
        .begin("t0", "warm2", 0.25, 0.0)
        .unwrap()
        .commit()
        .unwrap();
    assert!(!session.maybe_compact_wal(&aggressive).unwrap());
    assert_eq!(session.wal_stats().unwrap().open_reservations, 1);

    // Resume in-process: re-attach without re-debiting, finish, commit.
    let mut resumed = est.resume_partial_fit(&snapshot).unwrap();
    assert_eq!(resumed.reservation(), Some(id));
    let permit = session.resume_reservation_owned(id).unwrap();
    assert_eq!(session.dangling_reservations(), 0);
    assert!(
        (session.spent_epsilon() - 1.0).abs() < 1e-12,
        "resume must not re-debit"
    );
    let rest = data.subset(&(150..300).collect::<Vec<_>>()).unwrap();
    resumed.absorb(&mut InMemorySource::new(&rest)).unwrap();
    let mut fit_rng = rng(52);
    let model = resumed.finalize(&mut fit_rng).unwrap();
    permit.commit().unwrap();
    assert!((session.spent_epsilon() - 1.0).abs() < 1e-12);

    // Nothing dangles any more: the deferred compaction goes through.
    assert!(session.maybe_compact_wal(&aggressive).unwrap());
    let stats = session.wal_stats().unwrap();
    assert_eq!(stats.settled_records, 0);
    assert_eq!(stats.open_reservations, 0);

    // The detach/resume release is bit-identical to the uninterrupted fit.
    let mut partial = est.partial_fit();
    partial.absorb(&mut InMemorySource::new(&data)).unwrap();
    let mut fit_rng = rng(52);
    assert_eq!(model, partial.finalize(&mut fit_rng).unwrap());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn age_due_compaction_still_refuses_while_a_reservation_dangles() {
    use functional_mechanism::privacy::wal::CompactionPolicy;
    use std::time::Duration;
    let path = temp_wal("age-dangle");
    let _ = std::fs::remove_file(&path);
    let (session, _) = SharedPrivacySession::with_wal(&path, Some(2.0)).unwrap();
    let session = std::sync::Arc::new(session);
    // Age-only policy: record/byte thresholds can never fire.
    let aged = CompactionPolicy::default()
        .settled_records(usize::MAX)
        .file_bytes(u64::MAX)
        .age(Duration::ZERO);

    // Quiet ledger, zero settled garbage: age alone makes it due.
    session
        .begin("t0", "warm", 0.25, 0.0)
        .unwrap()
        .commit()
        .unwrap();
    assert!(session.maybe_compact_wal(&aged).unwrap());
    assert_eq!(session.wal_stats().unwrap().settled_records, 0);

    // A detached (dangling) reservation must veto even an overdue clock.
    let permit = session
        .begin_owned("census", "resumable", 0.5, 0.0)
        .unwrap();
    let id = permit.detach();
    assert_eq!(session.dangling_reservations(), 1);
    assert!(!session.maybe_compact_wal(&aged).unwrap());

    // Re-attach and settle: the deferred compaction goes through again.
    session
        .resume_reservation_owned(id)
        .unwrap()
        .commit()
        .unwrap();
    assert!(session.maybe_compact_wal(&aged).unwrap());
    let _ = std::fs::remove_file(&path);
}
